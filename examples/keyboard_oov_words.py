"""Out-of-vocabulary word discovery across keyboard deployments.

This mirrors the Gboard-style motivation the paper cites (identifying the
most frequent "out-of-vocabulary" words typed on keyboards) using the RDB
stand-in: two text corpora with different slang but a shared core of newly
popular words.  The script sweeps the privacy budget to show the
privacy-utility trade-off of Figures 4/5 and then swaps the frequency
oracle to show that the mechanism is FO-agnostic (Figure 6).

Run with::

    python examples/keyboard_oov_words.py
    python examples/keyboard_oov_words.py --smoke   # canonical smoke scale (CI)
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    FedPEMMechanism,
    MechanismConfig,
    TAPSMechanism,
    f1_score,
    load_dataset,
    ncr_score,
)
from repro.experiments import SMOKE_PRESET
from repro.utils.tables import TextTable


def sweep_privacy_budget(
    dataset, k: int, *, epsilons=(2.0, 3.0, 4.0, 5.0), repetitions: int = 3
) -> TextTable:
    """F1/NCR of FedPEM vs TAPS across privacy budgets."""
    truth = dataset.true_top_k(k)
    table = TextTable(["epsilon", "FedPEM F1", "TAPS F1", "FedPEM NCR", "TAPS NCR"])
    for epsilon in epsilons:
        config = MechanismConfig(
            k=k, epsilon=epsilon, n_bits=dataset.n_bits, granularity=6
        )
        row: list[object] = [epsilon]
        ncr_cells: list[float] = []
        for mechanism_cls in (FedPEMMechanism, TAPSMechanism):
            f1s, ncrs = [], []
            for seed in range(repetitions):
                result = mechanism_cls(config).run(dataset, rng=seed)
                f1s.append(f1_score(result.heavy_hitters, truth))
                ncrs.append(ncr_score(result.heavy_hitters, truth))
            row.append(float(np.mean(f1s)))
            ncr_cells.append(float(np.mean(ncrs)))
        row.extend(ncr_cells)
        table.add_row(row)
    return table


def sweep_frequency_oracles(dataset, k: int, *, repetitions: int = 3) -> TextTable:
    """TAPS utility under k-RR, OUE and OLH at a fixed budget."""
    truth = dataset.true_top_k(k)
    table = TextTable(["oracle", "F1", "NCR", "report bits/user (final level)"])
    for oracle in ("krr", "oue", "olh"):
        config = MechanismConfig(
            k=k, epsilon=4.0, n_bits=dataset.n_bits, granularity=6, oracle=oracle
        )
        f1s, ncrs = [], []
        for seed in range(repetitions):
            result = TAPSMechanism(config).run(dataset, rng=seed)
            f1s.append(f1_score(result.heavy_hitters, truth))
            ncrs.append(ncr_score(result.heavy_hitters, truth))
        # Report size over a representative candidate domain of ~4k+1 slots.
        report_bits = config.make_oracle().report_bits(4 * k + 1)
        table.add_row([oracle, float(np.mean(f1s)), float(np.mean(ncrs)), report_bits])
    return table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run at the canonical smoke scale (used by CI)")
    args = parser.parse_args()
    scale = SMOKE_PRESET["scale"] if args.smoke else "small"
    epsilons = SMOKE_PRESET["epsilons"] if args.smoke else (2.0, 3.0, 4.0, 5.0)
    repetitions = SMOKE_PRESET["repetitions"] if args.smoke else 3

    dataset = load_dataset("rdb", scale=scale, seed=11)
    k = 10
    print(
        f"keyboard deployments: {dataset.party_sizes()}, "
        f"{dataset.n_unique_items()} distinct OOV words\n"
    )
    print(
        sweep_privacy_budget(
            dataset, k, epsilons=epsilons, repetitions=repetitions
        ).render(title="Privacy-utility trade-off")
    )
    print()
    print(
        sweep_frequency_oracles(dataset, k, repetitions=repetitions).render(
            title="Frequency-oracle choice (epsilon=4)"
        )
    )


if __name__ == "__main__":
    main()
