"""Scalability and cost analysis: why direct upload is infeasible.

Reproduces, at example scale, the reasoning of Section 4.1 and Tables 1/4:
the cost of uploading every user's OUE/OLH report to the central server vs
what the prefix-tree mechanisms actually ship, plus how TAPS behaves as the
user population grows.

Run with::

    python examples/scalability_and_costs.py
    python examples/scalability_and_costs.py --smoke   # canonical smoke scale (CI)
"""

from __future__ import annotations

import argparse

from repro import DirectUploadCostModel, MechanismConfig, TAPSMechanism, f1_score, load_dataset
from repro.analysis.costs import CostModel, table1_costs
from repro.experiments import SMOKE_PRESET
from repro.utils.tables import TextTable


def asymptotic_costs() -> None:
    """Table 1 at the paper's illustrative scale (5M users, 2M items)."""
    model = CostModel(
        pair_bits=64,
        k=10,
        n_parties=6,
        n_users=5_000_000,
        domain_size=2_000_000,
        pruning_levels=6,
    )
    print(table1_costs(model).render(title="Asymptotic costs (paper scale)"))
    paper_example = DirectUploadCostModel.paper_scale_example()
    print(
        f"\ndirect OUE upload at 5M users x 2M items: "
        f"{paper_example.communication_human()} on the wire "
        f"({paper_example.communication_bits:.1e} bits, Section 4.1's 1e13)\n"
    )


def measured_scalability(*, scale: str = "small", fractions=(0.25, 0.5, 1.0)) -> None:
    """TAPS on growing subsamples of the UBA stand-in (Table 4's shape)."""
    table = TextTable(
        ["users", "F1", "TAPS upload (kbits)", "direct OUE upload", "TAPS runtime (s)"]
    )
    for fraction in fractions:
        dataset = load_dataset("uba", scale=scale, seed=5, user_fraction=fraction)
        config = MechanismConfig(
            k=10, epsilon=4.0, n_bits=dataset.n_bits, granularity=6
        )
        result = TAPSMechanism(config).run(dataset, rng=1)
        truth = dataset.true_top_k(10)
        oue = DirectUploadCostModel("oue", 4.0).costs_for_dataset(dataset)
        table.add_row(
            [
                dataset.total_users,
                f1_score(result.heavy_hitters, truth),
                result.upload_bits() / 1000.0,
                oue.communication_human(),
                result.runtime_seconds,
            ]
        )
    print(table.render(title="Measured scalability on the UBA stand-in"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run at the canonical smoke scale (used by CI)")
    args = parser.parse_args()
    asymptotic_costs()
    if args.smoke:
        measured_scalability(scale=SMOKE_PRESET["scale"], fractions=(0.5, 1.0))
    else:
        measured_scalability()


if __name__ == "__main__":
    main()
