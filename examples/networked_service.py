"""Serve the aggregation protocol over TCP and hammer it with clients.

Run with::

    PYTHONPATH=src python examples/networked_service.py           # full load
    PYTHONPATH=src python examples/networked_service.py --smoke   # CI scale

Three acts:

1. **Bit-identity** — the same fixed-seed TAP discovery runs once with
   in-process service execution and once over a live localhost gateway
   (:func:`repro.net.run_over_network`); the heavy hitters, the estimates
   *and the exact wire-bit totals* must match — the network layer adds
   transport, never semantics.
2. **Load generation** — :func:`repro.net.run_loadgen` drives concurrent
   client pools against the gateway and reports throughput plus batch
   latency percentiles (the `benchmarks/test_bench_net_throughput.py`
   measurement, at example scale).
3. **Backpressure on display** — the same load through a deliberately
   tiny credit budget: everything still completes, just slower, because
   clients block on acknowledgements instead of overwhelming the server.
"""

from __future__ import annotations

import argparse

from repro.core.config import MechanismConfig
from repro.core.tap import TAPMechanism
from repro.datasets.registry import load_dataset
from repro.experiments import SMOKE_PRESET
from repro.net import run_loadgen, run_over_network, start_gateway
from repro.service.server import run_in_service_mode


def bit_identity_act(scale: str, seed: int) -> None:
    dataset = load_dataset("rdb", scale=scale, seed=seed)
    config = MechanismConfig(
        k=int(SMOKE_PRESET["ks"][0]),
        epsilon=float(SMOKE_PRESET["epsilons"][0]),
        n_bits=dataset.n_bits,
        granularity=5,
        simulation_mode="per_user",
        report_batch_size=512,
    )
    mechanism = TAPMechanism(config)
    print(f"running TAP twice on rdb/{scale} (seed {seed}) ...")
    service = run_in_service_mode(mechanism, dataset, rng=seed)
    with start_gateway(decode_backend="thread", decode_workers=2) as handle:
        network = run_over_network(mechanism, dataset, handle.address, rng=seed)

    assert network.heavy_hitters == service.heavy_hitters
    assert network.estimated_counts == service.estimated_counts
    assert (
        network.transcript.bits_by_kind() == service.transcript.bits_by_kind()
    )
    bits = network.transcript.bits_by_kind()
    print(f"  top-{config.k} (both runs): {network.heavy_hitters}")
    print(
        f"  wire bits (both runs): report batches "
        f"{bits['report_batch']:,}, round opens "
        f"{bits['service_round_open']:,}"
    )
    print("  in-memory service run and networked run are bit-identical.")


def loadgen_act(scale: str, connections: int, credits: int | None = None) -> None:
    kwargs = {"decode_backend": "thread", "decode_workers": 2}
    label = "load generation"
    if credits is not None:
        kwargs["connection_credits"] = credits
        label = f"backpressure (credits={credits})"
    print(f"\n--- {label} ---")
    with start_gateway(**kwargs) as handle:
        report = run_loadgen(
            handle.address,
            dataset="rdb",
            scale=scale,
            level=6,
            rounds=2,
            batch_size=1024,
            connections=connections,
            backend="thread",
            seed=7,
        )
        print(report.render())
    assert report.gateway is not None
    assert report.gateway["upload_bits"] == report.upload_bits
    print(
        f"  gateway cross-check: accounted exactly "
        f"{report.upload_bits / 8e3:.1f} kB of uploads, "
        f"{report.gateway['frames_rejected']} frames rejected"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run at the canonical smoke scale (used by CI)")
    args = parser.parse_args()
    scale = str(SMOKE_PRESET["scale"]) if args.smoke else "small"
    connections = 2 if args.smoke else 4
    bit_identity_act(scale, seed=2025)
    loadgen_act(scale, connections)
    loadgen_act(scale, connections, credits=1)


if __name__ == "__main__":
    main()
