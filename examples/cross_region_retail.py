"""Cross-region retail analytics: the paper's motivating Amazon scenario.

Two regional branches (Europe and America) want to find the top-k products
bought during a holiday campaign without collecting raw purchase records:
users only release ε-LDP reports to their regional branch, and the branches
only upload sanitised partial results to headquarters.

The example builds the federated dataset directly from the library's
primitives (no registry), injects a deliberately non-IID catalogue —
region-exclusive bestsellers plus a shared global assortment — and compares
all four mechanisms on utility and communication.

Run with::

    python examples/cross_region_retail.py
    python examples/cross_region_retail.py --smoke   # canonical smoke scale (CI)
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    FederatedDataset,
    FedPEMMechanism,
    GTFMechanism,
    MechanismConfig,
    Party,
    TAPMechanism,
    TAPSMechanism,
    f1_score,
)
from repro.datasets.distributions import (
    sample_from_frequencies,
    scatter_item_ids,
    zipf_frequencies,
)
from repro.datasets.registry import SCALES
from repro.experiments import SMOKE_PRESET
from repro.utils.tables import TextTable

N_BITS = 14
N_GLOBAL_PRODUCTS = 150
N_REGIONAL_PRODUCTS = 250


def build_branch(
    name: str,
    n_customers: int,
    global_ids: np.ndarray,
    regional_ids: np.ndarray,
    *,
    global_share: float,
    rng: np.random.Generator,
) -> Party:
    """One regional branch: a mix of globally and regionally popular products."""
    global_freqs = zipf_frequencies(global_ids.size, 1.25, shift=12)
    regional_freqs = zipf_frequencies(regional_ids.size, 1.3, shift=10)
    n_global = int(round(n_customers * global_share))
    purchases = np.concatenate(
        [
            sample_from_frequencies(global_freqs, global_ids, n_global, rng),
            sample_from_frequencies(
                regional_freqs, regional_ids, n_customers - n_global, rng
            ),
        ]
    )
    rng.shuffle(purchases)
    return Party(name=name, items=purchases)


def build_retail_dataset(seed: int = 3, *, users_scale: float = 1.0) -> FederatedDataset:
    """Europe (larger) + America (smaller), with partially disjoint catalogues."""
    rng = np.random.default_rng(seed)
    catalogue = scatter_item_ids(
        N_GLOBAL_PRODUCTS + 2 * N_REGIONAL_PRODUCTS, N_BITS, rng
    )
    global_ids = catalogue[:N_GLOBAL_PRODUCTS]
    europe_ids = catalogue[N_GLOBAL_PRODUCTS : N_GLOBAL_PRODUCTS + N_REGIONAL_PRODUCTS]
    america_ids = catalogue[N_GLOBAL_PRODUCTS + N_REGIONAL_PRODUCTS :]
    europe = build_branch(
        "amazon_europe", int(18_000 * users_scale), global_ids, europe_ids,
        global_share=0.7, rng=rng,
    )
    america = build_branch(
        "amazon_america", int(9_000 * users_scale), global_ids, america_ids,
        global_share=0.6, rng=rng,
    )
    return FederatedDataset(
        name="holiday_campaign", parties=[europe, america], n_bits=N_BITS
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run at the canonical smoke scale (used by CI)")
    args = parser.parse_args()
    # Same reduction as the registry's canonical smoke preset applies to
    # its datasets — this example builds its parties by hand, so the scale
    # multiplier comes straight from SCALES[SMOKE_PRESET["scale"]].
    users_scale = SCALES[SMOKE_PRESET["scale"]].users_multiplier if args.smoke else 1.0
    repetitions = SMOKE_PRESET["repetitions"] if args.smoke else 3

    dataset = build_retail_dataset(users_scale=users_scale)
    k = 10
    truth = dataset.true_top_k(k)
    print(f"branches: {dataset.party_sizes()}")
    print(f"exact global top-{k} products: {truth}\n")

    config = MechanismConfig(k=k, epsilon=4.0, n_bits=dataset.n_bits, granularity=7)
    table = TextTable(["mechanism", "F1", "hits", "upload kb", "runtime s"])
    for mechanism in (
        GTFMechanism(config),
        FedPEMMechanism(config),
        TAPMechanism(config),
        TAPSMechanism(config),
    ):
        scores, hits, bits, runtime = [], [], [], []
        for seed in range(repetitions):
            result = mechanism.run(dataset, rng=seed)
            scores.append(f1_score(result.heavy_hitters, truth))
            hits.append(len(set(result.heavy_hitters) & set(truth)))
            bits.append(result.upload_bits())
            runtime.append(result.runtime_seconds)
        table.add_row(
            [
                mechanism.name,
                float(np.mean(scores)),
                f"{np.mean(hits):.1f}/{k}",
                float(np.mean(bits)) / 1000.0,
                float(np.mean(runtime)),
            ]
        )
    print(table.render(title=f"Holiday campaign, epsilon={config.epsilon}, k={k}"))


if __name__ == "__main__":
    main()
