"""Scenario lab: track a gradually drifting top-k under a poisoning party.

Run with::

    PYTHONPATH=src python examples/scenario_drift_attack.py           # full
    PYTHONPATH=src python examples/scenario_drift_attack.py --smoke   # CI scale

The batch mechanisms answer one top-k query over a frozen population; this
example measures what the paper abstracts away — *how well discovery
tracks a moving target under attack*.  A declarative
:class:`~repro.scenarios.scenario.Scenario` composes a Zipf base workload
with two effects: a gradual :class:`~repro.scenarios.effects.DriftSchedule`
that rotates the entire true top-k onto previously cold items, and a
:class:`~repro.scenarios.effects.PoisonedReports` coalition promoting the
coldest items of the domain.  The robustness harness streams the arrivals
through sliding-window discovery (every pass runs through the aggregation
service, so wire bits are exact) and scores each snapshot against the
scenario's exact moving ground truth: time-resolved F1 plus the detection
latency after every drift event.

The same run is one command away from the shell::

    repro serve --scenario examples/specs/drift_attack.yaml --epsilon 5

and ``docs/scenarios.md`` catalogs every other effect.
"""

from __future__ import annotations

import argparse

from repro.datasets.registry import SCALES
from repro.experiments import SMOKE_PRESET
from repro.scenarios import (
    BaseWorkload,
    DriftSchedule,
    PoisonedReports,
    Scenario,
    run_scenario,
)

N_STEPS = 14
BATCH_SIZE = 6_000
#: --smoke: the canonical smoke preset's user reduction applied to this
#: example's per-step arrivals (the stream shape itself stays intact so
#: the drift story survives the shrink).
SMOKE_BATCH_SIZE = max(
    400, int(BATCH_SIZE * SCALES[SMOKE_PRESET["scale"]].users_multiplier)
)


def build_scenario(batch_size: int) -> Scenario:
    return Scenario(
        base=BaseWorkload(
            kind="zipf", n_items=512, n_bits=11, exponent=2.5, shift=6.0, seed=3
        ),
        effects=[
            # Halfway through the stream the whole top-5 rotates onto
            # previously cold items, over a 4-step ramp ...
            DriftSchedule(mode="gradual", start=8, duration=4),
            # ... while 8% of every batch is an attacker coalition
            # promoting the coldest items of the domain.
            PoisonedReports(fraction=0.08),
        ],
        n_steps=N_STEPS,
        batch_size=batch_size,
        k=5,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run at the canonical smoke scale (used by CI)")
    args = parser.parse_args()
    batch_size = SMOKE_BATCH_SIZE if args.smoke else BATCH_SIZE
    scenario = build_scenario(batch_size)

    drift_steps = scenario.drift_steps()
    print(f"{scenario!r}")
    print(f"truth before drift: {scenario.true_top_k(1)}")
    print(f"truth after drift:  {scenario.true_top_k(N_STEPS)}")
    print(f"ground-truth set changes at steps {drift_steps}\n")

    report = run_scenario(
        scenario,
        epsilon=5.0,
        oracle="krr",
        granularity=4,
        window_batches=3,
        stride=2,
        seed=0,
    )
    print(report.render())

    recovered = [e for e in report.events if e["latency_steps"] is not None]
    if recovered:
        worst = max(e["latency_steps"] for e in recovered)
        print(f"\nworst drift-detection latency: {worst} arrival steps")
    dipped = min(r["f1"] for r in report.records)
    print(f"lowest time-resolved F1 while the truth moved: {dipped:.2f}")


if __name__ == "__main__":
    main()
