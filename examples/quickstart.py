"""Quickstart: identify federated heavy hitters with TAPS in ~20 lines.

Run with::

    python examples/quickstart.py            # benchmark scale, a few seconds
    python examples/quickstart.py --smoke    # canonical smoke scale (CI)

It loads the RDB stand-in dataset (two parties: Reddit-like and IMDB-like),
runs the TAPS mechanism under ε-LDP, and compares the estimate against the
exact federated top-k.
"""

from __future__ import annotations

import argparse

from repro import MechanismConfig, TAPSMechanism, f1_score, load_dataset, ncr_score
from repro.experiments import SMOKE_PRESET


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run at the canonical smoke scale (used by CI)")
    args = parser.parse_args()

    # 1. A federated dataset: disjoint parties, each user holds one item.
    scale = SMOKE_PRESET["scale"] if args.smoke else "small"
    dataset = load_dataset("rdb", scale=scale, seed=7)
    print(f"dataset: {dataset.name}, parties: {dataset.party_sizes()}")

    # 2. Protocol parameters: top-k query, privacy budget ε = 4, a 6-level
    #    prefix tree over the dataset's binary item encoding.
    config = MechanismConfig(
        k=SMOKE_PRESET["ks"][0] if args.smoke else 10,
        epsilon=4.0,
        n_bits=dataset.n_bits,
        granularity=6,
        oracle="krr",
    )

    # 3. Run the mechanism.  Every user reports exactly once through an
    #    ε-LDP frequency oracle; the server only ever sees sanitised counts.
    result = TAPSMechanism(config).run(dataset, rng=0)

    # 4. Evaluate against the exact (non-private) ground truth.
    truth = dataset.true_top_k(config.k)
    print(f"\nestimated federated top-{config.k}: {result.heavy_hitters}")
    print(f"exact federated top-{config.k}:     {truth}")
    print(f"F1  = {f1_score(result.heavy_hitters, truth):.3f}")
    print(f"NCR = {ncr_score(result.heavy_hitters, truth):.3f}")
    print(f"privacy accounting OK: {result.accountant.satisfies_ldp()}")
    print(f"total communication: {result.communication_bits() / 8_000:.1f} kB")


if __name__ == "__main__":
    main()
