"""Parallel sweeps: the same grid, three execution backends, one result.

Runs a small figure-style sweep (mechanisms × ε × repetitions) on the
serial backend and again on a parallel backend, verifies the records are
identical, and reports the wall-clock times.  Because per-cell seeds are
fixed before dispatch, the backend only changes *when* cells run — never
what they compute.

Run with::

    python examples/parallel_sweep.py                  # serial vs process
    python examples/parallel_sweep.py --backend thread --workers 4
    python examples/parallel_sweep.py --smoke          # canonical smoke scale (CI)
"""

from __future__ import annotations

import argparse
import os
import time

from repro.experiments import ExperimentSettings, run_sweep


def timed_sweep(settings: ExperimentSettings, backend: str, workers: int | None):
    start = time.perf_counter()
    sweep = run_sweep(
        settings,
        datasets=("rdb",),
        mechanisms=("fedpem", "taps"),
        backend=backend,
        max_workers=workers,
    )
    return sweep, time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", default="process", choices=("thread", "process"),
        help="parallel backend to compare against serial",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count (default: the executor's default, i.e. core count)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="run at the canonical smoke scale (used by CI)")
    args = parser.parse_args()

    settings = ExperimentSettings(
        scale="small", repetitions=2, epsilons=(1.0, 4.0), ks=(10,), seed=2025
    )
    if args.smoke:
        settings = settings.smoke()

    serial, serial_s = timed_sweep(settings, "serial", None)
    parallel, parallel_s = timed_sweep(settings, args.backend, args.workers)

    def strip(records):
        return [{k: v for k, v in r.items() if k != "runtime_seconds"} for r in records]

    identical = strip(serial.records) == strip(parallel.records)
    print(f"cells: {len(serial.records)}  (cores available: {os.cpu_count()})")
    print(f"serial:        {serial_s:6.2f} s")
    print(f"{args.backend:<13} {parallel_s:6.2f} s  ({serial_s / parallel_s:.2f}x)")
    print(f"records identical across backends: {identical}")
    for record in serial.records[:4]:
        print(
            f"  {record['mechanism']:>7}  eps={record['epsilon']:.0f} "
            f"rep={record['repetition']}  f1={record['f1']:.3f}"
        )


if __name__ == "__main__":
    main()
