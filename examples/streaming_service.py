"""Stream one million users through the online aggregation service.

Run with::

    PYTHONPATH=src python examples/streaming_service.py           # 1M users
    PYTHONPATH=src python examples/streaming_service.py --smoke   # CI scale

The batch simulations materialise every report of a level at once, so the
population is capped by an ``(n_users, domain_size)`` matrix in RAM.  In
service mode the same TAP protocol runs as a message pipeline instead:
:class:`~repro.service.clients.ClientPool` emits privatized report batches
of bounded size, the :class:`~repro.service.server.AggregationServer` folds
them into ``O(domain_size)`` shards, and the transcript records the exact
bytes every batch put on the wire.  Peak report-buffer memory is
``batch_size`` reports — never the full population — which is what lets a
laptop serve 1 000 000 users.

A second act feeds a drifting stream through the sliding-window tracker to
show continual heavy-hitter discovery on top of the same service.
"""

from __future__ import annotations

import argparse
import resource
import time

import numpy as np

from repro.core.config import MechanismConfig
from repro.core.tap import TAPMechanism
from repro.datasets.registry import SCALES
from repro.datasets.synthetic import make_syn
from repro.experiments import SMOKE_PRESET
from repro.metrics.scores import f1_score
from repro.service.streaming import SlidingWindowDiscovery

N_USERS = 1_000_000
BATCH_SIZE = 65_536
#: --smoke: the canonical smoke preset's user reduction applied to this
#: example's hand-built population, with a batch size small enough that the
#: run still crosses several wire batches (a pure memory knob).
SMOKE_USERS = int(N_USERS * SCALES[SMOKE_PRESET["scale"]].users_multiplier)
SMOKE_BATCH_SIZE = 8_192


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def service_run(n_users: int, batch_size: int) -> None:
    print(f"generating a {n_users:,}-user SYN population ...")
    dataset = make_syn(total_users=n_users, n_items=2_000, n_bits=12, rng=7)
    print(f"dataset: {dataset.n_parties} parties, {dataset.total_users:,} users")

    # k-RR keeps every report a single index — the service streams batches
    # of at most batch_size of them, so nothing (n_users × domain_size)
    # sized ever exists.  The same config with execution_mode="memory"
    # would be bit-identical for this seed (given equal batching) but
    # perturb each level's group in one shot.
    config = MechanismConfig(
        k=10,
        epsilon=4.0,
        n_bits=dataset.n_bits,
        granularity=6,
        oracle="krr",
        execution_mode="service",
        simulation_mode="per_user",
        report_batch_size=batch_size,
    )

    start = time.perf_counter()
    result = TAPMechanism(config).run(dataset, rng=0)
    elapsed = time.perf_counter() - start

    truth = dataset.true_top_k(config.k)
    print(f"\nservice-mode TAP finished in {elapsed:.1f}s "
          f"(peak RSS {peak_rss_mb():.0f} MiB)")
    print(f"estimated federated top-{config.k}: {result.heavy_hitters}")
    print(f"exact federated top-{config.k}:     {truth}")
    print(f"F1 = {f1_score(result.heavy_hitters, truth):.3f}")

    by_kind = result.transcript.bits_by_kind()
    batches = result.transcript.messages_of_kind("report_batch")
    print(f"\nwire accounting ({result.transcript.n_messages()} messages):")
    print(f"  report batches: {len(batches)} x <= {batch_size:,} reports, "
          f"{by_kind['report_batch'] / 8e6:.2f} MB uploaded")
    print(f"  round broadcasts: {by_kind['service_round_open'] / 8e3:.1f} kB")
    print(f"  total upload: {result.upload_bits() / 8e6:.2f} MB, "
          f"total both ways: {result.communication_bits() / 8e6:.2f} MB")


def streaming_run(n_steps: int = 12) -> None:
    print("\n--- continual tracking over a drifting stream ---")
    config = MechanismConfig(
        k=5, epsilon=5.0, n_bits=10, granularity=5,
        oracle="krr", simulation_mode="per_user",
    )
    tracker = SlidingWindowDiscovery(config, window_batches=4, stride=2, rng=11)
    rng = np.random.default_rng(3)
    for step in range(n_steps):
        # The dominant item flips from 37 to 805 halfway through the stream.
        hot = 37 if step < 6 else 805
        batch = np.concatenate(
            [np.full(3_000, hot), rng.integers(0, 1 << 10, size=1_500)]
        )
        snapshot = tracker.push(batch)
        if snapshot is not None:
            print(f"  step {snapshot.step:2d}: window={snapshot.n_users:,} users, "
                  f"top={list(snapshot.heavy_hitters[:3])}, "
                  f"upload={snapshot.upload_bits / 8e3:.0f} kB")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run at the canonical smoke scale (used by CI)")
    args = parser.parse_args()
    if args.smoke:
        service_run(SMOKE_USERS, SMOKE_BATCH_SIZE)
        streaming_run(n_steps=6)
    else:
        service_run(N_USERS, BATCH_SIZE)
        streaming_run()


if __name__ == "__main__":
    main()
