"""Shared fixtures: tiny deterministic datasets and configurations.

All fixtures are deliberately small so the whole suite runs in well under a
minute; statistical assertions use loose tolerances and fixed seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MechanismConfig
from repro.datasets.base import FederatedDataset
from repro.datasets.registry import load_dataset
from repro.federation.party import Party


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def skewed_party() -> Party:
    """A single party with a strongly skewed item distribution.

    Item 3 is held by half the users, item 12 by a quarter, the rest spread
    over a handful of items — heavy hitters are unambiguous.
    """
    gen = np.random.default_rng(7)
    items = np.concatenate(
        [
            np.full(500, 3),
            np.full(250, 12),
            np.full(120, 40),
            np.full(80, 41),
            gen.integers(0, 64, size=50),
        ]
    )
    gen.shuffle(items)
    return Party(name="skewed", items=items)


@pytest.fixture
def two_party_dataset() -> FederatedDataset:
    """A small two-party dataset with known global heavy hitters.

    Items 5 and 9 are globally dominant; item 50 is popular only in party B
    (the non-IID confuser); the tail is uniform noise.
    """
    gen = np.random.default_rng(11)
    party_a = np.concatenate(
        [
            np.full(400, 5),
            np.full(300, 9),
            np.full(100, 17),
            gen.integers(0, 256, size=200),
        ]
    )
    party_b = np.concatenate(
        [
            np.full(250, 5),
            np.full(150, 9),
            np.full(200, 50),
            gen.integers(0, 256, size=100),
        ]
    )
    gen.shuffle(party_a)
    gen.shuffle(party_b)
    return FederatedDataset(
        name="toy2",
        parties=[Party("alpha", party_a), Party("beta", party_b)],
        n_bits=10,
    )


@pytest.fixture
def tiny_config(two_party_dataset) -> MechanismConfig:
    """A mechanism configuration matched to the two-party toy dataset."""
    return MechanismConfig(
        k=5,
        epsilon=4.0,
        n_bits=two_party_dataset.n_bits,
        granularity=5,
        simulation_mode="aggregate",
    )


@pytest.fixture(scope="session")
def tiny_rdb() -> FederatedDataset:
    """The RDB stand-in at smoke-test scale (shared across tests for speed)."""
    return load_dataset("rdb", scale="tiny", seed=3)
