"""Tests for the shared shallow trie construction (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.config import MechanismConfig
from repro.core.estimation import PartyEstimator
from repro.core.shared_trie import construct_shared_trie
from repro.encoding.prefix import prefixes_of_items
from repro.federation.transcript import FederationTranscript
from repro.ldp.budget import PrivacyAccountant


def _build_estimators(dataset, config, seed=0):
    oracle = config.make_oracle()
    accountant = PrivacyAccountant(epsilon=config.epsilon)
    rng = np.random.default_rng(seed)
    return {
        party.name: PartyEstimator(party, config, oracle, rng, accountant)
        for party in dataset.parties
    }, accountant


class TestConstructSharedTrie:
    def test_global_prefixes_have_shared_level_length(self, two_party_dataset, tiny_config):
        estimators, _ = _build_estimators(two_party_dataset, tiny_config)
        transcript = FederationTranscript()
        shared = construct_shared_trie(estimators, transcript)
        gs = tiny_config.effective_shared_level
        expected_length = estimators["alpha"].prefix_length(gs)
        assert shared.global_prefixes
        assert all(len(p) == expected_length for p in shared.global_prefixes)
        assert len(shared.global_prefixes) <= tiny_config.k

    def test_all_parties_receive_the_same_warm_start(self, two_party_dataset, tiny_config):
        estimators, _ = _build_estimators(two_party_dataset, tiny_config)
        shared = construct_shared_trie(estimators, FederationTranscript())
        assert shared.per_party_selected["alpha"] == shared.per_party_selected["beta"]
        assert shared.per_party_selected["alpha"] == shared.global_prefixes

    def test_global_prefixes_cover_dominant_items(self, two_party_dataset, tiny_config):
        # Items 5 and 9 dominate globally; with epsilon=4 their shared-level
        # prefixes should be among the aggregated top-k.
        estimators, _ = _build_estimators(two_party_dataset, tiny_config, seed=1)
        shared = construct_shared_trie(estimators, FederationTranscript())
        gs = tiny_config.effective_shared_level
        length = estimators["alpha"].prefix_length(gs)
        truth_prefixes = set(
            prefixes_of_items(np.array([5, 9]), two_party_dataset.n_bits, length)
        )
        assert truth_prefixes & set(shared.global_prefixes)

    def test_phase1_levels_recorded_per_party(self, two_party_dataset, tiny_config):
        estimators, _ = _build_estimators(two_party_dataset, tiny_config)
        shared = construct_shared_trie(estimators, FederationTranscript())
        gs = tiny_config.effective_shared_level
        for name in ("alpha", "beta"):
            assert len(shared.per_party_levels[name]) == gs
            assert [lev.level for lev in shared.per_party_levels[name]] == list(
                range(1, gs + 1)
            )

    def test_transcript_logs_uploads_and_broadcasts(self, two_party_dataset, tiny_config):
        estimators, _ = _build_estimators(two_party_dataset, tiny_config)
        transcript = FederationTranscript()
        construct_shared_trie(estimators, transcript)
        kinds = {m.kind for m in transcript.messages}
        assert {"parameters", "shared_trie_report", "shared_prefixes"} <= kinds
        assert transcript.upload_bits() > 0
        assert transcript.broadcast_bits() > 0

    def test_ldp_accounting_one_report_per_phase1_user(self, two_party_dataset, tiny_config):
        estimators, accountant = _build_estimators(two_party_dataset, tiny_config)
        construct_shared_trie(estimators, FederationTranscript())
        assert accountant.satisfies_ldp()

    def test_disabled_shared_trie_keeps_local_selections(self, two_party_dataset, tiny_config):
        config = tiny_config.with_updates(use_shared_trie=False)
        estimators, _ = _build_estimators(two_party_dataset, config, seed=2)
        shared = construct_shared_trie(estimators, FederationTranscript())
        assert shared.global_prefixes is None
        assert set(shared.per_party_selected) == {"alpha", "beta"}

    def test_empty_estimator_mapping_rejected(self):
        with pytest.raises(ValueError):
            construct_shared_trie({}, FederationTranscript())
