"""Property-based tests (hypothesis) for the core mechanism components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import aggregate_local_reports
from repro.core.extension import adaptive_extension_count, select_anchor
from repro.core.pruning import PruningCandidates, consensus_prune
from repro.encoding.prefix import extend_prefixes
from repro.metrics.scores import f1_score, ncr_score
from repro.trie.candidate_domain import CandidateDomain

PREFIX_LISTS = st.lists(
    st.integers(min_value=0, max_value=15), min_size=1, max_size=12, unique=True
).map(lambda ids: [format(i, "04b") for i in ids])


@given(
    freqs=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    k=st.integers(min_value=1, max_value=20),
    sigma=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_adaptive_extension_always_within_domain(freqs, k, sigma):
    """1 <= t <= |domain| and 1 <= k* <= min(k, |domain|) for any input."""
    sorted_freqs = np.sort(np.array(freqs))[::-1]
    t, k_star, eta = adaptive_extension_count(sorted_freqs, k, sigma)
    assert 1 <= t <= len(freqs)
    assert 1 <= k_star <= max(1, min(k, len(freqs)))
    assert 0.0 <= eta <= k


@given(
    freqs=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=3,
        max_size=40,
    ),
    k=st.integers(min_value=2, max_value=15),
)
@settings(max_examples=60, deadline=None)
def test_anchor_never_exceeds_k(freqs, k):
    sorted_freqs = np.sort(np.array(freqs))[::-1]
    assert select_anchor(sorted_freqs, k) <= k


@given(prefixes=PREFIX_LISTS, extra=st.integers(min_value=0, max_value=4))
@settings(max_examples=50, deadline=None)
def test_extend_prefixes_cardinality_and_length(prefixes, extra):
    """|extended| = |prefixes| * 2^extra and every child keeps its parent prefix."""
    extended = extend_prefixes(prefixes, extra)
    assert len(extended) == len(prefixes) * (2**extra)
    for child in extended:
        assert len(child) == 4 + extra
        assert any(child.startswith(parent) for parent in prefixes)


@given(prefixes=PREFIX_LISTS, items=st.lists(st.integers(min_value=0, max_value=255), max_size=50))
@settings(max_examples=50, deadline=None)
def test_candidate_domain_encoding_total(prefixes, items):
    """Every item maps to exactly one candidate index (or the dummy)."""
    domain = CandidateDomain(prefixes)
    encoded = domain.encode_items(np.array(items, dtype=np.int64), n_bits=8)
    assert encoded.shape == (len(items),)
    if len(items):
        assert encoded.min() >= 0
        assert encoded.max() <= domain.dummy_index


@given(
    estimates=st.dictionaries(
        st.text(alphabet="ab", min_size=1, max_size=3),
        st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=10,
        ),
        min_size=1,
        max_size=5,
    ),
    k=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_aggregation_returns_sorted_unique_topk(estimates, k):
    heavy, totals = aggregate_local_reports(estimates, k)
    assert len(heavy) == len(set(heavy))
    assert len(heavy) <= k
    values = [totals[item] for item in heavy]
    assert values == sorted(values, reverse=True)
    for item in totals:
        if item not in heavy and heavy:
            assert totals[item] <= totals[heavy[-1]] + 1e-9


@given(
    est=st.lists(st.integers(min_value=0, max_value=30), max_size=15),
    truth=st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=15, unique=True),
)
@settings(max_examples=80, deadline=None)
def test_metric_bounds_and_perfect_case(est, truth):
    assert 0.0 <= f1_score(est, truth) <= 1.0
    assert 0.0 <= ncr_score(est, truth) <= 1.0
    assert f1_score(truth, truth) == 1.0
    assert ncr_score(truth, truth) == 1.0


@given(
    infrequent=PREFIX_LISTS,
    frequent=PREFIX_LISTS,
    k=st.integers(min_value=1, max_value=8),
    epsilon=st.floats(min_value=0.2, max_value=6.0),
    gamma=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=50, deadline=None)
def test_consensus_prune_subset_invariant(infrequent, frequent, k, epsilon, gamma):
    """The pruning set is always a subset of the suggested candidates."""
    candidates = PruningCandidates(
        level=2,
        prefix_length=4,
        infrequent=tuple(infrequent),
        frequent=tuple((p, 0.1) for p in frequent),
    )
    rng = np.random.default_rng(0)
    validated_inf = {p: float(rng.random()) for p in infrequent}
    validated_freq = {p: float(rng.random()) for p in frequent}
    pruned = consensus_prune(
        candidates, validated_inf, validated_freq, k=k, epsilon=epsilon, gamma=gamma
    )
    universe = set(infrequent) | set(frequent)
    assert pruned <= universe
