"""Property tests for the consistent-hash ring (``repro.cluster.ring``).

The three load-bearing properties the cluster rests on: deterministic
assignment under a fixed seed, disjoint full-domain cover for every shard
count, and bounded key movement (only ever *to* the new shard) when the
cluster grows N → N+1.
"""

from __future__ import annotations

import pytest

from repro.cluster.ring import DEFAULT_VNODES, HashRing


class TestDeterminism:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 8])
    def test_same_parameters_route_identically(self, n_shards):
        a = HashRing(n_shards, seed=11)
        b = HashRing(n_shards, seed=11)
        assert a.version == b.version
        for candidate in range(512):
            assert a.owner_of_candidate(candidate) == b.owner_of_candidate(candidate)
        assert a.candidate_ranges(512) == b.candidate_ranges(512)
        for seq in range(64):
            assert a.route_batch("alpha:4:0", seq, 257) == b.route_batch(
                "alpha:4:0", seq, 257
            )

    def test_different_seeds_give_different_assignments(self):
        a = HashRing(4, seed=0)
        b = HashRing(4, seed=1)
        assert a.version != b.version
        owners_a = [a.owner_of_candidate(i) for i in range(512)]
        owners_b = [b.owner_of_candidate(i) for i in range(512)]
        assert owners_a != owners_b

    def test_version_covers_every_parameter(self):
        base = HashRing(3, seed=0)
        assert base.version != HashRing(4, seed=0).version
        assert base.version != HashRing(3, seed=1).version
        assert base.version != HashRing(3, seed=0, n_vnodes=DEFAULT_VNODES + 1).version

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, n_vnodes=0)
        with pytest.raises(ValueError):
            HashRing(2).candidate_ranges(0)


class TestDisjointFullCover:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 5, 6])
    @pytest.mark.parametrize("domain_size", [1, 97, 257])
    def test_ranges_partition_the_domain(self, n_shards, domain_size):
        ranges = HashRing(n_shards, seed=0).candidate_ranges(domain_size)
        # Contiguous, ordered, disjoint, and covering [0, domain_size).
        assert ranges[0][0] == 0
        assert ranges[-1][1] == domain_size
        for (_, stop, _), (start, _, _) in zip(ranges, ranges[1:]):
            assert start == stop
        # Coalesced: adjacent runs always change owner.
        for (_, _, left), (_, _, right) in zip(ranges, ranges[1:]):
            assert left != right
        # Every owner is a real shard index.
        assert all(0 <= shard < n_shards for _, _, shard in ranges)

    @pytest.mark.parametrize("n_shards", [2, 3, 4, 5, 6])
    def test_every_shard_owns_part_of_a_real_domain(self, n_shards):
        # Deterministic under seed 0: at a realistic domain size, no
        # shard ends up owning nothing (64 vnodes keep the skew modest).
        owners = {s for _, _, s in HashRing(n_shards, seed=0).candidate_ranges(4096)}
        assert owners == set(range(n_shards))

    def test_ranges_agree_with_pointwise_ownership(self):
        ring = HashRing(3, seed=5)
        ranges = ring.candidate_ranges(300)
        for start, stop, shard in ranges:
            for candidate in range(start, stop):
                assert ring.owner_of_candidate(candidate) == shard

    def test_batch_routing_lands_on_candidate_owners(self):
        ring = HashRing(4, seed=0)
        owners = {s for _, _, s in ring.candidate_ranges(257)}
        for seq in range(128):
            assert ring.route_batch("alpha:6:0", seq, 257) in owners


class TestBoundedMovement:
    DOMAIN = 2048

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 5])
    def test_growth_moves_keys_only_to_the_new_shard(self, n_shards):
        before = HashRing(n_shards, seed=0)
        after = HashRing(n_shards + 1, seed=0)
        moved = 0
        for candidate in range(self.DOMAIN):
            old = before.owner_of_candidate(candidate)
            new = after.owner_of_candidate(candidate)
            if old != new:
                moved += 1
                # The defining consistent-hashing property: growth only
                # ever donates keys to the shard that just joined.
                assert new == n_shards, (candidate, old, new)
        # Expected fraction is 1/(N+1); allow 2x slack for hash noise
        # (the measured fractions sit within ~10% of ideal).
        assert 0 < moved <= 2 * self.DOMAIN // (n_shards + 1)

    def test_full_rebuild_at_same_size_moves_nothing(self):
        before = HashRing(4, seed=0)
        after = HashRing(4, seed=0)
        assert before.candidate_ranges(self.DOMAIN) == after.candidate_ranges(
            self.DOMAIN
        )
