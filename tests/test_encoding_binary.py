"""Tests for repro.encoding.binary."""

import numpy as np
import pytest

from repro.encoding.binary import BinaryEncoder


class TestBinaryEncoder:
    def test_encode_known_value(self):
        assert BinaryEncoder(4).encode(5) == "0101"

    def test_encode_decode_roundtrip(self):
        enc = BinaryEncoder(8)
        for item in [0, 1, 37, 255]:
            assert enc.decode(enc.encode(item)) == item

    def test_domain_size(self):
        assert BinaryEncoder(10).domain_size == 1024

    def test_prefix(self):
        enc = BinaryEncoder(6)
        assert enc.prefix(0b101100, 3) == "101"
        assert enc.prefix(0b101100, 0) == ""
        assert enc.prefix(0b101100, 6) == "101100"

    def test_out_of_range_item_raises(self):
        enc = BinaryEncoder(4)
        with pytest.raises(ValueError):
            enc.encode(16)
        with pytest.raises(ValueError):
            enc.encode(-1)

    def test_decode_wrong_width_raises(self):
        with pytest.raises(ValueError):
            BinaryEncoder(4).decode("01")

    def test_prefix_bad_length_raises(self):
        with pytest.raises(ValueError):
            BinaryEncoder(4).prefix(3, 5)

    def test_encode_many_matches_encode(self):
        enc = BinaryEncoder(5)
        items = np.array([0, 7, 31])
        assert enc.encode_many(items) == [enc.encode(i) for i in items]

    def test_prefix_ids_match_string_prefixes(self):
        enc = BinaryEncoder(8)
        items = np.array([3, 200, 129])
        ids = enc.prefix_ids(items, 3)
        strings = [enc.prefix(i, 3) for i in items]
        assert [enc.prefix_id_to_string(int(pid), 3) for pid in ids] == strings

    def test_prefix_id_to_string_zero_length(self):
        assert BinaryEncoder(4).prefix_id_to_string(0, 0) == ""

    def test_prefix_id_to_string_overflow_raises(self):
        with pytest.raises(ValueError):
            BinaryEncoder(8).prefix_id_to_string(8, 3)

    def test_invalid_widths_raise(self):
        with pytest.raises(ValueError):
            BinaryEncoder(0)
        with pytest.raises(ValueError):
            BinaryEncoder(64)

    def test_equality_and_hash(self):
        assert BinaryEncoder(5) == BinaryEncoder(5)
        assert BinaryEncoder(5) != BinaryEncoder(6)
        assert hash(BinaryEncoder(5)) == hash(BinaryEncoder(5))

    def test_encode_many_out_of_range_raises(self):
        with pytest.raises(ValueError):
            BinaryEncoder(3).encode_many(np.array([9]))
