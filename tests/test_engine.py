"""Unit tests for the execution engine: backends, seed fan-out, errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    fan_out_seeds,
    get_backend,
)
from repro.engine.backends import _WORKER_ENV, in_worker_process
from repro.utils.rng import spawn_children, spawn_seeds

BACKEND_NAMES = ("serial", "thread", "process")


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"boom at {x}")
    return x


def _seeded_draw(task, seed):
    return (task, int(np.random.default_rng(seed).integers(0, 1_000_000)))


def _read_worker_flag(_task):
    return in_worker_process()


@pytest.fixture(params=BACKEND_NAMES)
def backend(request):
    instance = get_backend(request.param, max_workers=2)
    yield instance
    instance.shutdown()


class TestRegistry:
    def test_available_backends(self):
        assert set(available_backends()) == set(BACKEND_NAMES)

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("thread"), ThreadBackend)
        assert isinstance(get_backend("process"), ProcessBackend)

    def test_none_resolves_to_serial(self):
        assert isinstance(get_backend(None), SerialBackend)

    def test_instance_passes_through(self):
        instance = SerialBackend()
        assert get_backend(instance) is instance

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("bogus")

    def test_case_insensitive(self):
        assert isinstance(get_backend("Thread"), ThreadBackend)

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError):
            ThreadBackend(max_workers=0)

    def test_process_inside_worker_degrades_to_serial(self, monkeypatch):
        monkeypatch.setenv(_WORKER_ENV, "1")
        assert isinstance(get_backend("process"), SerialBackend)
        # Only process requests degrade; threads are still fine in a worker.
        assert isinstance(get_backend("thread"), ThreadBackend)


class TestMapTasks:
    def test_results_in_task_order(self, backend):
        assert backend.map_tasks(_square, list(range(10))) == [
            x * x for x in range(10)
        ]

    def test_empty_task_list(self, backend):
        assert backend.map_tasks(_square, []) == []

    def test_error_propagates_with_original_type(self, backend):
        with pytest.raises(ValueError, match="boom at 3"):
            backend.map_tasks(_fail_on_three, [1, 2, 3, 4])

    def test_submit_returns_future(self, backend):
        assert backend.submit(_square, 7).result() == 49

    def test_submit_error_lands_in_future(self, backend):
        future = backend.submit(_fail_on_three, 3)
        assert isinstance(future.exception(), ValueError)

    def test_context_manager_shuts_down(self):
        with get_backend("thread", max_workers=1) as engine:
            assert engine.map_tasks(_square, [2]) == [4]

    def test_process_workers_are_marked(self):
        with get_backend("process", max_workers=1) as engine:
            assert engine.map_tasks(_read_worker_flag, [None]) == [True]
        assert not in_worker_process()


class TestSeedFanOut:
    def test_seeds_are_ordered_and_deterministic(self):
        a = fan_out_seeds(np.random.default_rng(5), 8)
        b = fan_out_seeds(np.random.default_rng(5), 8)
        assert a == b
        assert len(set(a)) == 8

    def test_matches_spawn_children_streams(self):
        seeds = spawn_seeds(np.random.default_rng(9), 4)
        children = spawn_children(np.random.default_rng(9), 4)
        for seed, child in zip(seeds, children):
            expected = np.random.default_rng(seed).integers(0, 1 << 30, size=5)
            np.testing.assert_array_equal(child.integers(0, 1 << 30, size=5), expected)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(np.random.default_rng(0), -1)

    def test_map_seeded_identical_across_backends(self):
        reference = None
        for name in BACKEND_NAMES:
            with get_backend(name, max_workers=2) as engine:
                out = engine.map_seeded(_seeded_draw, ["a", "b", "c"], rng=123)
            if reference is None:
                reference = out
            else:
                assert out == reference, name
        assert [task for task, _ in reference] == ["a", "b", "c"]


class TestGatherErrorSelection:
    def test_failure_surfaces_without_waiting_for_slow_tasks(self):
        # Task 1 fails immediately while task 3 (also doomed) is still
        # sleeping: gather must raise task 1's error promptly — inspecting
        # only finished futures — instead of blocking on the slow one.
        import time

        def fail(i):
            if i == 3:
                time.sleep(0.5)
            if i in (1, 3):
                raise RuntimeError(f"task {i}")
            return i

        with get_backend("thread", max_workers=4) as engine:
            start = time.perf_counter()
            with pytest.raises(RuntimeError, match="task 1"):
                engine.map_tasks(fail, [0, 1, 2, 3])
            assert time.perf_counter() - start < 0.4
