"""Tests for the experiment harness (runner, figures, tables, reporting)."""

import numpy as np
import pytest

from repro.experiments.figures import figure4, figure5, figure6, figure7
from repro.experiments.reporting import (
    format_series,
    records_to_table,
    render_records,
    series_by_epsilon,
)
from repro.experiments.runner import (
    ExperimentSettings,
    MECHANISM_REGISTRY,
    build_mechanism,
    evaluate_run,
    make_config,
    run_sweep,
)
from repro.experiments.tables import table2, table3, table4, table5, table6, table7, table8


@pytest.fixture(scope="module")
def smoke_settings() -> ExperimentSettings:
    return ExperimentSettings().smoke()


class TestSettings:
    def test_smoke_is_reduced(self):
        smoke = ExperimentSettings().smoke()
        assert smoke.scale == "tiny"
        assert smoke.repetitions == 1
        assert len(smoke.datasets) == 1

    def test_registry_contains_all_mechanisms(self):
        assert set(MECHANISM_REGISTRY) == {"gtf", "fedpem", "tap", "taps"}

    def test_build_mechanism_unknown_raises(self, smoke_settings, tiny_rdb):
        config = make_config(smoke_settings, tiny_rdb, k=5, epsilon=1.0)
        with pytest.raises(KeyError):
            build_mechanism("bogus", config)

    def test_unknown_execution_mode_raises(self):
        with pytest.raises(ValueError, match="execution_mode"):
            ExperimentSettings(execution_mode="quantum")

    def test_service_mode_forwards_into_cell_configs(self, tiny_rdb):
        settings = ExperimentSettings().smoke().with_updates(
            execution_mode="service", report_batch_size=128
        )
        config = make_config(settings, tiny_rdb, k=5, epsilon=4.0)
        assert config.execution_mode == "service"
        assert config.report_batch_size == 128
        assert config.simulation_mode == "per_user"

    def test_service_sweep_runs_with_exact_wire_records(self):
        settings = ExperimentSettings().smoke().with_updates(
            execution_mode="service", report_batch_size=256, mechanisms=("tap",)
        )
        sweep = run_sweep(settings)
        assert len(sweep.records) == 1
        assert sweep.records[0]["communication_bits"] > 0


class TestRunSweep:
    def test_record_schema(self, smoke_settings):
        sweep = run_sweep(smoke_settings, mechanisms=("fedpem",))
        assert sweep.records, "sweep must produce at least one record"
        record = sweep.records[0]
        for key in ("dataset", "mechanism", "epsilon", "k", "f1", "ncr",
                    "recall_local_avg", "communication_bits", "runtime_seconds"):
            assert key in record
        assert 0.0 <= record["f1"] <= 1.0
        assert 0.0 <= record["ncr"] <= 1.0

    def test_grid_size(self, smoke_settings):
        sweep = run_sweep(
            smoke_settings,
            mechanisms=("fedpem", "taps"),
            epsilons=(2.0, 4.0),
            ks=(5,),
        )
        assert len(sweep.records) == 2 * 2 * 1 * smoke_settings.repetitions

    def test_filter_and_mean(self, smoke_settings):
        sweep = run_sweep(smoke_settings, mechanisms=("fedpem", "taps"))
        fed = sweep.filter(mechanism="fedpem")
        assert fed and all(r["mechanism"] == "fedpem" for r in fed)
        assert 0.0 <= sweep.mean_metric("f1", mechanism="taps") <= 1.0
        assert np.isnan(sweep.mean_metric("f1", mechanism="absent"))

    def test_evaluate_run_consistency(self, smoke_settings, tiny_rdb):
        config = make_config(smoke_settings, tiny_rdb, k=5, epsilon=4.0)
        result = build_mechanism("taps", config).run(tiny_rdb, rng=0)
        metrics = evaluate_run(result, tiny_rdb, 5)
        assert set(metrics) == {
            "f1", "ncr", "recall_local_avg", "communication_bits", "runtime_seconds",
        }


class TestReporting:
    RECORDS = [
        {"mechanism": "a", "epsilon": 1.0, "f1": 0.2},
        {"mechanism": "a", "epsilon": 2.0, "f1": 0.4},
        {"mechanism": "b", "epsilon": 1.0, "f1": 0.3},
        {"mechanism": "b", "epsilon": 2.0, "f1": 0.5},
        {"mechanism": "b", "epsilon": 2.0, "f1": 0.7},
    ]

    def test_records_to_table_pivots_and_averages(self):
        table = records_to_table(
            self.RECORDS, rows="mechanism", columns="epsilon", value="f1"
        )
        rendered = table.render()
        assert "0.6000" in rendered  # mean of 0.5 and 0.7
        assert table.n_rows == 2

    def test_records_to_table_max_aggregate(self):
        table = records_to_table(
            self.RECORDS, rows="mechanism", columns="epsilon", value="f1", aggregate="max"
        )
        assert "0.7000" in table.render()

    def test_records_to_table_missing_cells(self):
        records = [{"mechanism": "a", "epsilon": 1.0, "f1": 0.5}]
        table = records_to_table(records, rows="mechanism", columns="epsilon", value="f1")
        assert table.n_rows == 1

    def test_invalid_aggregate(self):
        with pytest.raises(ValueError):
            records_to_table(self.RECORDS, rows="mechanism", columns="epsilon",
                             value="f1", aggregate="median")

    def test_render_records_shortcut(self):
        text = render_records(
            self.RECORDS, rows="mechanism", columns="epsilon", value="f1", title="T"
        )
        assert text.startswith("T")

    def test_series_by_epsilon(self):
        series = series_by_epsilon(self.RECORDS)
        assert series["b"][2.0] == pytest.approx(0.6)
        text = format_series(series, title="panel")
        assert "eps=1" in text and "panel" in text


class TestFigures:
    def test_figure4_panels_and_text(self, smoke_settings):
        result = figure4(smoke_settings)
        assert result.records
        panel = result.panel("rdb", smoke_settings.ks[0])
        assert set(panel) == {"gtf", "fedpem", "taps"}
        assert "Figure 4" in result.text

    def test_figure5_uses_ncr(self, smoke_settings):
        result = figure5(smoke_settings)
        assert all("ncr" in rec for rec in result.records)

    def test_figure6_covers_both_oracles(self, smoke_settings):
        result = figure6(smoke_settings)
        oracles = {rec["oracle"] for rec in result.records}
        assert oracles == {"oue", "olh"}

    def test_figure7_compares_tap_and_taps(self, smoke_settings):
        result = figure7(smoke_settings)
        mechanisms = {rec["mechanism"] for rec in result.records}
        assert mechanisms == {"tap", "taps"}


class TestTables:
    def test_table2_lists_all_datasets(self, smoke_settings):
        result = table2(smoke_settings)
        assert result.table.n_rows == 5
        assert "RDB" in result.text

    def test_table3_step_sizes(self, smoke_settings):
        result = table3(smoke_settings, step_sizes=(2, 4))
        steps = {rec["step_size"] for rec in result.records}
        assert steps == {2, 4}

    def test_table4_scalability_columns(self, smoke_settings):
        result = table4(smoke_settings, user_fractions=(0.5, 1.0))
        fractions = {rec["user_fraction"] for rec in result.records}
        assert fractions == {0.5, 1.0}
        assert all(rec["oue_communication_bits"] > rec["communication_bits"]
                   for rec in result.records)

    def test_table5_variants(self, smoke_settings):
        result = table5(smoke_settings)
        variants = {rec["variant"] for rec in result.records}
        assert variants == {"t=k/2", "t=k", "t=2k", "t=3k", "adaptive"}

    def test_table6_ablation_flags(self, smoke_settings):
        result = table6(smoke_settings)
        assert {rec["shared_trie"] for rec in result.records} == {True, False}

    def test_table7_recall_and_improvement(self, smoke_settings):
        result = table7(smoke_settings)
        assert all(0.0 <= rec["recall_taps"] <= 1.0 for rec in result.records)

    def test_table8_betas(self, smoke_settings):
        result = table8(smoke_settings, betas=(0.2, 0.8))
        assert {rec["beta"] for rec in result.records} == {0.2, 0.8}
