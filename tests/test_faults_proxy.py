"""Chaos-proxy behaviour against a live gateway (ISSUE 8).

Covers the proxy's relay semantics (transparent when quiet, frame-exact
faults when not) and the two satellite regressions:

* **Straggler vs the finalize barrier** — without a per-operation
  deadline, a shard that trickles frames slower than the socket timeout
  stretches a cluster finalize indefinitely; with ``op_timeout`` the
  barrier surfaces the structured ``shard_unavailable`` error fast.
* **Duplicated acks mid-pipeline** — acknowledgement frames duplicated
  on the wire must neither double-count a batch nor mint send credit;
  the connection counts them (``duplicate_acks``) and the round's result
  stays bit-identical to the clean run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster.coordinator import ClusterConnection
from repro.faults.profile import FaultProfile, compose
from repro.faults.proxy import FaultProxy, parse_proxy_target
from repro.ldp.registry import make_oracle
from repro.net import start_gateway
from repro.net.client import GatewayConnection
from repro.net.framing import (
    FRAME_REPORT_BATCH,
    FRAME_ROUND_CONTROL,
    FRAME_SHARD_STATE,
    FrameError,
    WireFormatError,
)
from repro.service.protocol import ReportBatch, RoundBroadcast, encode_report_batch
from repro.service.server import ServiceError
from repro.trie.candidate_domain import CandidateDomain

#: The failure surface a chaos cell may legitimately present.
STRUCTURED = (ServiceError, WireFormatError, FrameError, ConnectionError, OSError, EOFError)


@pytest.fixture(scope="module")
def gateway():
    with start_gateway() as handle:
        yield handle


def _open_round(connection, *, level: int = 4, party: str = "alpha"):
    domain = CandidateDomain.full_domain(level)
    round_id, _ = connection.open_round(
        RoundBroadcast(
            party=party,
            level=level,
            oracle_name="krr",
            epsilon=4.0,
            domain_size=domain.size,
            prefixes=tuple(domain.prefixes),
        )
    )
    return round_id, domain


def _payload(domain, *, seed: int = 0, party: str = "alpha", level: int = 4) -> bytes:
    oracle = make_oracle("krr", 4.0)
    gen = np.random.default_rng(seed)
    values = gen.integers(0, domain.size, size=32)
    reports = oracle.perturb(values, domain.size, gen)
    return encode_report_batch(
        ReportBatch(
            party=party, level=level, oracle_name=oracle.name, epsilon=4.0,
            domain_size=domain.size,
            value_domain=oracle.report_value_domain(domain.size),
            n_users=len(values), reports=reports,
        )
    )


def _run_round(address: str, *, n_batches: int = 6, **connection_kwargs):
    """One deterministic round; returns (estimate, connection counters)."""
    with GatewayConnection(address, timeout=10.0, **connection_kwargs) as connection:
        round_id, domain = _open_round(connection)
        for seed in range(n_batches):
            connection.send_batch(round_id, _payload(domain, seed=seed))
        estimate = connection.finalize(round_id)
        return estimate, connection.duplicate_acks


class TestRelay:
    def test_quiet_profile_is_transparent(self, gateway):
        """All-zero probabilities: the proxy is a pure relay — the round's
        estimate is bit-identical to the direct connection's and no fault
        event is ever counted."""
        direct, _ = _run_round(gateway.address)
        with FaultProxy(gateway.address, FaultProfile(name="quiet")) as proxy:
            proxied, _ = _run_round(proxy.address)
            assert proxy.n_faults == 0
        assert np.array_equal(proxied.estimated_counts, direct.estimated_counts)
        assert np.array_equal(proxied.estimated_frequencies, direct.estimated_frequencies)

    def test_latency_injection_changes_timing_never_results(self, gateway):
        direct, _ = _run_round(gateway.address)
        slow = FaultProfile(name="lag", delay_ms=5.0, direction="up")
        with FaultProxy(gateway.address, slow) as proxy:
            proxied, _ = _run_round(proxy.address)
            # Plain latency is not a fault event: nothing to count.
            assert proxy.n_faults == 0
        assert np.array_equal(proxied.estimated_counts, direct.estimated_counts)

    def test_slow_loris_trickle_still_converges(self, gateway):
        direct, _ = _run_round(gateway.address, n_batches=2)
        loris = FaultProfile(
            name="loris", bytes_per_sec=20_000, direction="up",
            kinds=(FRAME_REPORT_BATCH,),
        )
        with FaultProxy(gateway.address, loris) as proxy:
            proxied, _ = _run_round(proxy.address, n_batches=2)
        assert np.array_equal(proxied.estimated_counts, direct.estimated_counts)

    def test_parse_proxy_target(self):
        assert parse_proxy_target("127.0.0.1:80") == ("127.0.0.1", 80)
        assert parse_proxy_target(("h", 9)) == ("h", 9)
        with pytest.raises(ValueError, match="host:port"):
            parse_proxy_target("no-port")


class TestFaultInjection:
    def test_corruption_is_always_protocol_visible(self, gateway):
        """A flipped byte inside the report frame's routing fields must
        surface as a structured error (or a bounded timeout) — never as a
        silently wrong estimate."""
        chaos = FaultProfile(
            name="corrupt", seed=5, corrupt=1.0, corrupt_window=8,
            direction="up", kinds=(FRAME_REPORT_BATCH,), max_faults=1,
        )
        with FaultProxy(gateway.address, chaos) as proxy:
            with pytest.raises(STRUCTURED):
                _run_round(proxy.address, op_timeout=1.5)
            assert proxy.counters.get("corrupt") == 1

    def test_disconnect_mid_round_breaks_the_connection(self, gateway):
        chaos = FaultProfile(
            name="cut", seed=3, disconnect=1.0, direction="up",
            kinds=(FRAME_REPORT_BATCH,), max_faults=1,
        )
        with FaultProxy(gateway.address, chaos) as proxy:
            with pytest.raises((ConnectionError, OSError, EOFError)):
                _run_round(proxy.address, op_timeout=2.0)
            assert proxy.counters.get("disconnect") == 1

    def test_truncation_tears_the_stream(self, gateway):
        chaos = FaultProfile(
            name="tear", seed=7, truncate=1.0, direction="up",
            kinds=(FRAME_REPORT_BATCH,), max_faults=1,
        )
        with FaultProxy(gateway.address, chaos) as proxy:
            with pytest.raises(STRUCTURED):
                _run_round(proxy.address, op_timeout=2.0)
            assert proxy.counters.get("truncate") == 1

    def test_composed_layers_apply_in_order(self, gateway):
        """A delay layer composed with a corrupt layer: the corrupt layer
        still fires (composition does not mask), and the chain's counters
        attribute the events."""
        chain = compose(
            FaultProfile(name="lag", delay_ms=2.0, direction="up"),
            FaultProfile(
                name="corrupt", seed=5, corrupt=1.0, corrupt_window=8,
                direction="up", kinds=(FRAME_REPORT_BATCH,), max_faults=1,
            ),
        )
        with FaultProxy(gateway.address, chain) as proxy:
            with pytest.raises(STRUCTURED):
                _run_round(proxy.address, op_timeout=1.5)
            assert proxy.counters.get("corrupt") == 1


class TestStragglerDeadline:
    """Satellite regression: a straggling shard vs the finalize barrier."""

    STRAGGLE = FaultProfile(
        name="straggler", straggle=1.0, straggle_ms=1500.0,
        direction="down", kinds=(FRAME_SHARD_STATE,),
    )

    def test_straggler_without_deadline_stretches_the_barrier(self, gateway):
        """The bug shape: per-read socket timeouts never trip on a shard
        that trickles within them, so the barrier just... waits."""
        with FaultProxy(gateway.address, self.STRAGGLE) as proxy:
            with ClusterConnection(proxy.address, timeout=10.0) as connection:
                round_id, domain = _open_round(connection)
                connection.send_batch(round_id, _payload(domain))
                start = time.perf_counter()
                estimate = connection.finalize(round_id)
                elapsed = time.perf_counter() - start
        assert estimate.estimated_counts.size  # slow, but it did answer
        assert elapsed >= 1.4  # the straggle stretched the barrier

    def test_op_timeout_surfaces_shard_unavailable_fast(self, gateway):
        """The fix: one deadline over the whole export operation turns the
        straggler into a fast, structured ``shard_unavailable``."""
        with FaultProxy(gateway.address, self.STRAGGLE) as proxy:
            with ClusterConnection(
                proxy.address, timeout=10.0, op_timeout=0.4
            ) as connection:
                round_id, domain = _open_round(connection)
                connection.send_batch(round_id, _payload(domain))
                start = time.perf_counter()
                with pytest.raises(ServiceError) as err:
                    connection.finalize(round_id)
                elapsed = time.perf_counter() - start
        assert err.value.code == "shard_unavailable"
        assert elapsed < 1.2  # bounded by op_timeout, not the straggle

    def test_nested_operations_share_the_outer_deadline(self, gateway):
        """finalize() calls drain(): the inner operation must run under
        the already-armed deadline, not extend it."""
        with GatewayConnection(gateway.address, timeout=10.0) as connection:
            with connection._operation_deadline(5.0):
                outer = connection._deadline
                with connection._operation_deadline(99.0):
                    assert connection._deadline == outer
            assert connection._deadline is None


class TestDuplicateAcks:
    """Satellite regression: duplicated acks interleaved mid-pipeline."""

    def test_duplicated_acks_are_counted_not_double_counted(self, gateway):
        direct, direct_dups = _run_round(gateway.address)
        assert direct_dups == 0
        chaos = FaultProfile(
            name="dup", duplicate=1.0, direction="down",
            kinds=(FRAME_ROUND_CONTROL,), ops=("batch_ack",),
        )
        with FaultProxy(gateway.address, chaos) as proxy:
            proxied, duplicate_acks = _run_round(proxy.address)
            assert proxy.counters.get("duplicate", 0) >= 1
        # Every ack arrived twice: the replays were observed and ignored.
        assert duplicate_acks >= 1
        assert np.array_equal(proxied.estimated_counts, direct.estimated_counts)
        assert np.array_equal(proxied.estimated_frequencies, direct.estimated_frequencies)


class TestErrorInterleave:
    """Satellite regression: an error frame mid-pipelined upload."""

    def test_rejected_batch_surfaces_and_closes_the_logical_round(self):
        """A gateway rejection whose error frame interleaves with earlier
        batch acks must surface as its structured error, and a later
        finalize must report ``round_closed`` — not a misleading
        ``shard_mismatch`` from totals the failure skewed."""
        with start_gateway(connection_credits=2) as handle:
            with ClusterConnection(handle.address, timeout=5.0) as connection:
                round_id, domain = _open_round(connection)
                connection.send_batch(round_id, _payload(domain))
                bad = _payload(CandidateDomain.full_domain(5), level=5)
                with pytest.raises(ServiceError) as err:
                    # The rejection races the pipeline: keep pushing until
                    # the credit loop reads the error frame.
                    connection.send_batch(round_id, bad)
                    for seed in range(8):
                        connection.send_batch(round_id, _payload(domain, seed=seed))
                    connection.finalize(round_id)
                assert err.value.code != "shard_mismatch"
                with pytest.raises(ServiceError) as closed:
                    connection.finalize(round_id)
                assert closed.value.code == "round_closed"

    def test_error_frame_returns_the_failed_batch_credit(self):
        """The client ledger drops the rejected seq when the error frame
        names it, so the pipeline never waits on an ack that cannot come."""
        with start_gateway() as handle:
            with GatewayConnection(handle.address, timeout=5.0) as connection:
                round_id, domain = _open_round(connection)
                bad = _payload(CandidateDomain.full_domain(5), level=5)
                with pytest.raises(ServiceError):
                    connection.send_batch(round_id, bad)
                    connection.drain(deadline=3.0)
                assert connection.outstanding == 0
