"""Shard merge algebra: any partition of a report batch ingests to the same
counts as the whole, for every registered oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SerialBackend, ThreadBackend
from repro.ldp.registry import available_oracles, make_oracle
from repro.service.shards import LevelShard, OLHDecodeShard, ShardError, make_shard

DOMAIN = 29
N_USERS = 400


def _perturbed(oracle_name: str):
    oracle = make_oracle(oracle_name, epsilon=3.0)
    values = np.random.default_rng(2).integers(0, DOMAIN, size=N_USERS)
    reports = oracle.perturb(values, DOMAIN, np.random.default_rng(3))
    return oracle, reports


def _slice_reports(reports, start: int, stop: int):
    """Slice a report batch along the user axis, whatever its shape."""
    if isinstance(reports, tuple):  # OLH: (seeds, buckets)
        return tuple(part[start:stop] for part in reports)
    return reports[start:stop]


def _random_partitions(rng: np.random.Generator, n: int, count: int = 5):
    """A few random partitions of range(n) into contiguous pieces."""
    for _ in range(count):
        n_cuts = int(rng.integers(1, 6))
        cuts = np.sort(rng.integers(0, n + 1, size=n_cuts))
        bounds = [0, *cuts.tolist(), n]
        yield [
            (bounds[i], bounds[i + 1])
            for i in range(len(bounds) - 1)
        ]


class TestMergeAlgebra:
    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_any_partition_equals_whole(self, oracle_name):
        oracle, reports = _perturbed(oracle_name)
        whole = make_shard(oracle, DOMAIN)
        whole.ingest(reports)
        rng = np.random.default_rng(11)
        for partition in _random_partitions(rng, N_USERS):
            pieces = []
            for start, stop in partition:
                shard = make_shard(oracle, DOMAIN)
                shard.ingest(_slice_reports(reports, start, stop))
                pieces.append(shard)
            merged = pieces[0]
            for shard in pieces[1:]:
                merged = merged.merge(shard)
            assert np.array_equal(merged.counts, whole.counts)
            assert merged.n_users == whole.n_users == N_USERS

    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_merge_is_commutative(self, oracle_name):
        oracle, reports = _perturbed(oracle_name)
        left, right = make_shard(oracle, DOMAIN), make_shard(oracle, DOMAIN)
        left.ingest(_slice_reports(reports, 0, 150))
        right.ingest(_slice_reports(reports, 150, N_USERS))
        ab = make_shard(oracle, DOMAIN)
        ab.ingest(_slice_reports(reports, 0, 150))
        ab.merge(right)
        ba = make_shard(oracle, DOMAIN)
        ba.ingest(_slice_reports(reports, 150, N_USERS))
        ba.merge(left)
        assert np.array_equal(ab.counts, ba.counts)
        assert ab.n_users == ba.n_users

    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_batched_ingest_equals_one_shot(self, oracle_name):
        oracle, reports = _perturbed(oracle_name)
        whole = make_shard(oracle, DOMAIN)
        whole.ingest(reports)
        streamed = make_shard(oracle, DOMAIN)
        for start in range(0, N_USERS, 64):
            streamed.ingest(_slice_reports(reports, start, min(start + 64, N_USERS)))
        assert np.array_equal(streamed.counts, whole.counts)
        assert streamed.n_batches == 7


class TestOLHShardedDecode:
    def test_backend_decode_matches_inline(self):
        oracle, reports = _perturbed("olh")
        inline = make_shard(oracle, DOMAIN)
        inline.ingest(reports)
        for backend in (SerialBackend(), ThreadBackend(3)):
            with backend:
                sharded = make_shard(
                    oracle, DOMAIN, decode_backend=backend, n_decode_shards=4
                )
                assert isinstance(sharded, OLHDecodeShard)
                sharded.ingest(reports)
                assert np.array_equal(sharded.counts, inline.counts)

    def test_sharded_decode_survives_pickle(self):
        import pickle

        oracle, reports = _perturbed("olh")
        shard = make_shard(oracle, DOMAIN, decode_backend="thread", n_decode_shards=3)
        shard.ingest(reports)
        clone = pickle.loads(pickle.dumps(shard))
        assert np.array_equal(clone.counts, shard.counts)
        clone.ingest(reports)  # backend is respawned lazily after unpickling
        assert clone.n_users == 2 * N_USERS

    def test_non_olh_ignores_decode_backend(self):
        oracle = make_oracle("krr", epsilon=2.0)
        shard = make_shard(oracle, DOMAIN, decode_backend="thread")
        assert type(shard) is LevelShard


class TestCompatibilityChecks:
    def test_oracle_mismatch(self):
        krr = make_shard(make_oracle("krr", 2.0), DOMAIN)
        oue = make_shard(make_oracle("oue", 2.0), DOMAIN)
        with pytest.raises(ShardError, match="oracle"):
            krr.merge(oue)

    def test_epsilon_mismatch(self):
        a = make_shard(make_oracle("krr", 2.0), DOMAIN)
        b = make_shard(make_oracle("krr", 3.0), DOMAIN)
        with pytest.raises(ShardError, match="epsilon"):
            a.merge(b)

    def test_domain_mismatch(self):
        a = make_shard(make_oracle("krr", 2.0), DOMAIN)
        b = make_shard(make_oracle("krr", 2.0), DOMAIN + 1)
        with pytest.raises(ShardError, match="domain"):
            a.merge(b)
