"""Tests for experiment-result serialization."""

import json

import numpy as np
import pytest

from repro.core.config import MechanismConfig
from repro.core.taps import TAPSMechanism
from repro.experiments.runner import ExperimentSettings, SweepResult, run_sweep
from repro.experiments.serialization import (
    load_sweep,
    records_from_json,
    records_to_json,
    save_result,
    save_sweep,
    summarize_result,
)


@pytest.fixture(scope="module")
def small_sweep() -> SweepResult:
    return run_sweep(ExperimentSettings().smoke(), mechanisms=("fedpem",))


class TestRecordsRoundtrip:
    def test_roundtrip_preserves_records(self, small_sweep, tmp_path):
        path = records_to_json(small_sweep.records, tmp_path / "records.json")
        loaded = records_from_json(path)
        assert len(loaded) == len(small_sweep.records)
        assert loaded[0]["mechanism"] == small_sweep.records[0]["mechanism"]
        assert loaded[0]["f1"] == pytest.approx(small_sweep.records[0]["f1"])

    def test_numpy_values_are_converted(self, tmp_path):
        records = [{"value": np.float64(0.5), "count": np.int64(3), "arr": np.array([1, 2])}]
        path = records_to_json(records, tmp_path / "np.json")
        loaded = records_from_json(path)
        assert loaded[0]["value"] == 0.5
        assert loaded[0]["count"] == 3
        assert loaded[0]["arr"] == [1, 2]

    def test_non_array_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(ValueError):
            records_from_json(path)


class TestSweepRoundtrip:
    def test_save_and_load_sweep(self, small_sweep, tmp_path):
        path = save_sweep(small_sweep, tmp_path / "sweep.json")
        loaded = load_sweep(path)
        assert loaded.settings.scale == small_sweep.settings.scale
        assert loaded.settings.datasets == small_sweep.settings.datasets
        assert len(loaded.records) == len(small_sweep.records)
        assert loaded.mean_metric("f1") == pytest.approx(small_sweep.mean_metric("f1"))

    def test_unknown_settings_fields_ignored(self, small_sweep, tmp_path):
        path = save_sweep(small_sweep, tmp_path / "sweep.json")
        payload = json.loads(path.read_text())
        payload["settings"]["future_field"] = 42
        path.write_text(json.dumps(payload))
        loaded = load_sweep(path)
        assert loaded.settings.scale == small_sweep.settings.scale


class TestResultSummary:
    @pytest.fixture(scope="class")
    def run_result(self, tiny_rdb):
        config = MechanismConfig(
            k=5, epsilon=4.0, n_bits=tiny_rdb.n_bits, granularity=4
        )
        return TAPSMechanism(config).run(tiny_rdb, rng=0)

    def test_summary_fields(self, run_result):
        summary = summarize_result(run_result)
        assert summary["mechanism"] == "taps"
        assert summary["k"] == 5
        assert len(summary["heavy_hitters"]) == 5
        assert summary["satisfies_ldp"] is True
        assert summary["upload_bits"] > 0

    def test_summary_is_json_serialisable(self, run_result):
        json.dumps(summarize_result(run_result))

    def test_save_result_writes_file(self, run_result, tmp_path):
        path = save_result(run_result, tmp_path / "out" / "result.json")
        assert path.exists()
        loaded = json.loads(path.read_text())
        assert loaded["mechanism"] == "taps"
