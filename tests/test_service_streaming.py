"""Tests for sliding-window continual heavy-hitter tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MechanismConfig
from repro.service.streaming import SlidingWindowDiscovery


def _config(**overrides) -> MechanismConfig:
    base = dict(
        k=3, epsilon=6.0, n_bits=8, granularity=4,
        oracle="krr", simulation_mode="per_user",
    )
    base.update(overrides)
    return MechanismConfig(**base)


def _drifting_stream(rng: np.random.Generator, n_steps: int, flip_at: int):
    for step in range(n_steps):
        hot = 17 if step < flip_at else 200
        yield np.concatenate(
            [np.full(600, hot), rng.integers(0, 256, size=200)]
        )


class TestCadence:
    def test_no_snapshot_until_window_full(self):
        tracker = SlidingWindowDiscovery(_config(), window_batches=3, rng=0)
        rng = np.random.default_rng(1)
        batches = list(_drifting_stream(rng, 3, flip_at=99))
        assert tracker.push(batches[0]) is None
        assert tracker.push(batches[1]) is None
        assert tracker.push(batches[2]) is not None

    def test_stride_skips_passes(self):
        tracker = SlidingWindowDiscovery(
            _config(), window_batches=2, stride=3, rng=0
        )
        rng = np.random.default_rng(1)
        produced = [
            tracker.push(batch) is not None
            for batch in _drifting_stream(rng, 9, flip_at=99)
        ]
        # Window fills at step 2, then every 3rd arrival: steps 2, 5, 8.
        assert produced == [False, True, False, False, True, False, False, True, False]

    def test_window_is_bounded(self):
        tracker = SlidingWindowDiscovery(_config(), window_batches=2, rng=0)
        rng = np.random.default_rng(1)
        for batch in _drifting_stream(rng, 6, flip_at=99):
            tracker.push(batch)
        assert tracker.window_users == 2 * 800


class TestDiscovery:
    def test_tracks_drifting_heavy_hitter(self):
        tracker = SlidingWindowDiscovery(_config(), window_batches=3, rng=42)
        rng = np.random.default_rng(0)
        for batch in _drifting_stream(rng, 10, flip_at=5):
            tracker.push(batch)
        assert tracker.snapshots[0].heavy_hitters[0] == 17
        assert tracker.latest().heavy_hitters[0] == 200

    def test_snapshots_carry_exact_wire_costs(self):
        tracker = SlidingWindowDiscovery(_config(), window_batches=2, rng=5)
        rng = np.random.default_rng(0)
        for batch in _drifting_stream(rng, 2, flip_at=99):
            snapshot = tracker.push(batch)
        assert snapshot.upload_bits > 0
        assert snapshot.broadcast_bits > 0
        assert snapshot.n_users == 1600

    def test_replay_is_deterministic(self):
        def run():
            tracker = SlidingWindowDiscovery(
                _config(), window_batches=3, stride=2, rng=42
            )
            rng = np.random.default_rng(0)
            for batch in _drifting_stream(rng, 8, flip_at=4):
                tracker.push(batch)
            return tracker.snapshots

        assert run() == run()


class TestValidation:
    def test_rejects_empty_batches(self):
        tracker = SlidingWindowDiscovery(_config(), window_batches=2, rng=0)
        with pytest.raises(ValueError, match="non-empty"):
            tracker.push(np.array([], dtype=np.int64))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SlidingWindowDiscovery(_config(), window_batches=0)
        with pytest.raises(ValueError):
            SlidingWindowDiscovery(_config(), window_batches=2, stride=0)
