"""Fuzz/property tests of the packed-bit unary report kernels.

The columnar hot path rests on two bit-identity contracts
(:mod:`repro.ldp.packed`):

* ``packed_column_counts`` equals unpack-then-``sum`` for every buffer,
* ``sample_unary_reports(packed=True)`` equals ``numpy.packbits`` of the
  dense sample for every seed — on both scatter strategies (boolean
  scratch for small batches, run-length packed scatter for large ones).

These tests hammer the awkward shapes (domains narrower than a byte, not
byte-aligned, single users, empty batches) and the codec's rejection of
malformed packed payloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldp import make_oracle
from repro.ldp.packed import (
    PackedUnaryReports,
    _bernoulli_positions,
    _PACK_SCRATCH_MAX_BITS,
    packed_column_counts,
    packed_row_bytes,
    sample_unary_reports,
)
from repro.service.protocol import (
    ReportBatch,
    WireFormatError,
    decode_report_batch,
    encode_report_batch,
)

UNARY_ORACLES = ("oue", "sue")


def _random_packed(rng, n, d):
    data = rng.integers(0, 256, size=(n, packed_row_bytes(d)), dtype=np.uint8)
    return PackedUnaryReports(data, n_users=n, domain_size=d)


# --------------------------------------------------------------------------- #
# Kernel ≡ unpack-then-sum
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("d", [1, 3, 7, 8, 9, 16, 63, 64, 65, 200])
@pytest.mark.parametrize("n", [0, 1, 5, 257])
def test_column_counts_equal_unpack_sum(d, n):
    reports = _random_packed(np.random.default_rng(d * 1000 + n), n, d)
    expected = reports.unpack().sum(axis=0).astype(np.int64)
    np.testing.assert_array_equal(reports.column_counts(), expected)


def test_column_counts_blocked_kernel_spans_blocks(monkeypatch):
    """Counts are identical when the kernel needs several histogram blocks."""
    import repro.ldp.packed as packed_mod

    reports = _random_packed(np.random.default_rng(7), 1000, 37)
    whole = reports.column_counts()
    monkeypatch.setattr(packed_mod, "_KERNEL_BLOCK_ELEMENTS", 64)
    np.testing.assert_array_equal(reports.column_counts(), whole)
    np.testing.assert_array_equal(
        whole, reports.unpack().sum(axis=0).astype(np.int64)
    )


@given(
    n=st.integers(min_value=0, max_value=60),
    d=st.integers(min_value=1, max_value=80),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_column_counts_fuzz(n, d, seed):
    reports = _random_packed(np.random.default_rng(seed), n, d)
    np.testing.assert_array_equal(
        reports.column_counts(), reports.unpack().sum(axis=0).astype(np.int64)
    )


# --------------------------------------------------------------------------- #
# Sampler parity: dense ≡ packed, on both scatter strategies
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("d", [1, 7, 8, 9, 65])
@pytest.mark.parametrize("n", [0, 1, 129])
@pytest.mark.parametrize("oracle_name", UNARY_ORACLES)
def test_sample_parity_dense_vs_packed(oracle_name, n, d):
    oracle = make_oracle(oracle_name, epsilon=1.5)
    values = np.random.default_rng(n + d).integers(0, d, size=n)
    dense = oracle.perturb(values, d, rng=42)
    packed = oracle.perturb_packed(values, d, rng=42)
    assert isinstance(packed, PackedUnaryReports)
    np.testing.assert_array_equal(packed.unpack(), dense)


def test_sample_parity_on_sparse_scatter_path(monkeypatch):
    """Force the run-length packed scatter (large-batch path) and re-check."""
    import repro.ldp.packed as packed_mod

    values = np.random.default_rng(0).integers(0, 65, size=400)
    dense = sample_unary_reports(values, 65, np.random.default_rng(9), 0.6, 0.05)
    monkeypatch.setattr(packed_mod, "_PACK_SCRATCH_MAX_BITS", 0)
    packed = sample_unary_reports(
        values, 65, np.random.default_rng(9), 0.6, 0.05, packed=True
    )
    np.testing.assert_array_equal(np.packbits(dense, axis=1), packed.data)


def test_default_threshold_covers_both_paths():
    # The shipped threshold actually splits real batch shapes across the
    # two scatter strategies (the whole point of having two).
    assert 2048 * 65 <= _PACK_SCRATCH_MAX_BITS < 65536 * 65


@given(
    n=st.integers(min_value=0, max_value=40),
    d=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31),
    epsilon=st.floats(min_value=0.2, max_value=6.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_sample_parity_fuzz(n, d, seed, epsilon):
    oracle = make_oracle("oue", epsilon=epsilon)
    values = np.random.default_rng(seed).integers(0, d, size=n)
    dense = oracle.perturb(values, d, rng=seed)
    packed = oracle.perturb_packed(values, d, rng=seed)
    np.testing.assert_array_equal(packed.unpack(), dense)


# --------------------------------------------------------------------------- #
# accumulate_packed ≡ the dense fallback, for every unary oracle
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("oracle_name", UNARY_ORACLES)
def test_accumulate_packed_matches_dense_accumulate(oracle_name):
    oracle = make_oracle(oracle_name, epsilon=2.0)
    d = 21
    counts = np.arange(d, dtype=np.int64)
    reports = _random_packed(np.random.default_rng(3), 50, d)
    via_packed = oracle.accumulate_packed(counts, reports, d)
    via_dense = oracle.accumulate(counts, reports.unpack(), d)
    np.testing.assert_array_equal(via_packed, via_dense)
    # The accumulator argument itself is never mutated.
    np.testing.assert_array_equal(counts, np.arange(d, dtype=np.int64))


def test_accumulate_packed_rejects_bad_accumulator_shape():
    oracle = make_oracle("oue", epsilon=2.0)
    reports = _random_packed(np.random.default_rng(0), 4, 9)
    with pytest.raises(ValueError, match="accumulator"):
        oracle.accumulate_packed(np.zeros(8, dtype=np.int64), reports, 9)


def test_support_counts_rejects_domain_mismatch():
    oracle = make_oracle("oue", epsilon=2.0)
    reports = _random_packed(np.random.default_rng(0), 4, 9)
    with pytest.raises(ValueError, match="domain size"):
        oracle.support_counts(reports, 17)


# --------------------------------------------------------------------------- #
# Buffer contract: zero-copy, read-only, size-checked
# --------------------------------------------------------------------------- #
def test_from_buffer_is_zero_copy_and_read_only():
    original = _random_packed(np.random.default_rng(1), 6, 13)
    payload = original.tobytes()
    view = PackedUnaryReports.from_buffer(payload, n_users=6, domain_size=13)
    assert view == original
    assert not view.data.flags.writeable
    with pytest.raises(ValueError):
        view.data[0, 0] = 255
    # No copy: the array aliases the payload bytes.
    assert np.shares_memory(view.data, np.frombuffer(payload, dtype=np.uint8))


def test_from_buffer_rejects_size_mismatch():
    with pytest.raises(ValueError, match="expected"):
        PackedUnaryReports.from_buffer(b"\x00" * 5, n_users=2, domain_size=13)


def test_asarray_escape_hatch_yields_dense_matrix():
    reports = _random_packed(np.random.default_rng(2), 3, 11)
    dense = np.asarray(reports)
    assert dense.shape == (3, 11)
    np.testing.assert_array_equal(dense, reports.unpack())


# --------------------------------------------------------------------------- #
# Wire codec: malformed packed payloads are structured errors
# --------------------------------------------------------------------------- #
def _unary_batch(n=12, d=10):
    oracle = make_oracle("oue", epsilon=2.0)
    values = np.random.default_rng(0).integers(0, d, size=n)
    return ReportBatch(
        party="p",
        level=1,
        oracle_name="oue",
        epsilon=2.0,
        domain_size=d,
        value_domain=2,
        n_users=n,
        reports=oracle.perturb_packed(values, d, rng=5),
    )


def test_codec_round_trips_packed_batches():
    batch = _unary_batch()
    decoded = decode_report_batch(encode_report_batch(batch))
    assert isinstance(decoded.reports, PackedUnaryReports)
    assert decoded.reports == batch.reports


def test_codec_rejects_truncated_packed_payload():
    payload = bytearray(encode_report_batch(_unary_batch()))
    with pytest.raises(WireFormatError):
        decode_report_batch(bytes(payload[:-3]))


def test_codec_rejects_oversized_packed_payload():
    payload = encode_report_batch(_unary_batch())
    with pytest.raises(WireFormatError):
        decode_report_batch(payload + b"\x00\x00")


# --------------------------------------------------------------------------- #
# The sparse Bernoulli position sampler
# --------------------------------------------------------------------------- #
def test_bernoulli_positions_edge_cases():
    gen = np.random.default_rng(0)
    assert _bernoulli_positions(gen, 0, 0.5).size == 0
    assert _bernoulli_positions(gen, 100, 0.0).size == 0
    np.testing.assert_array_equal(
        _bernoulli_positions(gen, 7, 1.0), np.arange(7, dtype=np.int64)
    )


@given(
    total=st.integers(min_value=1, max_value=5000),
    q=st.floats(min_value=1e-4, max_value=0.999, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_bernoulli_positions_are_sorted_unique_in_range(total, q, seed):
    positions = _bernoulli_positions(np.random.default_rng(seed), total, q)
    assert positions.dtype == np.int64
    if positions.size:
        assert positions[0] >= 0
        assert positions[-1] < total
        assert np.all(np.diff(positions) > 0)


def test_bernoulli_positions_match_rate():
    total, q = 200_000, 0.05
    positions = _bernoulli_positions(np.random.default_rng(11), total, q)
    rate = positions.size / total
    # 6σ band around the Bernoulli rate.
    sigma = np.sqrt(q * (1 - q) / total)
    assert abs(rate - q) < 6 * sigma
