"""Tests for the adaptive trie extension (Equations 2 and 3)."""

import numpy as np
import pytest

from repro.core.extension import (
    adaptive_extension_count,
    drift_allowance,
    select_anchor,
)


class TestSelectAnchor:
    def test_anchor_at_clear_frequency_gap(self):
        # Five clearly dominant prefixes, then a sharp drop: the anchor should
        # sit at (or just after) the gap rather than at 2.
        freqs = np.array([0.25, 0.20, 0.19, 0.18, 0.17, 0.002, 0.001, 0.001, 0.001, 0.001, 0.001])
        k_star = select_anchor(freqs, k=10)
        assert 4 <= k_star <= 6

    def test_anchor_bounded_by_k(self):
        freqs = np.linspace(0.2, 0.01, 30)
        assert select_anchor(freqs, k=10) <= 10

    def test_anchor_bounded_by_domain(self):
        freqs = np.array([0.5, 0.3, 0.2])
        assert select_anchor(freqs, k=10) <= 3

    def test_tiny_domains(self):
        assert select_anchor(np.array([0.6]), k=5) == 1
        assert select_anchor(np.array([0.6, 0.4]), k=5) == 2
        assert select_anchor(np.array([]), k=5) == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            select_anchor(np.array([0.5, 0.5]), k=0)


class TestDriftAllowance:
    def test_zero_noise_gives_zero_drift(self):
        freqs = np.linspace(0.3, 0.01, 20)
        assert drift_allowance(freqs, k=5, k_star=3, sigma=0.0) == 0.0

    def test_large_noise_gives_large_drift(self):
        freqs = np.linspace(0.05, 0.04, 20)  # nearly flat
        eta_small = drift_allowance(freqs, k=5, k_star=3, sigma=0.001)
        eta_large = drift_allowance(freqs, k=5, k_star=3, sigma=0.5)
        assert eta_large > eta_small

    def test_drift_capped_at_k(self):
        freqs = np.full(50, 0.02)
        assert drift_allowance(freqs, k=5, k_star=5, sigma=1.0) <= 5

    def test_anchor_at_end_of_domain(self):
        freqs = np.array([0.5, 0.3, 0.2])
        assert drift_allowance(freqs, k=5, k_star=3, sigma=0.1) == 0.0

    def test_empty_frequencies(self):
        assert drift_allowance(np.array([]), k=5, k_star=1, sigma=0.1) == 0.0


class TestAdaptiveExtensionCount:
    def test_returns_triple_within_bounds(self):
        freqs = np.sort(np.random.default_rng(0).random(30))[::-1]
        t, k_star, eta = adaptive_extension_count(freqs, k=10, sigma=0.01)
        assert 1 <= t <= 30
        assert 1 <= k_star <= 10
        assert 0.0 <= eta <= 10

    def test_covers_separated_head(self):
        # Clear structure: 6 necessary prefixes well above the rest and noise
        # far smaller than the gap — t must cover all 6.
        freqs = np.concatenate([np.linspace(0.15, 0.10, 6), np.full(20, 0.002)])
        t, _, _ = adaptive_extension_count(freqs, k=10, sigma=0.001)
        assert t >= 6

    def test_high_noise_extends_more_than_anchor(self):
        freqs = np.linspace(0.05, 0.03, 25)
        t_low_noise, k_star_low, _ = adaptive_extension_count(freqs, k=10, sigma=1e-5)
        t_high_noise, k_star_high, _ = adaptive_extension_count(freqs, k=10, sigma=0.05)
        assert t_high_noise >= t_low_noise

    def test_empty_input(self):
        assert adaptive_extension_count(np.array([]), k=5, sigma=0.1) == (0, 0, 0.0)

    def test_t_never_exceeds_domain(self):
        freqs = np.array([0.6, 0.4])
        t, _, _ = adaptive_extension_count(freqs, k=10, sigma=0.5)
        assert t <= 2
