"""Machine calibration (:mod:`repro.perf.calibrate`).

The property the whole perf gate stands on: work-normalized cost ratios
are invariant under machine speed.  A fake clock that ticks k× slower
models a k× slower machine exactly, so the invariance is testable as
pure arithmetic — no real timing, no flakes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.calibrate import KERNEL_NAME, MachineCalibration, calibrate, effective_cores


class TickClock:
    """A deterministic clock advancing ``step`` seconds per call."""

    def __init__(self, step: float):
        self.step = float(step)
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def test_calibrate_returns_valid_calibration():
    calibration = calibrate(min_seconds=0.01)
    assert calibration.ops_per_sec > 0
    assert calibration.repetitions >= 1
    assert calibration.work_units == calibration.repetitions * 4096 * 32
    assert calibration.kernel == KERNEL_NAME
    assert calibration.effective_cores == effective_cores()
    assert calibration.elapsed_seconds >= 0.01


def test_calibrate_with_fake_clock_is_exact_arithmetic():
    # One clock() for start, then one per repetition: 0.02s/rep means a
    # 0.1s budget is met after exactly 5 repetitions.
    calibration = calibrate(min_seconds=0.1, clock=TickClock(0.02))
    assert calibration.repetitions == 5
    assert calibration.elapsed_seconds == pytest.approx(0.1)
    assert calibration.ops_per_sec == pytest.approx(5 * 4096 * 32 / 0.1)


def test_round_trip_through_dict():
    calibration = calibrate(min_seconds=0.01)
    restored = MachineCalibration.from_dict(calibration.to_dict())
    assert restored.kernel == calibration.kernel
    assert restored.work_units == calibration.work_units
    assert restored.ops_per_sec == pytest.approx(calibration.ops_per_sec, rel=1e-6)


def test_from_dict_rejects_junk():
    with pytest.raises(ValueError, match="mapping"):
        MachineCalibration.from_dict("not a mapping")
    with pytest.raises(ValueError, match="missing key"):
        MachineCalibration.from_dict({"ops_per_sec": 1.0})
    with pytest.raises(ValueError, match="positive"):
        MachineCalibration.from_dict(
            {
                "ops_per_sec": -1.0,
                "elapsed_seconds": 0.1,
                "work_units": 10,
                "repetitions": 1,
                "cpu_count": 1,
                "effective_cores": 1,
            }
        )


def test_normalized_cost_rejects_nonpositive_work():
    calibration = calibrate(min_seconds=0.01, clock=TickClock(0.01))
    with pytest.raises(ValueError, match="work_units"):
        calibration.normalized_cost(1.0, 0)


@given(
    step=st.floats(min_value=1e-4, max_value=0.05, allow_nan=False),
    slowdown=st.floats(min_value=1.5, max_value=20.0, allow_nan=False),
    seconds=st.floats(min_value=1e-3, max_value=100.0, allow_nan=False),
    work=st.integers(min_value=1, max_value=10**6),
)
@settings(max_examples=25, deadline=None)
def test_cost_ratio_invariant_under_machine_speed(step, slowdown, seconds, work):
    """The tentpole property: cost ratios do not depend on machine speed.

    A machine that is ``slowdown``× slower calibrates to ``ops_per_sec /
    slowdown`` and takes ``seconds × slowdown`` for the same work; the
    two factors cancel exactly in the normalized cost (and rate).
    """
    fast = calibrate(min_seconds=0.1, clock=TickClock(step))
    slow = calibrate(min_seconds=0.1, clock=TickClock(step * slowdown))
    # The fake clock quantises elapsed time to whole ticks, so the
    # measured speed ratio matches the modelled slowdown only up to the
    # rounding of repetitions; compare through the *measured* ratio.
    speed_ratio = fast.ops_per_sec / slow.ops_per_sec
    assert speed_ratio > 1.0
    cost_fast = fast.normalized_cost(seconds, work)
    cost_slow = slow.normalized_cost(seconds * speed_ratio, work)
    assert cost_slow == pytest.approx(cost_fast, rel=1e-9)
    rate_fast = fast.normalized_rate(1000.0)
    rate_slow = slow.normalized_rate(1000.0 / speed_ratio)
    assert rate_slow == pytest.approx(rate_fast, rel=1e-9)


def test_reference_buffer_is_fixed_and_frozen():
    from repro.perf.calibrate import _reference_buffer

    buffer = _reference_buffer()
    assert buffer.shape == (4096, 32)
    assert buffer.dtype == np.uint8
    assert not buffer.flags.writeable
    # Same seeded content on every call — the kernel's work is constant.
    assert _reference_buffer() is buffer
