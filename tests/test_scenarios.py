"""Scenario generation: effects, moving truth, determinism, spec round-trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import (
    ArrivalBatch,
    BaseWorkload,
    BurstArrivals,
    DriftSchedule,
    PoisonedReports,
    PopulationChurn,
    Scenario,
    ScenarioError,
    ScenarioSpec,
    SkewShift,
    effect_from_dict,
)


def _base(**overrides) -> BaseWorkload:
    kwargs = dict(kind="zipf", n_items=64, n_bits=8, exponent=2.0, seed=1)
    kwargs.update(overrides)
    return BaseWorkload(**kwargs)


def _scenario(effects=(), **overrides) -> Scenario:
    kwargs = dict(base=_base(), n_steps=6, batch_size=200, k=3)
    kwargs.update(overrides)
    return Scenario(effects=effects, **kwargs)


class TestBaseWorkload:
    def test_zipf_resolve_orders_hot_to_cold(self):
        ids, freqs, n_bits = _base().resolve()
        assert ids.size == 64 and n_bits == 8
        assert np.all(np.diff(freqs) <= 0) and freqs.sum() == pytest.approx(1.0)
        assert len(set(ids.tolist())) == 64 and int(ids.max()) < 256

    def test_zipf_shift_flattens_the_head(self):
        _, plain, _ = _base().resolve()
        _, shifted, _ = _base(shift=8.0).resolve()
        assert shifted[0] / shifted[4] < plain[0] / plain[4]

    def test_dataset_resolve_uses_empirical_truth(self):
        base = BaseWorkload(kind="dataset", dataset="rdb", scale="tiny", seed=0)
        scenario = Scenario(base=base, n_steps=3, batch_size=100, k=3)
        from repro.datasets.registry import load_dataset

        dataset = load_dataset("rdb", scale="tiny", seed=0)
        assert list(scenario.true_top_k(1)) == dataset.true_top_k(3)
        assert scenario.n_bits == dataset.n_bits

    def test_unknown_dataset(self):
        base = BaseWorkload(kind="dataset", dataset="nope")
        with pytest.raises(ScenarioError, match="nope"):
            base.resolve()

    def test_validation(self):
        with pytest.raises(ScenarioError, match="kind"):
            BaseWorkload(kind="uniform")
        with pytest.raises(ScenarioError, match="domain"):
            BaseWorkload(kind="zipf", n_items=300, n_bits=8)
        with pytest.raises(ScenarioError, match="dataset"):
            BaseWorkload(kind="dataset")


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        scenario = _scenario(
            effects=[
                DriftSchedule(mode="cyclic", start=2, period=4),
                BurstArrivals(period=2, magnitude=2.0),
                PoisonedReports(fraction=0.1),
            ]
        )
        a = list(scenario.iter_batches(7))
        b = list(scenario.iter_batches(7))
        for batch_a, batch_b in zip(a, b):
            assert np.array_equal(batch_a.items, batch_b.items)
            assert batch_a == batch_b  # step/truth/poison metadata

    def test_churn_replay_is_bit_identical(self):
        scenario = _scenario(effects=[PopulationChurn(rate=0.3, population_size=300)])
        a = [batch.items for batch in scenario.iter_batches(5)]
        b = [batch.items for batch in scenario.iter_batches(5)]
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        scenario = _scenario()
        a = next(iter(scenario.iter_batches(0))).items
        b = next(iter(scenario.iter_batches(1))).items
        assert not np.array_equal(a, b)

    def test_item_domain_is_spec_identity_not_run_seed(self):
        assert np.array_equal(_scenario().item_ids, _scenario().item_ids)
        assert not np.array_equal(
            _scenario().item_ids, _scenario(base=_base(seed=2)).item_ids
        )


class TestDrift:
    def test_abrupt_swap_displaces_the_whole_top_k(self):
        scenario = _scenario(effects=[DriftSchedule(mode="abrupt", start=4)])
        assert set(scenario.true_top_k(1)).isdisjoint(scenario.true_top_k(6))
        assert scenario.drift_steps() == [4]

    def test_gradual_ramp_spreads_the_change(self):
        scenario = _scenario(
            effects=[DriftSchedule(mode="gradual", start=3, duration=3)], n_steps=8
        )
        events = scenario.drift_steps()
        assert events and all(3 <= step <= 6 for step in events)
        assert set(scenario.true_top_k(1)).isdisjoint(scenario.true_top_k(8))

    def test_cyclic_returns_to_the_original_truth(self):
        scenario = _scenario(
            effects=[DriftSchedule(mode="cyclic", start=1, period=4)], n_steps=9
        )
        assert scenario.true_top_k(1) == scenario.true_top_k(5) == scenario.true_top_k(9)

    def test_weight_shapes(self):
        gradual = DriftSchedule(mode="gradual", start=2, duration=4)
        assert gradual.weight(1) == 0.0
        assert gradual.weight(2) == pytest.approx(0.25)
        assert gradual.weight(5) == 1.0 == gradual.weight(9)
        cyclic = DriftSchedule(mode="cyclic", start=1, period=4)
        assert [cyclic.weight(s) for s in range(1, 6)] == [0.0, 0.5, 1.0, 0.5, 0.0]

    def test_frequencies_stay_normalised_under_blend(self):
        scenario = _scenario(
            effects=[DriftSchedule(mode="gradual", start=2, duration=4)]
        )
        for step in range(1, 7):
            assert scenario.frequencies(step).sum() == pytest.approx(1.0)


class TestBurst:
    def test_burst_cadence(self):
        scenario = _scenario(
            effects=[BurstArrivals(period=3, magnitude=4.0, start=3)],
            batch_size=100,
        )
        sizes = [batch.items.size for batch in scenario.iter_batches(0)]
        assert sizes == [100, 100, 400, 100, 100, 400]

    def test_drought_magnitude_below_one(self):
        effect = BurstArrivals(period=2, magnitude=0.25, start=2)
        assert effect.batch_size(2, 100) == 25
        assert effect.batch_size(3, 100) == 100


class TestChurn:
    def test_population_constrains_the_stream(self):
        scenario = _scenario(
            effects=[PopulationChurn(rate=0.2, population_size=50)], n_steps=4
        )
        batches = list(scenario.iter_batches(3))
        # A 50-user population can only ever show <= 50 distinct items.
        for batch in batches:
            assert len(set(batch.items.tolist())) <= 50

    def test_churned_population_follows_drift_with_lag(self):
        scenario = _scenario(
            effects=[
                DriftSchedule(mode="abrupt", start=3),
                PopulationChurn(rate=0.5, population_size=400),
            ],
            n_steps=8,
            batch_size=400,
        )
        batches = list(scenario.iter_batches(0))
        new_top = scenario.true_top_k(8)[0]
        share = [float(np.mean(b.items == new_top)) for b in batches]
        # Before the drift the new top item is cold; churn pulls it in
        # over the following steps rather than instantaneously.
        assert share[-1] > 0.1 > share[0]
        assert share[3] < share[-1]


class TestSkew:
    def test_positive_drift_steepens_the_mixture(self):
        scenario = _scenario(
            effects=[SkewShift(exponents=(0.8, 2.2), drift_per_step=0.15)], n_steps=8
        )
        assert scenario.frequencies(8).max() > scenario.frequencies(1).max()

    def test_shares_weight_the_parties(self):
        heavy_head = _scenario(
            effects=[SkewShift(exponents=(0.5, 3.0), shares=(0.1, 0.9))]
        )
        heavy_tail = _scenario(
            effects=[SkewShift(exponents=(0.5, 3.0), shares=(0.9, 0.1))]
        )
        assert heavy_head.frequencies(1).max() > heavy_tail.frequencies(1).max()

    def test_share_exponent_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            SkewShift(exponents=(1.0, 2.0), shares=(1.0,))


class TestPoison:
    def test_counts_targets_and_honest_truth(self):
        scenario = _scenario(
            effects=[PoisonedReports(fraction=0.1, start=2)], n_steps=3, batch_size=100
        )
        batches = list(scenario.iter_batches(0))
        assert [b.n_poisoned for b in batches] == [0, 10, 10]
        cold = set(int(i) for i in scenario.item_ids[-3:])
        assert set(int(i) for i in batches[1].items[-10:]) <= cold
        assert not cold & set(batches[1].true_top_k)

    def test_explicit_targets_cycle(self):
        scenario = _scenario(
            effects=[PoisonedReports(fraction=0.05, items=(7, 9))], batch_size=100
        )
        batch = next(iter(scenario.iter_batches(0)))
        assert batch.n_poisoned == 5
        assert batch.items[-5:].tolist() == [7, 9, 7, 9, 7]

    def test_targets_must_fit_the_domain(self):
        with pytest.raises(ScenarioError, match="exceed"):
            _scenario(effects=[PoisonedReports(fraction=0.1, items=(1 << 12,))])

    def test_default_targets_never_enter_the_moving_truth(self):
        # An adversarial drift rotation lands the hot mass on the coldest
        # positions; default poison targets must dodge it.
        scenario = _scenario(
            effects=[
                DriftSchedule(mode="abrupt", start=3, rotation=61),
                PoisonedReports(fraction=0.1),
            ],
            n_steps=5,
            batch_size=100,
        )
        ever_true = set()
        for step in range(1, 6):
            ever_true.update(scenario.true_top_k(step))
        batches = list(scenario.iter_batches(0))
        injected = set(int(i) for i in batches[-1].items[-10:])
        assert not injected & ever_true


class TestScenarioValidation:
    def test_duplicate_effect_kinds(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            _scenario(effects=[BurstArrivals(), BurstArrivals(period=2)])

    def test_non_effect_objects(self):
        with pytest.raises(ScenarioError, match="effect"):
            _scenario(effects=["drift"])

    def test_step_bounds(self):
        scenario = _scenario()
        with pytest.raises(ValueError, match="step"):
            scenario.frequencies(0)
        with pytest.raises(ValueError, match="step"):
            scenario.frequencies(7)

    def test_k_cannot_exceed_items(self):
        with pytest.raises(ScenarioError, match="k"):
            _scenario(k=100)


class TestEffectDicts:
    @pytest.mark.parametrize(
        "effect",
        [
            DriftSchedule(mode="cyclic", start=3, period=6, rotation=4),
            BurstArrivals(period=2, magnitude=0.5, start=4),
            PopulationChurn(rate=0.4, population_size=123),
            SkewShift(exponents=(0.9, 1.8), drift_per_step=-0.05, shares=(0.3, 0.7)),
            PoisonedReports(fraction=0.2, start=3, items=(1, 2, 3)),
        ],
    )
    def test_round_trip(self, effect):
        assert effect_from_dict(effect.to_dict()) == effect

    def test_unknown_kind(self):
        with pytest.raises(ScenarioError, match="ddos"):
            effect_from_dict({"kind": "ddos"})

    def test_unknown_parameter(self):
        with pytest.raises(ScenarioError, match="strength"):
            effect_from_dict({"kind": "drift", "strength": 2})

    def test_invalid_value_names_the_effect(self):
        with pytest.raises(ScenarioError, match="drift"):
            effect_from_dict({"kind": "drift", "mode": "sideways"})


class TestScenarioSpec:
    def test_round_trip_and_build(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "lab",
                "base": {"kind": "zipf", "n_items": 64, "n_bits": 8,
                         "exponent": 2.0, "seed": 1},
                "n_steps": 6,
                "batch_size": 200,
                "k": 3,
                "window_batches": 2,
                "stride": 2,
                "effects": [{"kind": "drift", "mode": "abrupt", "start": 4}],
            }
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        scenario = spec.build()
        assert isinstance(scenario, Scenario) and scenario.drift_steps() == [4]

    def test_defaults(self):
        spec = ScenarioSpec.from_dict({})
        assert spec.base.kind == "zipf" and spec.effects == ()

    def test_fingerprint_tracks_identity_not_name(self):
        doc = {"base": {"n_items": 64, "n_bits": 8}, "k": 3}
        a = ScenarioSpec.from_dict(dict(doc, name="a"))
        b = ScenarioSpec.from_dict(dict(doc, name="b"))
        assert a.fingerprint() == b.fingerprint()
        changed = ScenarioSpec.from_dict(dict(doc, k=4))
        assert a.fingerprint() != changed.fingerprint()

    def test_unknown_key(self):
        with pytest.raises(ScenarioError, match="tracker"):
            ScenarioSpec.from_dict({"tracker": {}})

    def test_window_must_fit_the_stream(self):
        with pytest.raises(ScenarioError, match="window_batches"):
            ScenarioSpec.from_dict({"n_steps": 2, "window_batches": 5})


class TestArrivalSeams:
    def test_tracker_track_consumes_scenario_batches(self):
        from repro.core.config import MechanismConfig
        from repro.service import SlidingWindowDiscovery

        scenario = _scenario(n_steps=4, batch_size=300)
        config = MechanismConfig(
            k=3, epsilon=6.0, n_bits=8, granularity=3, simulation_mode="per_user"
        )
        tracker = SlidingWindowDiscovery(config, window_batches=2, stride=2, rng=0)
        snapshots = list(tracker.track(scenario.iter_batches(0)))
        assert [s.step for s in snapshots] == [2, 4]
        assert snapshots == tracker.snapshots

    def test_track_accepts_plain_arrays(self):
        from repro.core.config import MechanismConfig
        from repro.service import SlidingWindowDiscovery

        config = MechanismConfig(
            k=2, epsilon=6.0, n_bits=8, granularity=2, simulation_mode="per_user"
        )
        tracker = SlidingWindowDiscovery(config, window_batches=2, rng=0)
        arrivals = [np.full(100, 9), np.full(100, 9), np.full(100, 9)]
        assert len(list(tracker.track(arrivals))) == 2

    def test_client_pool_from_arrivals(self):
        from repro.service import ClientPool

        scenario = _scenario(n_steps=3, batch_size=100)
        pool = ClientPool.from_arrivals(
            scenario.iter_batches(0), name="lab", batch_size=64
        )
        assert pool.n_users == 300 and pool.name == "lab"
        with pytest.raises(ValueError, match="arrival"):
            ClientPool.from_arrivals([])

    def test_arrival_batch_metadata(self):
        scenario = _scenario(effects=[DriftSchedule(mode="abrupt", start=4)])
        batches = list(scenario.iter_batches(0))
        assert [b.step for b in batches] == [1, 2, 3, 4, 5, 6]
        assert [b.truth_changed for b in batches] == [False, False, False, True, False, False]
        assert isinstance(batches[0], ArrivalBatch)
