"""The adaptive latency controller (:mod:`repro.perf.controller`).

Determinism (identical latencies → identical traces, stamp for stamp),
convergence of the bracketing search under monotone latency models, the
knob clamps, and the ``adaptive`` knob resolution used by the loadgen.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.controller import (
    AdaptiveController,
    ControllerConfig,
    resolve_adaptive,
)


class TickClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


def _drive(controller: AdaptiveController, latency_model, rounds: int, batches: int = 8):
    """Feed ``rounds`` rounds of model latencies; returns the decisions."""
    for _ in range(rounds):
        for _ in range(batches):
            controller.observe(latency_model(controller.batch_size))
        controller.end_round()
    return controller.decisions


def test_config_validation():
    with pytest.raises(ValueError, match="target_p95_ms"):
        ControllerConfig(target_p95_ms=0)
    with pytest.raises(ValueError, match="batch bounds"):
        ControllerConfig(min_batch_size=1024, max_batch_size=512)
    with pytest.raises(ValueError, match="credit bounds"):
        ControllerConfig(min_credits=4, max_credits=2)
    with pytest.raises(ValueError, match="max_workers_cap"):
        ControllerConfig(max_workers_cap=0)
    with pytest.raises(ValueError, match="unknown"):
        ControllerConfig.from_dict({"target_p95_ms": 10, "bogus": 1})


def test_converges_under_linear_latency():
    """latency = batch/400 ms, target 10 ms → best power-of-two is 2048."""
    config = ControllerConfig(
        target_p95_ms=10.0, min_batch_size=256, max_batch_size=8192
    )
    controller = AdaptiveController(config, cores=1, clock=TickClock())
    decisions = _drive(controller, lambda b: b / 400 / 1e3, rounds=8)
    assert controller.converged
    assert controller.batch_size == 2048
    actions = [d.action for d in decisions]
    # Probes up the doubling ladder, one breach, then settled.
    assert actions[:3] == ["probe", "probe", "probe"]
    assert "decrease" in actions
    assert actions[-1] == "converged"
    # Once converged the batch never moves again.
    assert {d.batch_size for d in decisions[-2:]} == {2048}


def test_identical_latencies_identical_traces():
    config = ControllerConfig(target_p95_ms=5.0, min_batch_size=256, max_batch_size=4096)

    def run():
        controller = AdaptiveController(config, cores=2, clock=TickClock())
        _drive(controller, lambda b: b / 1000 / 1e3, rounds=6, batches=5)
        return controller.trace()

    assert run() == run()


def test_pinned_at_floor_when_even_floor_breaches():
    config = ControllerConfig(target_p95_ms=0.001, min_batch_size=256, max_batch_size=4096)
    controller = AdaptiveController(config, cores=1, clock=TickClock())
    _drive(controller, lambda b: 1.0, rounds=3)  # 1000 ms every batch
    assert controller.batch_size == config.min_batch_size
    assert controller.converged


def test_empty_round_holds_every_knob():
    controller = AdaptiveController(cores=1, clock=TickClock())
    before = controller.batch_size
    decision = controller.end_round()
    assert decision.action == "hold"
    assert decision.p50_ms == decision.p95_ms == 0.0
    assert controller.batch_size == before


def test_credits_track_p95_over_p50():
    config = ControllerConfig(target_p95_ms=1e9, min_credits=1, max_credits=8)
    controller = AdaptiveController(config, cores=1, clock=TickClock())
    controller.observe_many([0.010] * 9 + [0.055])  # p50 10ms, p95 ~34ms
    decision = controller.end_round()
    assert 1 <= decision.credits <= 8
    assert decision.credits == controller.credits == max(1, int(decision.p95_ms // decision.p50_ms))


def test_max_workers_clamped_to_cap_and_cores():
    config = ControllerConfig(max_workers_cap=4)
    assert AdaptiveController(config, cores=16, clock=TickClock()).max_workers == 4
    assert AdaptiveController(config, cores=2, clock=TickClock()).max_workers == 2
    assert AdaptiveController(config, cores=0, clock=TickClock()).max_workers == 1


def test_initial_batch_size_is_clamped():
    config = ControllerConfig(min_batch_size=512, max_batch_size=2048)
    assert AdaptiveController(config, initial_batch_size=64, cores=1).batch_size == 512
    assert AdaptiveController(config, initial_batch_size=1 << 20, cores=1).batch_size == 2048


def test_trace_is_json_safe():
    controller = AdaptiveController(cores=1, clock=TickClock())
    controller.observe(0.001)
    controller.end_round()
    (entry,) = controller.trace()
    assert entry["round_index"] == 1
    assert entry["at"] == 1.0  # the injected clock stamps decisions
    assert set(entry) == {
        "round_index", "batch_size", "credits", "max_workers",
        "p50_ms", "p95_ms", "action", "at",
    }


def test_resolve_adaptive_forms():
    assert resolve_adaptive(None) is None
    assert resolve_adaptive(False) is None
    assert resolve_adaptive(True) == ControllerConfig()
    config = ControllerConfig(target_p95_ms=7.0)
    assert resolve_adaptive(config) is config
    assert resolve_adaptive({"target_p95_ms": 7.0}) == config
    with pytest.raises(ValueError, match="bool or a controller-config"):
        resolve_adaptive("yes")
    with pytest.raises(ValueError, match="unknown"):
        resolve_adaptive({"nope": 1})


@given(
    slope=st.floats(min_value=1e-7, max_value=1e-3, allow_nan=False),
    target=st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
    batches=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_always_converges_under_monotone_latency(slope, target, batches):
    """The bracket closes within log2(max/min)+2 rounds of any linear model.

    Afterwards the chosen batch meets the target whenever *any* batch in
    bounds can (otherwise it is pinned at the floor), and it never moves
    again.
    """
    config = ControllerConfig(
        target_p95_ms=target, min_batch_size=256, max_batch_size=65536
    )
    controller = AdaptiveController(config, cores=1, clock=TickClock())
    rounds = 12  # log2(65536/256) = 8 doublings, plus breach + settle slack
    _drive(controller, lambda b: b * slope, rounds=rounds, batches=batches)
    assert controller.converged
    settled = controller.batch_size
    _drive(controller, lambda b: b * slope, rounds=2, batches=batches)
    assert controller.batch_size == settled
    floor_ms = config.min_batch_size * slope * 1e3
    if floor_ms <= target:
        assert settled * slope * 1e3 <= target
    else:
        assert settled == config.min_batch_size
