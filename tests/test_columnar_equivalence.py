"""Columnar decode path ≡ reference fallback, bit for bit.

The columnar hot path (engine workers summarise wire batches into
``O(domain)`` count vectors, :mod:`repro.service.columnar`) must be
indistinguishable from the reference decode-then-ingest path in every
observable: estimates, support counts, message transcripts, and exact
wire-bit accounting.  This module pins that equivalence

* in memory (``AggregationServer.ingest`` vs ``summarize`` +
  ``ingest_summary``), for every registered oracle,
* over a **live TCP gateway** (``columnar_decode=True`` vs ``False``),
  for every registered oracle, on the serial and thread decode backends.

CI runs this module as its own smoke step: a kernel regression that
breaks bit-identity fails here first, with the oracle named.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ldp import available_oracles, make_oracle
from repro.net import start_gateway
from repro.net.client import RemoteAggregationServer
from repro.service.clients import ClientPool
from repro.service.columnar import BatchSummary, summarize_report_payload
from repro.service.protocol import encode_report_batch, wire_bits
from repro.service.server import AggregationServer
from repro.trie.candidate_domain import CandidateDomain

N_BITS = 6
N_USERS = 700
BATCH_SIZE = 128
EPSILON = 3.0


def _domain() -> CandidateDomain:
    return CandidateDomain.full_domain(N_BITS, include_dummy=True)


def _items(seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 1 << N_BITS, size=N_USERS)


def _wire_batches(oracle_name: str) -> list[bytes]:
    """The canonical wire payloads of one deterministic report stream."""
    oracle = make_oracle(oracle_name, epsilon=EPSILON)
    pool = ClientPool(_items(), name="party-a", batch_size=BATCH_SIZE)
    return [
        encode_report_batch(batch)
        for batch in pool.iter_report_batches(oracle, _domain(), N_BITS, rng=17)
    ]


def _assert_results_identical(reference, candidate):
    np.testing.assert_array_equal(candidate.support_counts, reference.support_counts)
    np.testing.assert_array_equal(
        candidate.estimated_counts, reference.estimated_counts
    )
    np.testing.assert_array_equal(
        candidate.estimated_frequencies, reference.estimated_frequencies
    )
    assert candidate.n_users == reference.n_users
    assert candidate.metadata == reference.metadata


def _transcript(server_or_remote):
    return [
        (m.direction, m.party, m.kind, m.payload_bits, m.level)
        for m in server_or_remote.messages
    ]


# --------------------------------------------------------------------------- #
# In-memory: ingest ≡ summarize + ingest_summary
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("oracle_name", available_oracles())
def test_summary_ingest_is_bit_identical_in_memory(oracle_name):
    payloads = _wire_batches(oracle_name)
    oracle = make_oracle(oracle_name, epsilon=EPSILON)
    domain = _domain()

    reference = AggregationServer()
    ref_round = reference.open_round(
        party="party-a", level=N_BITS, oracle=oracle, domain=domain
    )
    columnar = AggregationServer()
    col_round = columnar.open_round(
        party="party-a", level=N_BITS, oracle=oracle, domain=domain
    )

    for payload in payloads:
        n_ref = reference.ingest(ref_round, payload)
        summary = summarize_report_payload(payload)
        assert isinstance(summary, BatchSummary)
        n_col = columnar.ingest_summary(
            col_round, summary, payload_bits=wire_bits(payload)
        )
        assert n_col == n_ref

    _assert_results_identical(
        reference.finalize_round(ref_round), columnar.finalize_round(col_round)
    )
    assert columnar.upload_bits() == reference.upload_bits()
    assert columnar.broadcast_bits() == reference.broadcast_bits()
    assert _transcript(columnar) == _transcript(reference)


@pytest.mark.parametrize("oracle_name", available_oracles())
def test_summary_counts_equal_decoded_support_counts(oracle_name):
    """Worker-side invariant: a summary IS the batch's support counts."""
    from repro.service.protocol import decode_report_batch

    for payload in _wire_batches(oracle_name):
        batch = decode_report_batch(payload)
        summary = summarize_report_payload(payload)
        oracle = make_oracle(oracle_name, epsilon=EPSILON)
        np.testing.assert_array_equal(
            summary.counts,
            np.asarray(
                oracle.support_counts(batch.reports, batch.domain_size),
                dtype=np.int64,
            ),
        )
        assert summary.n_users == batch.n_users
        assert summary.party == batch.party
        assert summary.oracle_name == batch.oracle_name


# --------------------------------------------------------------------------- #
# Live gateway: columnar_decode=True ≡ columnar_decode=False
# --------------------------------------------------------------------------- #
def _run_round_over(address: str, oracle_name: str):
    oracle = make_oracle(oracle_name, epsilon=EPSILON)
    remote = RemoteAggregationServer(address)
    try:
        round_id = remote.open_round(
            party="party-a", level=N_BITS, oracle=oracle, domain=_domain()
        )
        pool = ClientPool(_items(), name="party-a", batch_size=BATCH_SIZE)
        for batch in pool.iter_report_batches(oracle, _domain(), N_BITS, rng=17):
            remote.ingest_batch(round_id, batch)
        result = remote.finalize_round(round_id)
        return result, _transcript(remote), remote.upload_bits(), remote.broadcast_bits()
    finally:
        remote.shutdown()


@pytest.mark.parametrize("backend", ["serial", "thread"])
@pytest.mark.parametrize("oracle_name", available_oracles())
def test_gateway_columnar_equals_fallback(oracle_name, backend):
    workers = 2 if backend == "thread" else None
    with start_gateway(
        decode_backend=backend, decode_workers=workers, columnar_decode=False
    ) as fallback:
        ref_result, ref_transcript, ref_up, ref_down = _run_round_over(
            fallback.address, oracle_name
        )
    with start_gateway(
        decode_backend=backend, decode_workers=workers, columnar_decode=True
    ) as columnar:
        col_result, col_transcript, col_up, col_down = _run_round_over(
            columnar.address, oracle_name
        )

    _assert_results_identical(ref_result, col_result)
    assert col_transcript == ref_transcript
    # Exact wire bits: the columnar path changes what the *workers* do,
    # never what crosses the network.
    assert (col_up, col_down) == (ref_up, ref_down)
