"""Docs can't rot: doctests on the public API, executable docs, live links.

Three enforcement layers:

* **Doctests** — the runnable examples in the public-API docstrings
  (package quickstart, ``MechanismConfig``, ``run_sweep``,
  ``AggregationServer``, the serve harness) are executed as written.
* **Markdown code** — every ```` ```python ```` block in README.md and
  ``docs/*.md`` is executed as written, unless the preceding line opts out
  with ``<!-- docs-exec: skip ... -->`` (reserved for blocks that run at
  benchmark scale).
* **Links** — every relative markdown link in README.md and ``docs/*.md``
  must point at a file that exists.
"""

from __future__ import annotations

import doctest
import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda p: p.name,
)

#: The public-API modules whose docstring examples must stay runnable.
DOCTEST_MODULES = [
    "repro",
    "repro.core.config",
    "repro.experiments.runner",
    "repro.service.harness",
    "repro.service.server",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_public_api_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False, raise_on_error=False)
    assert results.attempted > 0, f"{module_name} lost its docstring examples"
    assert results.failed == 0


def iter_python_blocks(path: Path):
    """(start_line, source) of each executable ```python block in a file."""
    lines = path.read_text(encoding="utf-8").splitlines()
    index = 0
    while index < len(lines):
        if lines[index].strip().startswith("```python"):
            skipped = index > 0 and "docs-exec: skip" in lines[index - 1]
            start = index + 1
            block: list[str] = []
            index += 1
            while index < len(lines) and not lines[index].strip().startswith("```"):
                block.append(lines[index])
                index += 1
            if not skipped:
                yield start, "\n".join(block)
        index += 1


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_markdown_python_blocks_execute(doc):
    blocks = list(iter_python_blocks(doc))
    assert blocks, f"{doc.name} has no executable python blocks"
    for start, source in blocks:
        namespace: dict = {"__name__": "__docs__"}
        try:
            exec(compile(source, f"{doc.name}:{start}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - the assert is the point
            pytest.fail(f"{doc.name} block at line {start} failed: {exc!r}")


LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_markdown_links_resolve(doc):
    broken = []
    for target in LINK_RE.findall(doc.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        resolved = (doc.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name} has broken relative links: {broken}"
