"""Tests for repro.encoding.dictionary."""

import pytest

from repro.encoding.dictionary import ItemDictionary


class TestItemDictionary:
    def test_ids_assigned_in_first_seen_order(self):
        vocab = ItemDictionary(["apple", "pear", "plum"])
        assert vocab.id_of("apple") == 0
        assert vocab.id_of("pear") == 1
        assert vocab.id_of("plum") == 2

    def test_add_is_idempotent(self):
        vocab = ItemDictionary()
        first = vocab.add("word")
        second = vocab.add("word")
        assert first == second == 0
        assert len(vocab) == 1

    def test_item_of_roundtrip(self):
        vocab = ItemDictionary(["a", "b"])
        assert vocab.item_of(vocab.id_of("b")) == "b"

    def test_items_of_vectorised(self):
        vocab = ItemDictionary(["a", "b", "c"])
        assert vocab.items_of([2, 0]) == ["c", "a"]

    def test_contains_and_iter(self):
        vocab = ItemDictionary(["x", "y"])
        assert "x" in vocab
        assert "z" not in vocab
        assert list(vocab) == ["x", "y"]

    def test_unknown_item_raises(self):
        with pytest.raises(KeyError):
            ItemDictionary(["a"]).id_of("b")

    def test_out_of_range_id_raises(self):
        with pytest.raises(IndexError):
            ItemDictionary(["a"]).item_of(5)

    def test_min_bits(self):
        assert ItemDictionary().min_bits() == 1
        assert ItemDictionary(["a"]).min_bits() == 1
        assert ItemDictionary([str(i) for i in range(5)]).min_bits() == 3
        assert ItemDictionary([str(i) for i in range(256)]).min_bits() == 8

    def test_encoder_defaults_to_min_bits(self):
        vocab = ItemDictionary([str(i) for i in range(10)])
        assert vocab.encoder().n_bits == 4

    def test_encoder_rejects_too_narrow_width(self):
        vocab = ItemDictionary([str(i) for i in range(10)])
        with pytest.raises(ValueError):
            vocab.encoder(n_bits=3)

    def test_encoder_accepts_wider_width(self):
        vocab = ItemDictionary(["a", "b"])
        assert vocab.encoder(n_bits=16).n_bits == 16
