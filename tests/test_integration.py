"""Cross-module integration tests on the generated evaluation datasets."""

import numpy as np
import pytest

from repro import (
    FedPEMMechanism,
    GTFMechanism,
    MechanismConfig,
    TAPMechanism,
    TAPSMechanism,
    f1_score,
    load_dataset,
    ncr_score,
)
from repro.metrics.scores import average_local_recall


MECHANISMS = [GTFMechanism, FedPEMMechanism, TAPMechanism, TAPSMechanism]


@pytest.fixture(scope="module")
def rdb_small():
    """A mid-sized RDB instance shared by the integration tests."""
    return load_dataset("rdb", scale="tiny", seed=5)


class TestEndToEndOnGeneratedData:
    @pytest.mark.parametrize("mechanism_cls", MECHANISMS)
    def test_full_pipeline_produces_valid_output(self, rdb_small, mechanism_cls):
        config = MechanismConfig(
            k=10, epsilon=4.0, n_bits=rdb_small.n_bits, granularity=6
        )
        result = mechanism_cls(config).run(rdb_small, rng=0)
        truth = rdb_small.true_top_k(10)
        assert len(result.heavy_hitters) == 10
        assert 0.0 <= f1_score(result.heavy_hitters, truth) <= 1.0
        assert 0.0 <= ncr_score(result.heavy_hitters, truth) <= 1.0
        assert result.accountant.satisfies_ldp()

    @pytest.mark.parametrize("oracle", ["krr", "oue", "olh"])
    def test_all_oracles_complete(self, rdb_small, oracle):
        config = MechanismConfig(
            k=5, epsilon=4.0, n_bits=rdb_small.n_bits, granularity=4, oracle=oracle
        )
        result = TAPSMechanism(config).run(rdb_small, rng=1)
        assert len(result.heavy_hitters) == 5

    def test_per_user_and_aggregate_modes_both_work(self, rdb_small):
        for mode in ("aggregate", "per_user"):
            config = MechanismConfig(
                k=5,
                epsilon=4.0,
                n_bits=rdb_small.n_bits,
                granularity=4,
                simulation_mode=mode,
            )
            result = TAPMechanism(config).run(rdb_small, rng=2)
            assert len(result.heavy_hitters) == 5

    def test_utility_improves_with_more_privacy_budget(self):
        # Statistical smoke test of the Figure 4/5 trend: ε = 8 should do at
        # least as well as ε = 0.5 on average (very loose, tiny data).
        dataset = load_dataset("uba", scale="tiny", seed=9)
        truth = dataset.true_top_k(10)
        def mean_f1(eps):
            scores = []
            for seed in range(3):
                config = MechanismConfig(
                    k=10, epsilon=eps, n_bits=dataset.n_bits, granularity=6
                )
                result = TAPSMechanism(config).run(dataset, rng=seed)
                scores.append(f1_score(result.heavy_hitters, truth))
            return float(np.mean(scores))

        assert mean_f1(8.0) >= mean_f1(0.5)

    def test_local_recall_metric_computable_from_result(self, rdb_small):
        config = MechanismConfig(
            k=10, epsilon=4.0, n_bits=rdb_small.n_bits, granularity=6
        )
        result = TAPSMechanism(config).run(rdb_small, rng=3)
        truth = rdb_small.true_top_k(10)
        local = {
            name: record.local_top_items(10)
            for name, record in result.party_records.items()
        }
        assert 0.0 <= average_local_recall(local, truth) <= 1.0

    def test_communication_far_below_direct_upload(self, rdb_small):
        from repro.baselines.direct import DirectUploadCostModel

        config = MechanismConfig(
            k=10, epsilon=4.0, n_bits=rdb_small.n_bits, granularity=6
        )
        result = TAPSMechanism(config).run(rdb_small, rng=4)
        oue = DirectUploadCostModel("oue", 4.0).costs_for_dataset(rdb_small)
        assert result.upload_bits() < oue.communication_bits / 100

    def test_subsampled_dataset_runs(self, rdb_small):
        subset = rdb_small.subsample_users(0.5, rng=0)
        config = MechanismConfig(
            k=5, epsilon=4.0, n_bits=subset.n_bits, granularity=4
        )
        result = FedPEMMechanism(config).run(subset, rng=5)
        assert len(result.heavy_hitters) == 5
