"""Tests for the baseline mechanisms: PEM, FedPEM, GTF, TrieHH, direct upload."""

import numpy as np
import pytest

from repro.baselines.direct import DirectUploadCostModel, infeasibility_summary
from repro.baselines.fedpem import FedPEMMechanism
from repro.baselines.gtf import GTFMechanism
from repro.baselines.pem import SinglePartyPEM
from repro.baselines.triehh import TrieHHBaseline
from repro.core.config import ExtensionStrategy, MechanismConfig


class TestSinglePartyPEM:
    def test_finds_dominant_items(self, skewed_party):
        pem = SinglePartyPEM(k=3, epsilon=6.0, n_bits=6, granularity=3)
        result = pem.run(skewed_party, rng=0)
        assert 3 in result.heavy_hitters
        assert 12 in result.heavy_hitters
        assert len(result.heavy_hitters) == 3

    def test_always_uses_fixed_extension(self):
        pem = SinglePartyPEM(k=5, epsilon=2.0, n_bits=8, granularity=4)
        assert pem.config.extension is ExtensionStrategy.FIXED
        assert pem.config.phase1_user_fraction is None

    def test_levels_recorded(self, skewed_party):
        pem = SinglePartyPEM(k=3, epsilon=4.0, n_bits=6, granularity=3)
        result = pem.run(skewed_party, rng=1)
        assert [lev.level for lev in result.levels] == [1, 2, 3]

    def test_estimated_counts_non_negative(self, skewed_party):
        pem = SinglePartyPEM(k=3, epsilon=4.0, n_bits=6, granularity=3)
        result = pem.run(skewed_party, rng=2)
        assert all(c >= 0 for c in result.estimated_counts.values())


@pytest.mark.parametrize("mechanism_cls", [FedPEMMechanism, GTFMechanism])
class TestFederatedBaselines:
    def test_returns_k_items(self, two_party_dataset, tiny_config, mechanism_cls):
        result = mechanism_cls(tiny_config).run(two_party_dataset, rng=0)
        assert len(result.heavy_hitters) == tiny_config.k

    def test_satisfies_ldp(self, two_party_dataset, tiny_config, mechanism_cls):
        result = mechanism_cls(tiny_config).run(two_party_dataset, rng=1)
        assert result.accountant.satisfies_ldp()

    def test_finds_globally_dominant_items_at_high_epsilon(
        self, two_party_dataset, tiny_config, mechanism_cls
    ):
        config = tiny_config.with_updates(epsilon=8.0)
        result = mechanism_cls(config).run(two_party_dataset, rng=2)
        assert 5 in result.heavy_hitters

    def test_fixed_extension_enforced(self, tiny_config, mechanism_cls):
        mech = mechanism_cls(tiny_config)
        assert mech.config.extension is ExtensionStrategy.FIXED

    def test_every_party_uploads_final_report(
        self, two_party_dataset, tiny_config, mechanism_cls
    ):
        result = mechanism_cls(tiny_config).run(two_party_dataset, rng=3)
        reports = result.transcript.messages_of_kind("local_heavy_hitters")
        assert {m.party for m in reports} == {"alpha", "beta"}


class TestGTFSpecific:
    def test_gtf_reports_frequencies_not_counts(self, two_party_dataset, tiny_config):
        result = GTFMechanism(tiny_config).run(two_party_dataset, rng=0)
        for record in result.party_records.values():
            for value in record.local_heavy_hitters.values():
                assert 0.0 <= value <= 1.5  # frequencies, not population counts

    def test_gtf_logs_per_level_global_broadcasts(self, two_party_dataset, tiny_config):
        result = GTFMechanism(tiny_config).run(two_party_dataset, rng=1)
        broadcasts = result.transcript.messages_of_kind("gtf_global_prefixes")
        assert len(broadcasts) == tiny_config.granularity * two_party_dataset.n_parties


class TestTrieHH:
    def test_finds_dominant_item_without_ldp(self, skewed_party):
        baseline = TrieHHBaseline(k=3, n_bits=6, granularity=3, sampling_fraction=0.3, theta=3)
        result = baseline.run(skewed_party, rng=0)
        assert 3 in result.heavy_hitters

    def test_votes_recorded_per_level(self, skewed_party):
        baseline = TrieHHBaseline(k=3, n_bits=6, granularity=3, sampling_fraction=0.2, theta=2)
        result = baseline.run(skewed_party, rng=1)
        assert 1 <= len(result.votes_per_level) <= 3

    def test_high_threshold_returns_few_or_no_items(self, skewed_party):
        baseline = TrieHHBaseline(k=5, n_bits=6, granularity=3, sampling_fraction=0.05, theta=10_000)
        result = baseline.run(skewed_party, rng=2)
        assert result.heavy_hitters == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TrieHHBaseline(k=0)
        with pytest.raises(ValueError):
            TrieHHBaseline(sampling_fraction=0.0)
        with pytest.raises(ValueError):
            TrieHHBaseline(n_bits=4, granularity=5)


class TestDirectUploadCostModel:
    def test_paper_scale_example_matches_section_4(self):
        costs = DirectUploadCostModel.paper_scale_example()
        assert costs.communication_bits == 5_000_000 * 2_000_000
        assert costs.communication_bits == pytest.approx(1e13)

    def test_oue_communication_scales_with_domain(self):
        model = DirectUploadCostModel("oue", epsilon=4.0)
        small = model.costs(1000, 100)
        large = model.costs(1000, 10_000)
        assert large.communication_bits == 100 * small.communication_bits

    def test_olh_communication_independent_of_domain(self):
        model = DirectUploadCostModel("olh", epsilon=4.0)
        assert (
            model.costs(1000, 100).communication_bits
            == model.costs(1000, 1_000_000).communication_bits
        )

    def test_decode_cost_scales_with_both(self):
        model = DirectUploadCostModel("olh", epsilon=2.0)
        assert model.costs(10, 10).decode_operations == 100

    def test_human_readable_units(self):
        costs = DirectUploadCostModel("oue", epsilon=2.0).costs(5_000_000, 2_000_000)
        assert "TiB" in costs.communication_human() or "PiB" in costs.communication_human()

    def test_costs_for_dataset_uses_full_domain(self, two_party_dataset):
        model = DirectUploadCostModel("oue", epsilon=2.0)
        costs = model.costs_for_dataset(two_party_dataset)
        assert costs.domain_size == 1 << two_party_dataset.n_bits
        assert costs.n_users == two_party_dataset.total_users

    def test_calibrate_returns_positive_seconds(self):
        per_op = DirectUploadCostModel("oue", epsilon=2.0).calibrate(
            sample_users=200, sample_domain=16
        )
        assert per_op > 0

    def test_infeasibility_summary(self, two_party_dataset):
        summary = infeasibility_summary(two_party_dataset, epsilon=4.0)
        assert set(summary) == {"oue", "olh"}
        with pytest.raises(ValueError):
            infeasibility_summary(two_party_dataset, epsilon=0.0)
