"""Property-based tests (hypothesis) for the LDP frequency oracles.

These check the invariants that the privacy and utility analysis of the
paper relies on, for arbitrary ε and domain sizes:

* the support-probability ratio never exceeds ``e^ε`` (the LDP guarantee),
* unbiased estimation inverts the support expectation exactly,
* the aggregate sampling path conserves counts and stays within bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldp.krr import KRandomizedResponse
from repro.ldp.olh import OptimizedLocalHashing
from repro.ldp.oue import OptimizedUnaryEncoding

EPSILONS = st.floats(min_value=0.1, max_value=8.0, allow_nan=False)
DOMAIN_SIZES = st.integers(min_value=2, max_value=256)
ORACLE_CLASSES = [KRandomizedResponse, OptimizedUnaryEncoding, OptimizedLocalHashing]


@pytest.mark.parametrize("oracle_cls", ORACLE_CLASSES)
@given(epsilon=EPSILONS, domain_size=DOMAIN_SIZES)
@settings(max_examples=40, deadline=None)
def test_support_probability_ratio_respects_epsilon(oracle_cls, epsilon, domain_size):
    """p/q <= e^ε for every oracle, budget and domain size."""
    oracle = oracle_cls(epsilon)
    p, q = oracle.support_probabilities(domain_size)
    assert 0.0 < q < p <= 1.0
    assert p / q <= np.exp(epsilon) * (1 + 1e-9)


@pytest.mark.parametrize("oracle_cls", ORACLE_CLASSES)
@given(epsilon=EPSILONS, domain_size=DOMAIN_SIZES)
@settings(max_examples=40, deadline=None)
def test_estimation_inverts_expected_supports(oracle_cls, epsilon, domain_size):
    """Feeding the *expected* support counts recovers the true counts exactly."""
    oracle = oracle_cls(epsilon)
    p, q = oracle.support_probabilities(domain_size)
    rng = np.random.default_rng(0)
    true_counts = rng.integers(0, 50, size=domain_size).astype(float)
    n = true_counts.sum()
    expected_supports = true_counts * p + (n - true_counts) * q
    estimates = oracle.estimate_counts(expected_supports, int(n), domain_size)
    np.testing.assert_allclose(estimates, true_counts, atol=1e-6)


@pytest.mark.parametrize("oracle_cls", ORACLE_CLASSES)
@given(epsilon=EPSILONS, domain_size=st.integers(min_value=2, max_value=32))
@settings(max_examples=30, deadline=None)
def test_aggregate_sampling_bounds(oracle_cls, epsilon, domain_size):
    """Sampled supports are integers within [0, n] for every candidate."""
    oracle = oracle_cls(epsilon)
    rng = np.random.default_rng(1)
    true_counts = rng.integers(0, 30, size=domain_size)
    supports = oracle.sample_support_counts(true_counts, rng=2)
    n = true_counts.sum()
    assert supports.shape == (domain_size,)
    assert supports.min() >= 0
    assert supports.max() <= n


@given(epsilon=EPSILONS, domain_size=st.integers(min_value=2, max_value=32))
@settings(max_examples=30, deadline=None)
def test_krr_supports_partition_users(epsilon, domain_size):
    """k-RR supports always sum to exactly n (each report names one value)."""
    oracle = KRandomizedResponse(epsilon)
    rng = np.random.default_rng(3)
    true_counts = rng.integers(0, 40, size=domain_size)
    supports = oracle.sample_support_counts(true_counts, rng=4)
    assert supports.sum() == true_counts.sum()


@pytest.mark.parametrize("oracle_cls", ORACLE_CLASSES)
@given(epsilon=EPSILONS)
@settings(max_examples=25, deadline=None)
def test_variance_decreases_with_more_users(oracle_cls, epsilon):
    """Var[f_hat] must strictly decrease as the user count grows."""
    oracle = oracle_cls(epsilon)
    assert oracle.variance(2_000, 50) < oracle.variance(200, 50)


@given(
    epsilon=st.floats(min_value=0.5, max_value=6.0),
    values=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=200),
)
@settings(max_examples=25, deadline=None)
def test_krr_run_output_shapes(epsilon, values):
    """End-to-end run returns aligned arrays regardless of input."""
    oracle = KRandomizedResponse(epsilon)
    result = oracle.run(np.array(values), 8, rng=0, mode="per_user")
    assert result.support_counts.shape == (8,)
    assert result.estimated_counts.shape == (8,)
    assert result.estimated_frequencies.shape == (8,)
    assert result.n_users == len(values)
