"""Tests for the analytic cost model (Table 1) and Theorem 5.2 bounds."""

import numpy as np
import pytest

from repro.analysis.costs import CostModel, table1_costs
from repro.analysis.theory import (
    adaptive_extension_failure_bound,
    constant_extension_probability,
    gaussian_tail,
    oracle_variance_curve,
)


class TestCostModel:
    def test_all_rows_present_in_paper_order(self):
        rows = CostModel().all_rows()
        assert [r.mechanism for r in rows] == ["GTF", "FedPEM", "OUE", "OLH", "TAPS"]

    def test_taps_costs_exceed_fedpem_by_pruning_factor(self):
        model = CostModel(pruning_levels=6)
        assert model.taps().communication_bits == 6 * model.fedpem().communication_bits
        assert model.taps().computation_ops == model.fedpem().computation_ops

    def test_oue_dwarfs_prefix_tree_mechanisms(self):
        model = CostModel(n_users=1_000_000, domain_size=1_000_000)
        assert model.oue().communication_bits > 1e6 * model.taps().communication_bits

    def test_olh_communication_linear_in_users(self):
        a = CostModel(n_users=1_000).olh().communication_bits
        b = CostModel(n_users=2_000).olh().communication_bits
        assert b == 2 * a

    def test_paper_example_oue_bits(self):
        # Section 4.1: 5M users and |X| = 2M -> 1e13 bits at the server.
        model = CostModel(n_users=5_000_000, domain_size=2_000_000)
        assert model.oue().communication_bits == pytest.approx(1e13)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CostModel(k=0)

    def test_table1_renders_all_mechanisms(self):
        text = table1_costs().render(title="Table 1")
        for name in ("GTF", "FedPEM", "OUE", "OLH", "TAPS"):
            assert name in text


class TestTheory:
    def test_gaussian_tail_monotone_in_gap(self):
        assert gaussian_tail(0.0, 1.0) == pytest.approx(0.5)
        assert gaussian_tail(0.5, 0.1) < gaussian_tail(0.1, 0.1)

    def test_indicator_behaviour(self):
        # Large gap / small noise -> tail tiny -> indicator 0.
        assert constant_extension_probability(0.5, 0.01, k=10) == 0.0
        # Tiny gap / huge noise -> tail ~ 0.5 > threshold -> indicator 1.
        assert constant_extension_probability(0.0001, 10.0, k=10) == 1.0

    def test_failure_bound_decays_geometrically(self):
        bound_short = adaptive_extension_failure_bound(0.5, 0.01, k=10, granularity=2)
        bound_long = adaptive_extension_failure_bound(0.5, 0.01, k=10, granularity=24)
        assert bound_long <= bound_short <= 1.0

    def test_failure_bound_vacuous_when_noise_dominates(self):
        assert adaptive_extension_failure_bound(0.0, 5.0, k=10, granularity=4) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            constant_extension_probability(-0.1, 1.0, k=5)
        with pytest.raises(ValueError):
            constant_extension_probability(0.1, 1.0, k=0)
        with pytest.raises(ValueError):
            adaptive_extension_failure_bound(0.1, 1.0, k=5, granularity=0)

    def test_variance_curve_decreases_with_epsilon(self):
        eps = np.array([1.0, 2.0, 4.0])
        for oracle in ("krr", "oue", "olh"):
            curve = oracle_variance_curve(oracle, eps, n_users=1000, domain_size=64)
            assert curve.shape == (3,)
            assert np.all(np.diff(curve) < 0)

    def test_variance_curve_empty(self):
        assert oracle_variance_curve("krr", np.array([]), 10, 10).size == 0
