"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_empty,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_accepts_zero_when_not_strict(self):
        check_positive("x", 0, strict=False)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -3, strict=False)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        check_probability("p", value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        check_in_range("v", 1, 1, 10)
        check_in_range("v", 10, 1, 10)

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range("v", 1, 1, 10, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="v must lie in"):
            check_in_range("v", 11, 1, 10)


class TestCheckNonEmpty:
    def test_accepts_non_empty(self):
        check_non_empty("items", [1])
        check_non_empty("items", "a")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="must not be empty"):
            check_non_empty("items", [])


class TestCheckType:
    def test_accepts_matching_type(self):
        check_type("x", 5, int)
        check_type("x", "s", (int, str))

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be of type int"):
            check_type("x", "5", int)

    def test_tuple_message_lists_alternatives(self):
        with pytest.raises(TypeError, match="int, float"):
            check_type("x", "5", (int, float))
