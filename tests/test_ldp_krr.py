"""Tests for the k-RR frequency oracle."""

import numpy as np
import pytest

from repro.ldp.krr import KRandomizedResponse


class TestSupportProbabilities:
    def test_probabilities_sum_over_domain(self):
        # p + (d-1)q must equal 1: a k-RR report names exactly one value.
        oracle = KRandomizedResponse(epsilon=2.0)
        d = 16
        p, q = oracle.support_probabilities(d)
        assert p + (d - 1) * q == pytest.approx(1.0)

    def test_ldp_ratio_bounded_by_e_eps(self):
        for eps in (0.5, 1.0, 4.0):
            oracle = KRandomizedResponse(epsilon=eps)
            p, q = oracle.support_probabilities(32)
            assert p / q == pytest.approx(np.exp(eps))

    def test_degenerate_domain(self):
        p, q = KRandomizedResponse(1.0).support_probabilities(1)
        assert p == 1.0 and q == 0.0


class TestPerturb:
    def test_reports_stay_in_domain(self):
        oracle = KRandomizedResponse(epsilon=1.0)
        values = np.random.default_rng(0).integers(0, 8, size=500)
        reports = oracle.perturb(values, 8, rng=1)
        assert reports.min() >= 0 and reports.max() < 8

    def test_high_epsilon_keeps_most_values(self):
        oracle = KRandomizedResponse(epsilon=10.0)
        values = np.full(1000, 3)
        reports = oracle.perturb(values, 16, rng=0)
        assert np.mean(reports == 3) > 0.95

    def test_empty_input(self):
        oracle = KRandomizedResponse(epsilon=1.0)
        reports = oracle.perturb(np.array([], dtype=np.int64), 8, rng=0)
        assert reports.size == 0


class TestEstimation:
    def test_estimates_are_nearly_unbiased(self):
        oracle = KRandomizedResponse(epsilon=3.0)
        rng = np.random.default_rng(5)
        n, d = 20_000, 10
        true_freqs = np.array([0.4, 0.2, 0.1, 0.1, 0.05, 0.05, 0.04, 0.03, 0.02, 0.01])
        values = rng.choice(d, size=n, p=true_freqs)
        result = oracle.run(values, d, rng=7, mode="per_user")
        np.testing.assert_allclose(
            result.estimated_frequencies, true_freqs, atol=0.03
        )

    def test_aggregate_mode_matches_per_user_in_expectation(self):
        oracle = KRandomizedResponse(epsilon=2.0)
        rng = np.random.default_rng(0)
        values = rng.integers(0, 6, size=10_000)
        per_user = oracle.run(values, 6, rng=1, mode="per_user")
        aggregate = oracle.run(values, 6, rng=2, mode="aggregate")
        np.testing.assert_allclose(
            per_user.estimated_frequencies,
            aggregate.estimated_frequencies,
            atol=0.05,
        )

    def test_sample_support_counts_preserves_total(self):
        # k-RR reports partition the users, so supports must sum to n.
        oracle = KRandomizedResponse(epsilon=1.0)
        true_counts = np.array([100, 50, 0, 25])
        supports = oracle.sample_support_counts(true_counts, rng=3)
        assert supports.sum() == true_counts.sum()

    def test_variance_formula(self):
        oracle = KRandomizedResponse(epsilon=2.0)
        d, n = 20, 1000
        e_eps = np.exp(2.0)
        expected = (d - 2 + e_eps) / ((e_eps - 1) ** 2 * n)
        assert oracle.variance(n, d) == pytest.approx(expected)

    def test_variance_infinite_without_users(self):
        assert KRandomizedResponse(1.0).variance(0, 10) == float("inf")


class TestValidation:
    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            KRandomizedResponse(epsilon=-1.0)

    def test_values_outside_domain_rejected(self):
        oracle = KRandomizedResponse(epsilon=1.0)
        with pytest.raises(ValueError):
            oracle.run(np.array([9]), 8, rng=0)
