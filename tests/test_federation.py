"""Tests for the federation substrate: parties, grouping and transcripts."""

import numpy as np
import pytest

from repro.federation.grouping import split_into_groups, split_off_fraction
from repro.federation.messages import Message, MessageDirection
from repro.federation.party import Party
from repro.federation.transcript import FederationTranscript


class TestParty:
    def test_basic_statistics(self):
        party = Party("p", np.array([1, 1, 2, 3, 3, 3]))
        assert party.n_users == 6
        assert party.item_counts() == {1: 2, 2: 1, 3: 3}
        assert party.local_top_k(2) == [3, 1]
        assert party.local_frequencies()[3] == pytest.approx(0.5)

    def test_unique_items_sorted(self):
        party = Party("p", np.array([5, 1, 5, 2]))
        np.testing.assert_array_equal(party.unique_items(), [1, 2, 5])

    def test_empty_party_rejected(self):
        with pytest.raises(ValueError):
            Party("p", np.array([], dtype=int))

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            Party("p", np.array([-1, 2]))

    def test_subsample_size_and_metadata(self):
        party = Party("p", np.arange(100))
        sub = party.subsample(0.25, rng=0)
        assert sub.n_users == 25
        assert sub.metadata["subsampled_fraction"] == 0.25
        assert set(sub.items) <= set(party.items)

    def test_subsample_invalid_fraction(self):
        party = Party("p", np.arange(10))
        with pytest.raises(ValueError):
            party.subsample(0.0)
        with pytest.raises(ValueError):
            party.subsample(1.5)


class TestGrouping:
    def test_groups_partition_all_users(self):
        groups = split_into_groups(103, 8, rng=0)
        assert len(groups) == 8
        combined = np.sort(np.concatenate(groups))
        np.testing.assert_array_equal(combined, np.arange(103))

    def test_group_sizes_balanced(self):
        groups = split_into_groups(100, 7, rng=1)
        sizes = [g.size for g in groups]
        assert max(sizes) - min(sizes) <= 1

    def test_zero_users(self):
        groups = split_into_groups(0, 3, rng=0)
        assert all(g.size == 0 for g in groups)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            split_into_groups(-1, 2)
        with pytest.raises(ValueError):
            split_into_groups(10, 0)

    def test_split_off_fraction_sizes(self):
        group = np.arange(200)
        splits, remainder = split_off_fraction(group, 0.1, 2, rng=0)
        assert all(s.size == 20 for s in splits)
        assert remainder.size == 160
        combined = np.sort(np.concatenate(splits + [remainder]))
        np.testing.assert_array_equal(combined, group)

    def test_split_off_fraction_disjoint(self):
        splits, remainder = split_off_fraction(np.arange(50), 0.2, 2, rng=3)
        all_sets = [set(s.tolist()) for s in splits] + [set(remainder.tolist())]
        for i in range(len(all_sets)):
            for j in range(i + 1, len(all_sets)):
                assert not (all_sets[i] & all_sets[j])

    def test_split_off_fraction_tiny_group_keeps_remainder(self):
        splits, remainder = split_off_fraction(np.arange(3), 0.4, 2, rng=0)
        assert remainder.size >= 1

    def test_split_off_zero_splits(self):
        splits, remainder = split_off_fraction(np.arange(10), 0.1, 0, rng=0)
        assert splits == []
        assert remainder.size == 10

    def test_split_off_invalid_fraction(self):
        with pytest.raises(ValueError):
            split_off_fraction(np.arange(10), 1.0, 1)


class TestTranscript:
    def test_upload_and_broadcast_accounting(self):
        transcript = FederationTranscript(pair_bits=64)
        transcript.log_upload("a", "report", 10, level=3)
        transcript.log_broadcast("a", "prefixes", 5, level=3)
        assert transcript.upload_bits() == 640
        assert transcript.broadcast_bits() == 320
        assert transcript.total_bits() == 960
        assert transcript.n_messages() == 2

    def test_bits_override(self):
        transcript = FederationTranscript()
        transcript.log_upload("a", "raw", 0, bits_override=12345)
        assert transcript.upload_bits() == 12345

    def test_bits_by_party_and_kind(self):
        transcript = FederationTranscript(pair_bits=10)
        transcript.log_upload("a", "x", 1)
        transcript.log_upload("b", "x", 2)
        transcript.log_broadcast("a", "y", 3)
        assert transcript.bits_by_party() == {"a": 40, "b": 20}
        assert transcript.bits_by_kind() == {"x": 30, "y": 30}

    def test_messages_of_kind(self):
        transcript = FederationTranscript()
        transcript.log_upload("a", "x", 1)
        transcript.log_upload("a", "y", 1)
        assert len(transcript.messages_of_kind("x")) == 1

    def test_extend_with_other_transcript(self):
        a = FederationTranscript()
        b = FederationTranscript()
        a.log_upload("a", "x", 1)
        b.log_upload("b", "x", 2)
        a.extend(b)
        assert a.n_messages() == 2

    def test_message_dataclass(self):
        msg = Message(
            direction=MessageDirection.PARTY_TO_SERVER,
            party="a",
            kind="x",
            payload_bits=8,
        )
        assert msg.level is None
        assert msg.direction is MessageDirection.PARTY_TO_SERVER
