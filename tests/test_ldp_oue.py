"""Tests for the OUE frequency oracle."""

import numpy as np
import pytest

from repro.ldp.oue import OptimizedUnaryEncoding


class TestSupportProbabilities:
    def test_p_is_half_and_q_matches_formula(self):
        oracle = OptimizedUnaryEncoding(epsilon=2.0)
        p, q = oracle.support_probabilities(100)
        assert p == pytest.approx(0.5)
        assert q == pytest.approx(1.0 / (np.exp(2.0) + 1.0))

    def test_probabilities_independent_of_domain_size(self):
        oracle = OptimizedUnaryEncoding(epsilon=1.0)
        assert oracle.support_probabilities(10) == oracle.support_probabilities(10_000)

    def test_ldp_guarantee_on_bit_flip_ratio(self):
        # The OUE privacy ratio is (p/q) * ((1-q)/(1-p)) <= e^eps.
        eps = 3.0
        p, q = OptimizedUnaryEncoding(eps).support_probabilities(50)
        ratio = (p / q) * ((1 - q) / (1 - p))
        assert ratio <= np.exp(eps) + 1e-9


class TestPerturb:
    def test_report_shape(self):
        oracle = OptimizedUnaryEncoding(epsilon=1.0)
        values = np.array([0, 1, 2, 3])
        reports = oracle.perturb(values, 5, rng=0)
        assert reports.shape == (4, 5)
        assert reports.dtype == bool

    def test_true_bit_kept_about_half_the_time(self):
        oracle = OptimizedUnaryEncoding(epsilon=4.0)
        values = np.full(4000, 2)
        reports = oracle.perturb(values, 8, rng=1)
        keep_rate = reports[:, 2].mean()
        assert 0.45 < keep_rate < 0.55

    def test_false_bits_flip_at_rate_q(self):
        eps = 2.0
        oracle = OptimizedUnaryEncoding(epsilon=eps)
        values = np.full(4000, 0)
        reports = oracle.perturb(values, 6, rng=2)
        q = 1.0 / (np.exp(eps) + 1.0)
        flip_rate = reports[:, 1:].mean()
        assert abs(flip_rate - q) < 0.02


class TestEstimation:
    def test_estimates_are_nearly_unbiased(self):
        oracle = OptimizedUnaryEncoding(epsilon=3.0)
        rng = np.random.default_rng(3)
        true_freqs = np.array([0.5, 0.25, 0.15, 0.1])
        values = rng.choice(4, size=20_000, p=true_freqs)
        result = oracle.run(values, 4, rng=4, mode="per_user")
        np.testing.assert_allclose(result.estimated_frequencies, true_freqs, atol=0.03)

    def test_aggregate_mode_agrees_with_per_user(self):
        oracle = OptimizedUnaryEncoding(epsilon=2.0)
        values = np.random.default_rng(1).integers(0, 5, size=8000)
        a = oracle.run(values, 5, rng=2, mode="aggregate")
        b = oracle.run(values, 5, rng=3, mode="per_user")
        np.testing.assert_allclose(
            a.estimated_frequencies, b.estimated_frequencies, atol=0.05
        )

    def test_variance_formula(self):
        eps, n = 2.0, 500
        oracle = OptimizedUnaryEncoding(epsilon=eps)
        expected = 4 * np.exp(eps) / ((np.exp(eps) - 1) ** 2 * n)
        assert oracle.variance(n, 100) == pytest.approx(expected)

    def test_variance_smaller_than_krr_for_large_domains(self):
        from repro.ldp.krr import KRandomizedResponse

        eps, n, d = 2.0, 1000, 500
        assert OptimizedUnaryEncoding(eps).variance(n, d) < KRandomizedResponse(
            eps
        ).variance(n, d)


class TestCosts:
    def test_report_bits_equal_domain_size(self):
        oracle = OptimizedUnaryEncoding(epsilon=1.0)
        assert oracle.report_bits(1234) == 1234

    def test_bad_report_matrix_shape_raises(self):
        oracle = OptimizedUnaryEncoding(epsilon=1.0)
        with pytest.raises(ValueError):
            oracle.support_counts(np.zeros((3, 4), dtype=bool), 5)
