"""Tests for server-side aggregation."""

import pytest

from repro.core.aggregation import (
    aggregate_local_reports,
    estimate_party_counts,
    merge_counts,
)


class TestAggregateLocalReports:
    def test_counts_summed_across_parties(self):
        reports = {
            "a": {1: 100.0, 2: 50.0},
            "b": {1: 80.0, 3: 120.0},
        }
        heavy, totals = aggregate_local_reports(reports, k=2)
        assert totals[1] == pytest.approx(180.0)
        assert heavy == [1, 3]

    def test_ties_broken_by_item_id(self):
        reports = {"a": {7: 10.0, 3: 10.0}}
        heavy, _ = aggregate_local_reports(reports, k=2)
        assert heavy == [3, 7]

    def test_k_larger_than_candidates(self):
        heavy, _ = aggregate_local_reports({"a": {1: 1.0}}, k=10)
        assert heavy == [1]

    def test_weights_change_ranking(self):
        reports = {"big": {1: 10.0}, "small": {2: 11.0}}
        unweighted, _ = aggregate_local_reports(reports, k=1)
        weighted, _ = aggregate_local_reports(
            reports, k=1, weights={"big": 10.0, "small": 1.0}
        )
        assert unweighted == [2]
        assert weighted == [1]

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            aggregate_local_reports({}, k=-1)

    def test_empty_reports(self):
        heavy, totals = aggregate_local_reports({}, k=3)
        assert heavy == []
        assert totals == {}


class TestEstimatePartyCounts:
    def test_scaling_by_population(self):
        counts = estimate_party_counts(
            {"0101": 0.25, "1100": 0.1}, {"0101": 5, "1100": 12}, party_population=1000
        )
        assert counts[5] == pytest.approx(250.0)
        assert counts[12] == pytest.approx(100.0)

    def test_negative_frequencies_clamped_to_zero(self):
        counts = estimate_party_counts({"01": -0.2}, {"01": 1}, party_population=100)
        assert counts[1] == 0.0

    def test_missing_frequency_treated_as_zero(self):
        counts = estimate_party_counts({}, {"01": 1}, party_population=100)
        assert counts[1] == 0.0


class TestMergeCounts:
    def test_merge(self):
        merged = merge_counts([{1: 1.0, 2: 2.0}, {2: 3.0}])
        assert merged == {1: 1.0, 2: 5.0}

    def test_empty(self):
        assert merge_counts([]) == {}
