"""The network-mode invariant (the tentpole's acceptance criterion):

For a fixed seed, a discovery run served by a **live TCP gateway** is
bit-identical — per-round estimates, per-message transcript, and exact
wire-bit totals — to ``execution_mode="service"``, for TAP (k-RR) and an
OLH-decoding mechanism, on the serial and thread backends.  The network
layer adds transport, never semantics.
"""

from __future__ import annotations

import pytest

from repro.core.config import MechanismConfig
from repro.core.tap import TAPMechanism
from repro.core.taps import TAPSMechanism
from repro.net import run_over_network, start_gateway
from repro.service.server import run_in_service_mode


@pytest.fixture(scope="module")
def gateway():
    # Thread-backed decode on the gateway: the invariant must hold even
    # when server-side decode parallelism differs from the client's run.
    with start_gateway(decode_backend="thread", decode_workers=2) as handle:
        yield handle


def _config(dataset, **overrides) -> MechanismConfig:
    base = dict(
        k=5,
        epsilon=4.0,
        n_bits=dataset.n_bits,
        granularity=5,
        simulation_mode="per_user",
        report_batch_size=64,
    )
    base.update(overrides)
    return MechanismConfig(**base)


def _assert_bit_identical(service, network):
    assert network.heavy_hitters == service.heavy_hitters
    assert network.estimated_counts == service.estimated_counts
    assert set(network.party_records) == set(service.party_records)
    for name, svc_record in service.party_records.items():
        net_record = network.party_records[name]
        assert net_record.local_heavy_hitters == svc_record.local_heavy_hitters
        # LevelEstimate is a dataclass: == compares every field, including
        # the float count/frequency dicts, exactly.
        assert net_record.levels == svc_record.levels
    assert network.accountant.records == service.accountant.records
    # Exact wire accounting, message for message.
    assert [
        (m.direction, m.party, m.kind, m.payload_bits, m.level)
        for m in network.transcript.messages
    ] == [
        (m.direction, m.party, m.kind, m.payload_bits, m.level)
        for m in service.transcript.messages
    ]
    assert network.transcript.bits_by_kind() == service.transcript.bits_by_kind()


#: (mechanism, oracle): TAP over k-RR plus an OLH-decoding mechanism —
#: OLH exercises the gateway's sharded decode path end to end.
CASES = [(TAPMechanism, "krr"), (TAPSMechanism, "olh")]


@pytest.mark.parametrize("backend", ["serial", "thread"])
@pytest.mark.parametrize("mechanism_cls,oracle", CASES)
class TestNetworkModeBitIdentical:
    def test_discovery_over_live_gateway(
        self, mechanism_cls, oracle, backend, gateway, two_party_dataset
    ):
        config = _config(
            two_party_dataset, oracle=oracle, backend=backend,
            max_workers=2 if backend == "thread" else None,
        )
        mechanism = mechanism_cls(config)
        service = run_in_service_mode(mechanism, two_party_dataset, rng=123)
        network = run_over_network(
            mechanism, two_party_dataset, gateway.address, rng=123
        )
        _assert_bit_identical(service, network)


class TestNetworkModeSurface:
    def test_network_mode_requires_a_gateway_address(self, two_party_dataset):
        with pytest.raises(ValueError, match="gateway"):
            _config(two_party_dataset, execution_mode="network")

    def test_sweeps_reject_network_mode_up_front(self):
        """Grids have no gateway to connect cells to; fail at validation,
        not mid-sweep — on the settings field and on every overrides back
        door (spec block, make_config call)."""
        from repro.experiments.runner import ExperimentSettings, make_config
        from repro.experiments.spec import SpecError, SweepSpec

        with pytest.raises(ValueError, match="loadgen"):
            ExperimentSettings(execution_mode="network")
        with pytest.raises(SpecError, match="config_overrides"):
            SweepSpec.from_dict(
                {
                    "config_overrides": {
                        "execution_mode": "network",
                        "gateway": "127.0.0.1:9",
                        "simulation_mode": "per_user",
                    }
                }
            )
        with pytest.raises(SpecError, match="config_overrides"):
            # A bare gateway override is just as networked.
            SweepSpec.from_dict({"config_overrides": {"gateway": "127.0.0.1:9"}})
        from repro.datasets.registry import load_dataset

        dataset = load_dataset("rdb", scale="tiny", seed=0)
        with pytest.raises(ValueError, match="loadgen"):
            make_config(
                ExperimentSettings(), dataset, k=5, epsilon=4.0,
                execution_mode="network", gateway="127.0.0.1:9",
                simulation_mode="per_user",
            )

    def test_service_mode_conversion_accepts_network_configs(
        self, gateway, two_party_dataset
    ):
        """run_in_service_mode must convert a network-mode mechanism (the
        comparison direction the bit-identity docs pitch)."""
        config = _config(two_party_dataset).with_updates(
            execution_mode="network", gateway=gateway.address
        )
        service = run_in_service_mode(
            TAPMechanism(config), two_party_dataset, rng=5
        )
        network = TAPMechanism(config).run(two_party_dataset, rng=5)
        _assert_bit_identical(service, network)

    def test_network_mode_requires_per_user(self, two_party_dataset):
        with pytest.raises(ValueError, match="per_user"):
            MechanismConfig(
                k=5, epsilon=4.0, n_bits=10, granularity=5,
                execution_mode="network", gateway="127.0.0.1:1",
            )

    def test_exact_wire_accounting_lands_in_the_transcript(
        self, gateway, two_party_dataset
    ):
        config = _config(two_party_dataset)
        network = run_over_network(
            TAPMechanism(config), two_party_dataset, gateway.address, rng=7
        )
        batches = network.transcript.messages_of_kind("report_batch")
        opens = network.transcript.messages_of_kind("service_round_open")
        assert batches and opens
        assert all(m.payload_bits > 0 for m in batches + opens)
        assert len(opens) == config.granularity * two_party_dataset.n_parties

    def test_gateway_saw_exactly_the_transcripted_bits(self, two_party_dataset):
        """Client-side accounting equals the gateway's own totals."""
        from repro.net.client import GatewayConnection

        with start_gateway() as fresh:
            config = _config(two_party_dataset)
            network = run_over_network(
                TAPMechanism(config), two_party_dataset, fresh.address, rng=11
            )
            with GatewayConnection(fresh.address) as probe:
                stats = probe.stats()
        bits_by_kind = network.transcript.bits_by_kind()
        assert stats["upload_bits"] == bits_by_kind["report_batch"]
        assert stats["broadcast_bits"] == bits_by_kind["service_round_open"]
