"""Tests for the trie node and explicit prefix trie."""

import numpy as np
import pytest

from repro.trie.node import TrieNode
from repro.trie.prefix_trie import PrefixTrie


class TestTrieNode:
    def test_root_defaults(self):
        node = TrieNode()
        assert node.prefix == ""
        assert node.depth == 0
        assert node.is_leaf

    def test_get_or_create_child(self):
        node = TrieNode()
        child = node.get_or_create_child("1")
        assert child.prefix == "1"
        assert node.get_or_create_child("1") is child
        assert not node.is_leaf

    def test_invalid_bit_raises(self):
        with pytest.raises(ValueError):
            TrieNode().get_or_create_child("2")

    def test_iter_subtree_visits_all(self):
        node = TrieNode()
        node.get_or_create_child("0").get_or_create_child("1")
        node.get_or_create_child("1")
        prefixes = {n.prefix for n in node.iter_subtree()}
        assert prefixes == {"", "0", "01", "1"}


class TestPrefixTrie:
    def test_insert_and_find(self):
        trie = PrefixTrie()
        trie.insert("0101", count=3)
        assert trie.count_of("0101") == 3
        assert "0101" in trie
        assert "11" not in trie

    def test_insert_accumulates(self):
        trie = PrefixTrie()
        trie.insert("10", count=1)
        trie.insert("10", count=2)
        assert trie.count_of("10") == 3

    def test_from_items_propagates_counts_upwards(self):
        items = np.array([0b00, 0b01, 0b01, 0b11])
        trie = PrefixTrie.from_items(items, n_bits=2)
        assert trie.count_of("0") == 3
        assert trie.count_of("01") == 2
        assert trie.count_of("1") == 1
        assert trie.root.count == 4

    def test_from_items_frequencies_sum_to_one_per_level(self):
        items = np.random.default_rng(0).integers(0, 16, size=200)
        trie = PrefixTrie.from_items(items, n_bits=4)
        for depth in range(1, 5):
            total = sum(n.frequency for n in trie.nodes_at_depth(depth))
            assert total == pytest.approx(1.0)

    def test_from_items_empty(self):
        trie = PrefixTrie.from_items(np.array([], dtype=int), n_bits=4)
        assert len(trie) == 0

    def test_top_prefixes(self):
        items = np.array([0b10] * 5 + [0b01] * 3 + [0b00] * 1)
        trie = PrefixTrie.from_items(items, n_bits=2)
        assert trie.top_prefixes(2, 2) == ["10", "01"]

    def test_nodes_at_depth_negative_raises(self):
        with pytest.raises(ValueError):
            PrefixTrie().nodes_at_depth(-1)

    def test_max_depth_and_len(self):
        trie = PrefixTrie()
        trie.insert("010")
        assert trie.max_depth() == 3
        assert len(trie) == 3  # '0', '01', '010'

    def test_prune_keeps_ancestors_and_descendants(self):
        trie = PrefixTrie()
        trie.insert("000")
        trie.insert("011")
        trie.insert("110")
        trie.prune(keep=["00"])
        assert "000" in trie
        assert "00" in trie
        assert "011" not in trie
        assert "110" not in trie
