"""Tests for the candidate domain abstraction."""

import numpy as np
import pytest

from repro.trie.candidate_domain import CandidateDomain


class TestConstruction:
    def test_basic_properties(self):
        dom = CandidateDomain(["00", "01", "10"])
        assert dom.n_candidates == 3
        assert dom.size == 4  # plus dummy
        assert dom.dummy_index == 3
        assert dom.prefix_length == 2
        assert list(dom) == ["00", "01", "10"]

    def test_without_dummy(self):
        dom = CandidateDomain(["0", "1"], include_dummy=False)
        assert dom.size == 2
        assert dom.dummy_index is None

    def test_duplicates_removed_preserving_order(self):
        dom = CandidateDomain(["01", "00", "01"])
        assert dom.prefixes == ["01", "00"]

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            CandidateDomain(["0", "01"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CandidateDomain([])

    def test_full_domain(self):
        dom = CandidateDomain.full_domain(3)
        assert dom.n_candidates == 8
        assert dom.prefixes[0] == "000"
        assert dom.prefixes[-1] == "111"

    def test_full_domain_refuses_huge(self):
        with pytest.raises(ValueError):
            CandidateDomain.full_domain(21)


class TestEncoding:
    def test_encode_items_maps_to_candidate_indices(self):
        dom = CandidateDomain(["00", "01"])
        # items with 4-bit encodings 0000, 0111, 1100
        out = dom.encode_items(np.array([0b0000, 0b0111, 0b1100]), n_bits=4)
        assert out[0] == dom.index_of("00")
        assert out[1] == dom.index_of("01")
        assert out[2] == dom.dummy_index  # out of domain

    def test_encode_items_without_dummy_raises_on_ood(self):
        dom = CandidateDomain(["00"], include_dummy=False)
        with pytest.raises(ValueError):
            dom.encode_items(np.array([0b1100]), n_bits=4)

    def test_encode_items_empty(self):
        dom = CandidateDomain(["0"])
        assert dom.encode_items(np.array([], dtype=int), n_bits=4).size == 0

    def test_encode_items_prefix_longer_than_bits_raises(self):
        dom = CandidateDomain(["00000"])
        with pytest.raises(ValueError):
            dom.encode_items(np.array([1]), n_bits=4)

    def test_encode_prefixes(self):
        dom = CandidateDomain(["10", "11"])
        out = dom.encode_prefixes(["11", "00", "10"])
        assert out[0] == 1
        assert out[1] == dom.dummy_index
        assert out[2] == 0

    def test_encode_prefixes_wrong_length_raises(self):
        dom = CandidateDomain(["10"])
        with pytest.raises(ValueError):
            dom.encode_prefixes(["1"])

    def test_encode_items_agrees_with_string_lookup(self):
        rng = np.random.default_rng(0)
        prefixes = [format(i, "04b") for i in rng.choice(16, size=7, replace=False)]
        dom = CandidateDomain(prefixes)
        items = rng.integers(0, 256, size=300)
        encoded = dom.encode_items(items, n_bits=8)
        for item, idx in zip(items, encoded):
            prefix = format(item, "08b")[:4]
            if prefix in dom:
                assert idx == dom.index_of(prefix)
            else:
                assert idx == dom.dummy_index


class TestExtensionAndPruning:
    def test_extended_produces_cartesian_product(self):
        dom = CandidateDomain(["00", "01", "10"])
        extended = dom.extended(["00", "10"], 2)
        assert extended.n_candidates == 8
        assert extended.prefix_length == 4
        assert "0000" in extended
        assert "1011" in extended
        assert "0100" not in extended

    def test_extended_unknown_prefix_raises(self):
        dom = CandidateDomain(["00"])
        with pytest.raises(KeyError):
            dom.extended(["11"], 1)

    def test_without_removes_candidates(self):
        dom = CandidateDomain(["00", "01", "10", "11"])
        pruned = dom.without(["01", "11", "0110"])  # unknown prefixes are ignored
        assert pruned.prefixes == ["00", "10"]

    def test_without_everything_raises(self):
        dom = CandidateDomain(["00", "01"])
        with pytest.raises(ValueError):
            dom.without(["00", "01"])
