"""Tests for the aggregation server: round lifecycle, exact accounting, and
round finalisation matching the in-memory oracle computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federation.messages import MessageDirection
from repro.ldp.registry import available_oracles, make_oracle
from repro.service.clients import ClientPool, iter_perturbed_batches
from repro.service.protocol import encode_report_batch
from repro.service.server import (
    AggregationServer,
    ServiceError,
    ServiceRoundRunner,
    run_in_service_mode,
)
from repro.service.shards import make_shard
from repro.trie.candidate_domain import CandidateDomain


def _domain(bits: int = 5) -> CandidateDomain:
    return CandidateDomain.full_domain(bits, include_dummy=True)


def _stream_round(server, oracle, values, domain, seed, batch_size):
    round_id = server.open_round(
        party="alpha", level=domain.prefix_length, oracle=oracle, domain=domain
    )
    for batch in iter_perturbed_batches(
        oracle, values, domain.size, rng=np.random.default_rng(seed),
        batch_size=batch_size, party="alpha", level=domain.prefix_length,
    ):
        server.ingest(round_id, encode_report_batch(batch))
    return round_id


class TestRoundFinalization:
    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_streamed_round_equals_in_memory_run(self, oracle_name):
        """Single-batch streaming is bit-identical to the one-shot path."""
        oracle = make_oracle(oracle_name, epsilon=3.0)
        domain = _domain()
        values = np.random.default_rng(1).integers(0, domain.size, size=500)
        direct = oracle.run(values, domain.size, np.random.default_rng(9),
                            mode="per_user")
        server = AggregationServer()
        round_id = _stream_round(server, oracle, values, domain, 9, batch_size=500)
        streamed = server.finalize_round(round_id)
        assert np.array_equal(streamed.support_counts, direct.support_counts)
        assert np.array_equal(streamed.estimated_counts, direct.estimated_counts)
        assert np.array_equal(
            streamed.estimated_frequencies, direct.estimated_frequencies
        )
        assert streamed.n_users == direct.n_users

    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_batched_streaming_equals_batched_in_memory(self, oracle_name):
        """Equal batch splits consume the RNG identically on both paths."""
        oracle = make_oracle(oracle_name, epsilon=3.0)
        domain = _domain()
        values = np.random.default_rng(1).integers(0, domain.size, size=500)
        direct = oracle.run(values, domain.size, np.random.default_rng(9),
                            mode="per_user", batch_size=77)
        server = AggregationServer()
        round_id = _stream_round(server, oracle, values, domain, 9, batch_size=77)
        streamed = server.finalize_round(round_id)
        assert np.array_equal(streamed.support_counts, direct.support_counts)
        assert streamed.metadata["n_batches"] == -(-500 // 77)

    def test_empty_round(self):
        oracle = make_oracle("krr", epsilon=2.0)
        server = AggregationServer()
        round_id = server.open_round(
            party="a", level=3, oracle=oracle, domain=_domain(3)
        )
        result = server.finalize_round(round_id)
        assert result.n_users == 0
        assert not result.estimated_counts.any()


class TestAccounting:
    def test_exact_wire_bits(self):
        oracle = make_oracle("krr", epsilon=2.0)
        domain = _domain(4)
        values = np.random.default_rng(0).integers(0, domain.size, size=300)
        server = AggregationServer()
        _stream_round(server, oracle, values, domain, 3, batch_size=100)
        uploads = [
            m for m in server.messages
            if m.direction is MessageDirection.PARTY_TO_SERVER
        ]
        assert len(uploads) == 3
        assert all(m.kind == "report_batch" for m in uploads)
        assert server.upload_bits() == sum(m.payload_bits for m in uploads)
        assert server.broadcast_bits() > 0
        drained = server.drain_messages()
        assert len(drained) == 4 and server.messages == []

    def test_merge_shard_path(self):
        oracle = make_oracle("krr", epsilon=2.0)
        domain = _domain(4)
        values = np.random.default_rng(0).integers(0, domain.size, size=200)
        reports = oracle.perturb(values, domain.size, np.random.default_rng(1))
        edge = make_shard(oracle, domain.size)
        edge.ingest(reports)
        server = AggregationServer()
        round_id = server.open_round(party="a", level=4, oracle=oracle, domain=domain)
        server.merge_shard(round_id, edge, party="edge-0")
        result = server.finalize_round(round_id)
        assert result.n_users == 200
        assert result.metadata["n_batches"] == edge.n_batches == 1
        assert np.array_equal(
            result.support_counts, oracle.support_counts(reports, domain.size)
        )
        merge_messages = [m for m in server.messages if m.kind == "shard_merge"]
        assert merge_messages and merge_messages[0].payload_bits == domain.size * 64

    def test_totals_survive_drain_and_shards_are_released(self):
        oracle = make_oracle("krr", epsilon=2.0)
        domain = _domain(4)
        values = np.random.default_rng(0).integers(0, domain.size, size=300)
        server = AggregationServer()
        round_id = _stream_round(server, oracle, values, domain, 3, batch_size=100)
        server.finalize_round(round_id)
        upload, broadcast = server.upload_bits(), server.broadcast_bits()
        assert upload > 0 and broadcast > 0
        server.drain_messages()
        assert server.upload_bits() == upload
        assert server.broadcast_bits() == broadcast
        # Finalisation released the O(domain) accumulator.
        assert server.rounds[round_id].shard is None


class TestProtocolErrors:
    def _open(self):
        oracle = make_oracle("krr", epsilon=2.0)
        server = AggregationServer()
        domain = _domain(3)
        round_id = server.open_round(party="a", level=3, oracle=oracle, domain=domain)
        return server, oracle, domain, round_id

    def _payload(self, oracle, domain, **overrides):
        values = np.zeros(10, dtype=np.int64)
        (batch,) = iter_perturbed_batches(
            oracle, values, domain.size, rng=0, batch_size=10, party="a", level=3
        )
        if overrides:
            batch = type(batch)(**{**batch.__dict__, **overrides})
        return encode_report_batch(batch)

    def test_unknown_round(self):
        server, oracle, domain, _ = self._open()
        with pytest.raises(ServiceError, match="unknown round"):
            server.ingest(99, self._payload(oracle, domain))

    def test_finalised_round_rejects_ingest(self):
        server, oracle, domain, round_id = self._open()
        server.finalize_round(round_id)
        with pytest.raises(ServiceError, match="finalised"):
            server.ingest(round_id, self._payload(oracle, domain))

    def test_party_mismatch(self):
        server, oracle, domain, round_id = self._open()
        with pytest.raises(ServiceError, match="party"):
            server.ingest(round_id, self._payload(oracle, domain, party="b"))

    def test_level_mismatch(self):
        """A mis-addressed batch must not fold into the wrong round."""
        server, oracle, domain, round_id = self._open()
        with pytest.raises(ServiceError, match="level"):
            server.ingest(round_id, self._payload(oracle, domain, level=4))

    def test_oracle_mismatch(self):
        server, _, domain, round_id = self._open()
        other = make_oracle("oue", epsilon=2.0)
        with pytest.raises(ServiceError, match="oracle"):
            server.ingest(round_id, self._payload(other, domain))

    def test_epsilon_mismatch(self):
        server, _, domain, round_id = self._open()
        other = make_oracle("krr", epsilon=3.0)
        with pytest.raises(ServiceError, match="epsilon"):
            server.ingest(round_id, self._payload(other, domain))

    def test_domain_mismatch(self):
        server, oracle, _, round_id = self._open()
        with pytest.raises(ServiceError, match="domain size"):
            server.ingest(round_id, self._payload(oracle, _domain(4)))

    def test_aggregate_mode_refused(self):
        runner = ServiceRoundRunner(party="a", batch_size=10)
        with pytest.raises(ServiceError, match="per_user"):
            runner.run_round(
                make_oracle("krr", 2.0), np.zeros(5, dtype=np.int64),
                _domain(3), np.random.default_rng(0), mode="aggregate",
            )


class TestStructuredErrorCodes:
    """Every protocol failure carries a stable machine-readable code —
    what the network runtime ships in its error frames."""

    def _open(self):
        return TestProtocolErrors._open(TestProtocolErrors())

    def _code_of(self, fn) -> str:
        with pytest.raises(ServiceError) as excinfo:
            fn()
        return excinfo.value.code

    def test_codes_cover_every_raise_site(self):
        helper = TestProtocolErrors()
        server, oracle, domain, round_id = self._open()
        payload = helper._payload(oracle, domain)
        assert self._code_of(lambda: server.ingest(99, payload)) == "unknown_round"
        assert self._code_of(
            lambda: server.ingest(
                round_id, helper._payload(oracle, domain, party="b")
            )
        ) == "party_mismatch"
        assert self._code_of(
            lambda: server.ingest(
                round_id, helper._payload(oracle, domain, level=4)
            )
        ) == "level_mismatch"
        assert self._code_of(
            lambda: server.ingest(
                round_id, helper._payload(make_oracle("oue", 2.0), domain)
            )
        ) == "oracle_mismatch"
        assert self._code_of(
            lambda: server.ingest(
                round_id, helper._payload(make_oracle("krr", 3.0), domain)
            )
        ) == "epsilon_mismatch"
        assert self._code_of(
            lambda: server.ingest(round_id, helper._payload(oracle, _domain(4)))
        ) == "domain_mismatch"
        server.finalize_round(round_id)
        assert self._code_of(
            lambda: server.ingest(round_id, payload)
        ) == "round_closed"

    def test_default_code_and_validation(self):
        assert ServiceError("plain").code == "protocol"
        with pytest.raises(ValueError, match="unknown service error code"):
            ServiceError("x", code="not_a_code")

    def test_bad_mode_code(self):
        runner = ServiceRoundRunner(party="a", batch_size=10)
        with pytest.raises(ServiceError) as excinfo:
            runner.run_round(
                make_oracle("krr", 2.0), np.zeros(5, dtype=np.int64),
                _domain(3), np.random.default_rng(0), mode="aggregate",
            )
        assert excinfo.value.code == "bad_mode"


class TestIngestDecoded:
    def test_matches_ingest_accounting_exactly(self):
        """The gateway's decode/accumulate seam is account-identical."""
        from repro.service.protocol import decode_report_batch, wire_bits

        helper = TestProtocolErrors()
        oracle = make_oracle("krr", epsilon=2.0)
        domain = _domain(3)
        payload = helper._payload(oracle, domain)

        whole, split = AggregationServer(), AggregationServer()
        rid_whole = whole.open_round(party="a", level=3, oracle=oracle, domain=domain)
        rid_split = split.open_round(party="a", level=3, oracle=oracle, domain=domain)
        assert whole.ingest(rid_whole, payload) == split.ingest_decoded(
            rid_split, decode_report_batch(payload), payload_bits=wire_bits(payload)
        )
        assert whole.upload_bits() == split.upload_bits()
        assert [
            (m.kind, m.party, m.payload_bits, m.level) for m in whole.messages
        ] == [(m.kind, m.party, m.payload_bits, m.level) for m in split.messages]
        a = whole.finalize_round(rid_whole)
        b = split.finalize_round(rid_split)
        assert a.metadata == b.metadata
        np.testing.assert_array_equal(a.support_counts, b.support_counts)


class TestClientPool:
    def test_from_dataset_and_party(self, two_party_dataset):
        pooled = ClientPool.from_dataset(two_party_dataset, batch_size=100)
        assert pooled.n_users == two_party_dataset.total_users
        alpha = ClientPool.from_dataset(two_party_dataset, party="alpha")
        assert alpha.name == "alpha"
        with pytest.raises(KeyError, match="gamma"):
            ClientPool.from_dataset(two_party_dataset, party="gamma")

    def test_bounded_batches_cover_all_users(self, two_party_dataset):
        pool = ClientPool.from_dataset(two_party_dataset, batch_size=128)
        oracle = make_oracle("krr", epsilon=4.0)
        domain = _domain(4)
        batches = list(
            pool.iter_report_batches(
                oracle, domain, two_party_dataset.n_bits, rng=0
            )
        )
        assert all(b.n_users <= 128 for b in batches)
        assert sum(b.n_users for b in batches) == pool.n_users

    def test_draw_users_for_load_generation(self, two_party_dataset):
        pool = ClientPool.from_dataset(two_party_dataset)
        users = pool.draw_users(1000, rng=3)
        assert users.shape == (1000,)
        assert users.min() >= 0 and users.max() < pool.n_users


class TestRunInServiceMode:
    def test_converts_any_mechanism(self, two_party_dataset, tiny_config):
        from repro.core.tap import TAPMechanism

        mechanism = TAPMechanism(tiny_config)  # aggregate-mode config
        result = run_in_service_mode(mechanism, two_party_dataset, rng=0)
        assert result.transcript.messages_of_kind("report_batch")
        assert len(result.heavy_hitters) == tiny_config.k
