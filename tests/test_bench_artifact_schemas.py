"""Golden-schema lock on every committed ``benchmarks/results/*.json``.

Tier-1 protection against artifact drift: each committed perf artifact
must parse, match its registered :class:`~repro.perf.gate.ArtifactSchema`
exactly (fields, types, calibration block, trend-report shape), and
every registered schema must agree with what the corresponding benchmark
actually writes.  When benchmarks ran earlier in the same pytest session
(the default ``python -m pytest`` collects ``benchmarks/`` first) this
validates the freshly-written files — i.e. the writers themselves.
"""

import json
from pathlib import Path

import pytest

from repro.perf.calibrate import MachineCalibration
from repro.perf.gate import ARTIFACT_SCHEMAS
from repro.perf.trend import VERDICTS, TrendPolicy

RESULTS_DIR = Path(__file__).parent.parent / "benchmarks" / "results"

PERF_ARTIFACTS = sorted(ARTIFACT_SCHEMAS)


def _load(name: str) -> dict:
    path = RESULTS_DIR / f"{name}.json"
    if not path.exists():
        pytest.fail(f"committed perf artifact {path} is missing")
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("name", PERF_ARTIFACTS)
def test_committed_artifact_matches_golden_schema(name):
    payload = _load(name)
    errors = ARTIFACT_SCHEMAS[name].validate(payload)
    assert not errors, f"{name}.json drifted from its golden schema:\n" + "\n".join(errors)


@pytest.mark.parametrize("name", PERF_ARTIFACTS)
def test_committed_artifact_blocks_parse_into_the_real_types(name):
    """The calibration and policy blocks round-trip through their classes."""
    payload = _load(name)
    calibration = MachineCalibration.from_dict(payload["calibration"])
    assert calibration.ops_per_sec > 0
    policy = TrendPolicy.from_dict(payload["trend"]["policy"])
    assert policy == ARTIFACT_SCHEMAS[name].policy
    assert payload["trend"]["verdict"] in VERDICTS


def test_every_results_json_is_accounted_for():
    """No orphan artifacts: every ``*.json`` is a perf artifact with a
    registered schema or a ``repro bench -o`` records document."""
    for path in sorted(RESULTS_DIR.glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        if path.stem in ARTIFACT_SCHEMAS:
            continue
        assert isinstance(payload, dict) and "target" in payload, (
            f"{path.name} has no golden schema registered in "
            "repro.perf.gate.ARTIFACT_SCHEMAS and is not a bench records "
            "document — register a schema for it or it will fail the gate"
        )


@pytest.mark.parametrize("name", PERF_ARTIFACTS)
def test_committed_artifact_has_no_embedded_fail(name):
    """The committed trajectory itself must be regression-free."""
    payload = _load(name)
    assert payload["trend"]["verdict"] != "fail", payload["trend"]["warnings"]
