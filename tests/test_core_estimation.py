"""Tests for the per-party level estimator."""

import numpy as np
import pytest

from repro.core.config import ExtensionStrategy, MechanismConfig
from repro.core.estimation import PartyEstimator
from repro.ldp.budget import PrivacyAccountant
from repro.trie.candidate_domain import CandidateDomain


@pytest.fixture
def estimator(skewed_party):
    config = MechanismConfig(k=4, epsilon=4.0, n_bits=6, granularity=3)
    oracle = config.make_oracle()
    accountant = PrivacyAccountant(epsilon=config.epsilon)
    return PartyEstimator(
        skewed_party, config, oracle, np.random.default_rng(0), accountant
    )


class TestGroupAllocation:
    def test_groups_partition_users(self, estimator):
        all_users = np.sort(
            np.concatenate([estimator.users_at_level(h) for h in range(1, 4)])
        )
        np.testing.assert_array_equal(all_users, np.arange(estimator.party.n_users))

    def test_every_level_has_users(self, estimator):
        for level in range(1, 4):
            assert estimator.users_at_level(level).size > 0

    def test_phase1_fraction_allocates_smaller_warm_start_groups(self, skewed_party):
        config = MechanismConfig(
            k=4, epsilon=4.0, n_bits=8, granularity=4, phase1_user_fraction=0.05
        )
        est = PartyEstimator(
            skewed_party, config, config.make_oracle(), np.random.default_rng(1)
        )
        gs = config.effective_shared_level
        phase1 = sum(est.users_at_level(h).size for h in range(1, gs + 1))
        phase2 = sum(
            est.users_at_level(h).size for h in range(gs + 1, config.granularity + 1)
        )
        assert phase1 < phase2

    def test_even_split_when_fraction_is_none(self, skewed_party):
        config = MechanismConfig(
            k=4, epsilon=4.0, n_bits=8, granularity=4, phase1_user_fraction=None
        )
        est = PartyEstimator(
            skewed_party, config, config.make_oracle(), np.random.default_rng(1)
        )
        sizes = [est.users_at_level(h).size for h in range(1, 5)]
        assert max(sizes) - min(sizes) <= 1


class TestDomainConstruction:
    def test_level_one_uses_full_domain(self, estimator):
        domain = estimator.build_domain(1, None)
        assert domain.n_candidates == 2 ** estimator.prefix_length(1)

    def test_extension_from_previous_selection(self, estimator):
        domain = estimator.build_domain(2, ["00", "11"])
        expected_extra = estimator.prefix_length(2) - estimator.prefix_length(1)
        assert domain.n_candidates == 2 * 2**expected_extra
        assert domain.prefix_length == estimator.prefix_length(2)


class TestEstimateLevel:
    def test_heavy_prefix_detected(self, estimator):
        # Items 3 (=000011) and 12 (=001100) dominate; their 2-bit prefix '00'
        # must come out with the largest estimated count at level 1.
        domain = estimator.build_domain(1, None)
        estimate = estimator.estimate_level(1, domain)
        top_prefix = max(estimate.estimated_counts, key=estimate.estimated_counts.get)
        assert top_prefix == "00"

    def test_selected_prefixes_subset_of_domain(self, estimator):
        domain = estimator.build_domain(1, None)
        estimate = estimator.estimate_level(1, domain)
        assert set(estimate.selected_prefixes) <= set(domain.prefixes)
        assert estimate.extension_count == len(estimate.selected_prefixes)

    def test_accountant_records_reports(self, estimator):
        domain = estimator.build_domain(1, None)
        users = estimator.users_at_level(1)
        estimator.estimate_level(1, domain)
        assert estimator.accountant.n_reports() == users.size
        assert estimator.accountant.satisfies_ldp()

    def test_fixed_extension_selects_exactly_t(self, skewed_party):
        config = MechanismConfig(
            k=3,
            epsilon=4.0,
            n_bits=6,
            granularity=3,
            extension=ExtensionStrategy.FIXED,
            fixed_extension=2,
        )
        est = PartyEstimator(
            skewed_party, config, config.make_oracle(), np.random.default_rng(2)
        )
        estimate = est.estimate_level(1, est.build_domain(1, None))
        assert len(estimate.selected_prefixes) == 2

    def test_estimate_on_users_returns_all_candidates(self, estimator):
        domain = CandidateDomain(["00", "01", "10", "11"])
        outcome = estimator.estimate_on_users(np.arange(100), domain)
        assert set(outcome.counts) == {"00", "01", "10", "11"}
        assert outcome.n_users == 100
        assert outcome.sigma > 0
