"""Tests for the evaluation metrics (F1, NCR, average local recall)."""

import numpy as np
import pytest

from repro.metrics.ground_truth import (
    exact_prefix_frequencies,
    federated_top_k,
    global_prefix_frequencies,
    party_local_top_k,
    true_top_prefixes,
)
from repro.metrics.scores import (
    average_local_recall,
    f1_score,
    ncr_score,
    precision_recall,
)


class TestPrecisionRecall:
    def test_perfect_match(self):
        assert precision_recall([1, 2, 3], [1, 2, 3]) == (1.0, 1.0)

    def test_half_overlap(self):
        p, r = precision_recall([1, 2], [2, 3])
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(0.5)

    def test_empty_estimate(self):
        assert precision_recall([], [1]) == (0.0, 0.0)

    def test_both_empty(self):
        assert precision_recall([], []) == (1.0, 1.0)


class TestF1Score:
    def test_perfect(self):
        assert f1_score([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert f1_score([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert f1_score([1, 2, 3, 4], [1, 2, 5, 6]) == pytest.approx(0.5)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            est = rng.choice(30, size=10, replace=False).tolist()
            truth = rng.choice(30, size=10, replace=False).tolist()
            assert 0.0 <= f1_score(est, truth) <= 1.0


class TestNCRScore:
    def test_perfect(self):
        assert ncr_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_missing_top_item_penalised_more(self):
        truth = [1, 2, 3, 4]
        missing_top = ncr_score([2, 3, 4], truth)
        missing_bottom = ncr_score([1, 2, 3], truth)
        assert missing_bottom > missing_top

    def test_disjoint_is_zero(self):
        assert ncr_score([9, 10], [1, 2]) == 0.0

    def test_empty_truth(self):
        assert ncr_score([], []) == 1.0
        assert ncr_score([1], []) == 0.0

    def test_matches_hand_computation(self):
        truth = [10, 20, 30]  # qualities 3, 2, 1; max = 6
        assert ncr_score([10, 30], truth) == pytest.approx(4 / 6)


class TestAverageLocalRecall:
    def test_perfect_parties(self):
        local = {"a": [1, 2], "b": [2, 1]}
        assert average_local_recall(local, [1, 2]) == 1.0

    def test_mixed_parties(self):
        local = {"a": [1, 2], "b": [3, 4]}
        assert average_local_recall(local, [1, 2]) == pytest.approx(0.5)

    def test_empty_inputs(self):
        assert average_local_recall({}, [1]) == 0.0
        assert average_local_recall({"a": [1]}, []) == 1.0


class TestGroundTruth:
    def test_federated_top_k_delegates(self, two_party_dataset):
        assert federated_top_k(two_party_dataset, 2) == two_party_dataset.true_top_k(2)

    def test_party_local_top_k_keys(self, two_party_dataset):
        local = party_local_top_k(two_party_dataset, 3)
        assert set(local) == {"alpha", "beta"}
        assert 50 in local["beta"]

    def test_exact_prefix_frequencies_sum_to_one(self):
        items = np.array([0, 1, 2, 3, 3, 3])
        freqs = exact_prefix_frequencies(items, n_bits=4, prefix_length=2)
        assert sum(freqs.values()) == pytest.approx(1.0)
        assert freqs["00"] == pytest.approx(6 / 6)

    def test_exact_prefix_frequencies_empty(self):
        assert exact_prefix_frequencies(np.array([], dtype=int), 4, 2) == {}

    def test_global_prefix_frequencies_and_top_prefixes(self, two_party_dataset):
        freqs = global_prefix_frequencies(two_party_dataset, 4)
        assert sum(freqs.values()) == pytest.approx(1.0)
        top = true_top_prefixes(two_party_dataset, 4, 2)
        assert len(top) == 2
        # item 5 = 0000000101 -> 4-bit prefix '0000' dominates
        assert "0000" in top
