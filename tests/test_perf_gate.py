"""The perf gate (:mod:`repro.perf.gate`) and its CLI face.

Schema validation catches drift, the trend re-check catches regressions
(and hand-edited verdicts), the selftest proves the gate catches an
injected 2× slowdown — and a selftest that catches nothing is itself a
failure.  CLI cases drive ``repro bench gate`` through the real
entry point and assert process exit codes.
"""

import json

import pytest

from repro.cli import main
from repro.perf.calibrate import MachineCalibration
from repro.perf.gate import (
    ARTIFACT_SCHEMAS,
    GateReport,
    inject_slowdown,
    run_gate,
    run_selftest,
)


def _calibration(ops_per_sec: float = 1e6) -> MachineCalibration:
    return MachineCalibration(
        ops_per_sec=ops_per_sec,
        elapsed_seconds=0.1,
        work_units=1000,
        repetitions=1,
        cpu_count=1,
        effective_cores=1,
    )


def _service_entry(**overrides) -> dict:
    entry = {
        "oracle": "krr",
        "batch_size": 2048,
        "n_users": 1000,
        "n_batches": 1,
        "seconds": 0.1,
        "reports_per_sec": 10_000.0,
        "peak_batch_bytes": 128,
        "tracemalloc_peak_bytes": 256,
        "accumulator_bytes": 520,
        "wire_bytes": 64,
    }
    entry.update(overrides)
    return entry


def _service_payload(entries=None, previous=None, calibration=None) -> dict:
    calibration = calibration or _calibration()
    entries = entries if entries is not None else [_service_entry()]
    schema = ARTIFACT_SCHEMAS["service_throughput"]
    trend = schema.trend(entries, previous, calibration=calibration)
    return {
        "backend": "serial",
        "max_workers": None,
        "domain_size": 65,
        "entries": entries,
        "trend": trend.to_dict(),
        "calibration": calibration.to_dict(),
    }


def _write(results_dir, name, payload):
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / f"{name}.json").write_text(json.dumps(payload, indent=2))


def test_gate_passes_valid_artifacts(tmp_path):
    _write(tmp_path, "service_throughput", _service_payload())
    report = run_gate(tmp_path)
    assert report.verdict == "pass"
    assert report.exit_code == 0
    (artifact,) = report.artifacts
    assert artifact.kind == "perf"
    assert not artifact.errors


def test_gate_fails_on_missing_results_dir(tmp_path):
    report = run_gate(tmp_path / "nope")
    assert report.exit_code == 1
    assert "does not exist" in report.artifacts[0].errors[0]


def test_gate_fails_on_schema_drift(tmp_path):
    payload = _service_payload()
    del payload["entries"][0]["reports_per_sec"]
    _write(tmp_path, "service_throughput", payload)
    report = run_gate(tmp_path)
    assert report.exit_code == 1
    assert any("reports_per_sec" in e for e in report.artifacts[0].errors)


def test_gate_fails_on_unregistered_artifact(tmp_path):
    _write(tmp_path, "mystery_numbers", {"entries": []})
    report = run_gate(tmp_path)
    assert report.exit_code == 1
    assert "no golden schema" in report.artifacts[0].errors[0]


def test_gate_fails_on_invalid_json(tmp_path):
    tmp_path.mkdir(parents=True, exist_ok=True)
    (tmp_path / "service_throughput.json").write_text("{not json")
    report = run_gate(tmp_path)
    assert report.exit_code == 1
    assert "invalid JSON" in report.artifacts[0].errors[0]


def test_gate_accepts_bench_records_documents(tmp_path):
    _write(tmp_path, "table3", {"target": "table3", "records": [], "settings": {},
                                "text": ""})
    report = run_gate(tmp_path)
    assert report.exit_code == 0
    assert report.artifacts[0].kind == "bench-records"


def test_gate_recheck_catches_embedded_fail(tmp_path):
    """A run whose trend block recorded a fail ratio fails the gate."""
    baseline = _service_payload()
    degraded = _service_payload(
        entries=[_service_entry(reports_per_sec=2_000.0)], previous=baseline
    )
    assert degraded["trend"]["verdict"] == "fail"
    _write(tmp_path, "service_throughput", degraded)
    report = run_gate(tmp_path)
    assert report.exit_code == 1
    assert report.artifacts[0].verdict == "fail"


def test_gate_recheck_overrides_hand_edited_verdict(tmp_path):
    """A doctored 'pass' verdict cannot sneak a fail ratio past the gate."""
    baseline = _service_payload()
    degraded = _service_payload(
        entries=[_service_entry(reports_per_sec=2_000.0)], previous=baseline
    )
    for comparison in degraded["trend"]["comparisons"]:
        comparison["verdict"] = "pass"
    degraded["trend"]["verdict"] = "pass"
    degraded["trend"]["warnings"] = []
    _write(tmp_path, "service_throughput", degraded)
    report = run_gate(tmp_path)
    assert report.exit_code == 1


def test_gate_surfaces_skips_with_reasons(tmp_path):
    entries = [
        _service_entry(),
        {"oracle": "olh", "batch_size": 2048, "skipped_reason": "needs >=2 cores"},
    ]
    _write(tmp_path, "service_throughput", _service_payload(entries=entries))
    report = run_gate(tmp_path)
    assert report.exit_code == 0
    assert any("needs >=2 cores" in skip for skip in report.artifacts[0].skips)


def test_inject_slowdown_respects_direction():
    schema = ARTIFACT_SCHEMAS["service_throughput"]
    (degraded,) = inject_slowdown([_service_entry(reports_per_sec=100.0)], schema)
    assert degraded["reports_per_sec"] == pytest.approx(50.0)
    engine = ARTIFACT_SCHEMAS["engine_speedup"]
    (degraded,) = inject_slowdown([{"measure": "serial", "cost_ratio": 3.0}], engine)
    assert degraded["cost_ratio"] == pytest.approx(6.0)
    # Entries without the value (skips) pass through untouched.
    (skipped,) = inject_slowdown([{"measure": "x", "skipped_reason": "r"}], engine)
    assert skipped == {"measure": "x", "skipped_reason": "r"}


def test_selftest_catches_injected_regression(tmp_path):
    _write(tmp_path, "service_throughput", _service_payload())
    selftest = run_selftest(tmp_path)
    assert selftest["ok"]
    (outcome,) = selftest["artifacts"]
    assert outcome["name"] == "service_throughput"
    assert outcome["caught"] and outcome["verdict"] == "fail"


def test_selftest_with_nothing_eligible_is_not_ok(tmp_path):
    tmp_path.mkdir(parents=True, exist_ok=True)
    selftest = run_selftest(tmp_path)
    assert not selftest["ok"]
    assert selftest["artifacts"] == []
    # ... and folds into a failing gate verdict.
    report = GateReport(results_dir=str(tmp_path), selftest=selftest)
    assert report.exit_code == 1


def test_gate_cli_exit_codes_and_report(tmp_path, capsys):
    _write(tmp_path / "results", "service_throughput", _service_payload())
    out_dir = tmp_path / "out"
    code = main(
        ["bench", "gate", "--results", str(tmp_path / "results"),
         "--selftest", "-o", str(out_dir)]
    )
    assert code == 0
    stdout = capsys.readouterr().out
    assert "PASS" in stdout and "selftest" in stdout
    report = json.loads((out_dir / "gate_report.json").read_text())
    assert report["verdict"] == "pass"
    assert report["selftest"]["ok"]


def test_gate_cli_fails_on_regression(tmp_path, capsys):
    baseline = _service_payload()
    degraded = _service_payload(
        entries=[_service_entry(reports_per_sec=2_000.0)], previous=baseline
    )
    _write(tmp_path / "results", "service_throughput", degraded)
    code = main(["bench", "gate", "--results", str(tmp_path / "results")])
    assert code == 1
    assert "FAIL" in capsys.readouterr().out


def test_committed_artifacts_pass_the_real_gate():
    """The repo's own committed artifacts must keep the gate green.

    This is the tier-1 anchor of the perf trajectory: a PR that lands a
    regression (or drifts a schema) goes red here, not in a nightly.
    Runs against the files the benchmarks (re)wrote earlier in this
    pytest session — benchmarks/ collects before tests/ — or, under a
    tests-only run, against the committed files themselves.
    """
    from pathlib import Path

    results_dir = Path(__file__).parent.parent / "benchmarks" / "results"
    report = run_gate(results_dir)
    detail = "\n".join(
        f"{artifact.name}: {artifact.verdict} {artifact.errors}"
        for artifact in report.artifacts
    )
    assert report.exit_code == 0, f"perf gate failed:\n{detail}"
