"""End-to-end tests of the ``repro`` CLI (run / sweep / serve / bench).

Everything goes through ``main(argv)`` — the same entry point the console
script installs — asserting both the exit statuses and the CLI ↔ API
equivalence guarantees (a CLI invocation is bit-identical to the direct
API calls for a fixed seed, modulo wall-clock keys).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.datasets.registry import load_dataset
from repro.experiments.runner import (
    ExperimentSettings,
    build_mechanism,
    make_config,
    run_sweep,
)
from repro.experiments.serialization import load_sweep, summarize_result

SPEC_DICT = {
    "name": "cli-test",
    "settings": {"scale": "tiny", "repetitions": 2, "seed": 2025, "granularity": 6},
    "grid": {
        "datasets": ["rdb"],
        "mechanisms": ["fedpem", "taps"],
        "epsilons": [4.0],
        "ks": [5],
    },
}


def write_spec(tmp_path, data=None):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(data or SPEC_DICT))
    return path


def strip_runtime(records):
    return [{k: v for k, v in r.items() if k != "runtime_seconds"} for r in records]


def spec_settings() -> ExperimentSettings:
    return ExperimentSettings(
        scale="tiny",
        repetitions=2,
        seed=2025,
        granularity=6,
        datasets=("rdb",),
        mechanisms=("fedpem", "taps"),
        epsilons=(4.0,),
        ks=(5,),
    )


class TestTopLevel:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "repro" in capsys.readouterr().out

    def test_unknown_command_exits_via_argparse(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestRun:
    def test_json_output_and_api_equivalence(self, capsys):
        assert main(["run", "taps", "--smoke", "--rng", "0"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mechanism"] == "taps"
        assert 0.0 <= payload["metrics"]["f1"] <= 1.0
        # --smoke applies the full canonical preset, k and ε included.
        assert payload["config"]["k"] == 5 and payload["config"]["epsilon"] == 4.0

        # The CLI run must be bit-identical to the equivalent API calls.
        settings = ExperimentSettings(
            scale="tiny", repetitions=1, granularity=6, oracle="krr", seed=2025
        )
        dataset = load_dataset("rdb", scale="tiny", seed=2025)
        config = make_config(settings, dataset, k=5, epsilon=4.0)
        result = build_mechanism("taps", config).run(dataset, rng=0)
        expected = summarize_result(result)
        actual = payload["summary"]
        for key in ("runtime_seconds",):
            expected.pop(key), actual.pop(key)
        assert actual == expected

    def test_explicit_flags_beat_the_smoke_preset(self, capsys):
        assert main(["run", "taps", "--smoke", "-k", "7", "--rng", "0"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["k"] == 7

    def test_explicit_scale_beats_the_smoke_preset(self, capsys):
        assert main(["run", "taps", "--smoke", "--scale", "small", "--rng", "0"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scale"] == "small"
        assert payload["config"]["k"] == 5  # the rest of the preset still applies

    def test_output_file(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        assert main(["run", "gtf", "--smoke", "-o", str(out)]) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["mechanism"] == "gtf"


class TestSweep:
    def test_spec_run_matches_api_and_resume_is_bit_identical(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        out = tmp_path / "out"
        assert main(["sweep", "--spec", str(spec), "-o", str(out)]) == 0
        err = capsys.readouterr().err
        assert "4 cells (0 reused, 4 computed)" in err
        assert (out / "spec.json").exists() and (out / "cells.jsonl").exists()

        uninterrupted = load_sweep(out / "sweep.json")
        api = run_sweep(spec_settings())
        assert strip_runtime(uninterrupted.records) == strip_runtime(api.records)

        # Simulate a kill at 50%: drop the last two completed cells plus a
        # partial line mid-write, then rerun with --resume.
        store_path = out / "cells.jsonl"
        lines = store_path.read_text().splitlines()
        store_path.write_text("\n".join(lines[:3]) + '\n{"key": ["rdb", "ta')
        assert main(["sweep", "--spec", str(spec), "-o", str(out), "--resume"]) == 0
        assert "4 cells (2 reused, 2 computed)" in capsys.readouterr().err

        resumed = load_sweep(out / "sweep.json")
        assert strip_runtime(resumed.records) == strip_runtime(uninterrupted.records)
        # The two reused cells kept their original wall-clock values —
        # proof they were not recomputed.
        assert [r["runtime_seconds"] for r in resumed.records[:2]] == [
            r["runtime_seconds"] for r in uninterrupted.records[:2]
        ]

    def test_existing_store_without_resume_fails(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        out = tmp_path / "out"
        assert main(["sweep", "--spec", str(spec), "-o", str(out), "-q"]) == 0
        assert main(["sweep", "--spec", str(spec), "-o", str(out), "-q"]) == 2
        assert "resume" in capsys.readouterr().err

    def test_resume_under_a_different_spec_fails(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        out = tmp_path / "out"
        assert main(["sweep", "--spec", str(spec), "-o", str(out), "-q"]) == 0
        original_spec_json = (out / "spec.json").read_text()
        changed = dict(SPEC_DICT, grid={**SPEC_DICT["grid"], "epsilons": [3.0]})
        other = tmp_path / "other.json"
        other.write_text(json.dumps(changed))
        assert main(["sweep", "--spec", str(other), "-o", str(out), "--resume", "-q"]) == 2
        assert "different sweep spec" in capsys.readouterr().err
        # A refused invocation must not rewrite the provenance record.
        assert (out / "spec.json").read_text() == original_spec_json

    def test_resume_survives_backend_and_worker_changes(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        out = tmp_path / "out"
        assert main(["sweep", "--spec", str(spec), "-o", str(out), "-q"]) == 0
        first = load_sweep(out / "sweep.json")
        # Execution knobs are not part of the grid identity: resuming the
        # same spec on another backend/worker count must reuse every cell.
        assert main([
            "sweep", "--spec", str(spec), "-o", str(out), "--resume",
            "--backend", "thread", "--workers", "2",
        ]) == 0
        assert "(4 reused, 0 computed)" in capsys.readouterr().err
        resumed = load_sweep(out / "sweep.json")
        assert strip_runtime(resumed.records) == strip_runtime(first.records)

    def test_force_overwrites(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        out = tmp_path / "out"
        assert main(["sweep", "--spec", str(spec), "-o", str(out), "-q"]) == 0
        assert main(["sweep", "--spec", str(spec), "-o", str(out), "-q", "--force"]) == 0

    def test_bad_spec_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"settings": {"not_a_knob": 1}}))
        assert main(["sweep", "--spec", str(bad), "-o", str(tmp_path / "o")]) == 2
        assert "not_a_knob" in capsys.readouterr().err


class TestServe:
    ARGS = ["serve", "--smoke", "--level", "4", "--batch-size", "256",
            "--rounds", "2", "--rng", "3"]

    def test_prints_accounting_and_is_deterministic(self, tmp_path, capsys):
        out_a = tmp_path / "a.json"
        assert main(self.ARGS + ["-o", str(out_a)]) == 0
        rendered = capsys.readouterr().out
        assert "upload (kB)" in rendered and "round" in rendered

        out_b = tmp_path / "b.json"
        assert main(self.ARGS + ["-o", str(out_b)]) == 0
        capsys.readouterr()
        report_a = json.loads(out_a.read_text())
        report_b = json.loads(out_b.read_text())
        assert report_a == report_b
        assert report_a["upload_bits"] > 0 and report_a["broadcast_bits"] > 0
        # Two parties (RDB) × two rounds.
        assert len(report_a["rounds"]) == 4


SCENARIO_DOC = {
    "name": "cli-lab",
    "base": {"kind": "zipf", "n_items": 64, "n_bits": 8, "exponent": 2.5,
             "shift": 4.0, "seed": 5},
    "n_steps": 8,
    "batch_size": 400,
    "k": 3,
    "window_batches": 2,
    "stride": 2,
    "effects": [
        {"kind": "drift", "mode": "abrupt", "start": 5},
        {"kind": "poison", "fraction": 0.1},
    ],
}


class TestServeScenario:
    def write_scenario(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(SCENARIO_DOC))
        return path

    def args(self, spec, **paths):
        argv = ["serve", "--scenario", str(spec), "--epsilon", "6",
                "--granularity", "3", "--rng", "3"]
        for flag, value in paths.items():
            argv += [f"--{flag}", str(value)]
        return argv

    def test_persists_snapshot_records(self, tmp_path, capsys):
        spec = self.write_scenario(tmp_path)
        store = tmp_path / "snapshots.jsonl"
        out = tmp_path / "report.json"
        assert main(self.args(spec, store=store, output=out)) == 0
        rendered = capsys.readouterr().out
        assert "precision" in rendered and "drift @ step 5" in rendered

        from repro.experiments.store import ScenarioSnapshotStore

        records = ScenarioSnapshotStore.load(store)
        assert [r["step"] for r in records] == [2, 4, 6, 8]
        for record in records:
            assert {"precision", "recall", "f1", "upload_bits"} <= set(record)
        report = json.loads(out.read_text())
        assert report["records"] == records
        assert [e["event_step"] for e in report["events"]] == [5]

    def test_same_seed_runs_are_byte_identical(self, tmp_path, capsys):
        """The acceptance invariant: two same-seed CLI runs persist
        byte-identical stores (records hold no wall-clock values)."""
        spec = self.write_scenario(tmp_path)
        store_a, store_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(self.args(spec, store=store_a)) == 0
        assert main(self.args(spec, store=store_b)) == 0
        capsys.readouterr()
        assert store_a.read_bytes() == store_b.read_bytes()

    def test_existing_store_needs_force(self, tmp_path, capsys):
        spec = self.write_scenario(tmp_path)
        store = tmp_path / "snapshots.jsonl"
        assert main(self.args(spec, store=store)) == 0
        assert main(self.args(spec, store=store)) == 2
        assert "--force" in capsys.readouterr().err
        assert main(self.args(spec, store=store) + ["--force"]) == 0

    def test_bench_pivot_renders_a_snapshot_store(self, tmp_path, capsys):
        spec = self.write_scenario(tmp_path)
        store = tmp_path / "snapshots.jsonl"
        assert main(self.args(spec, store=store)) == 0
        capsys.readouterr()
        assert main(["bench", "pivot", "--from", str(store),
                     "--rows", "step", "--cols", "n_poisoned",
                     "--value", "f1"]) == 0
        assert "step" in capsys.readouterr().out

    def test_window_and_stride_flags_override_the_spec(self, tmp_path, capsys):
        spec = self.write_scenario(tmp_path)
        out = tmp_path / "report.json"
        assert main(self.args(spec, output=out, window=4, stride=4)) == 0
        capsys.readouterr()
        report = json.loads(out.read_text())
        assert [r["step"] for r in report["records"]] == [4, 8]

    def test_bad_spec_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"base": {"kind": "uniform"}}))
        assert main(["serve", "--scenario", str(path)]) == 2
        assert "uniform" in capsys.readouterr().err

    def test_raw_round_flags_are_rejected_in_scenario_mode(self, tmp_path, capsys):
        # Flags the scenario run would silently ignore must fail loudly.
        spec = self.write_scenario(tmp_path)
        assert main(self.args(spec) + ["--smoke"]) == 2
        assert "--smoke" in capsys.readouterr().err
        assert main(self.args(spec) + ["--batch-size", "128"]) == 2
        assert "--batch-size" in capsys.readouterr().err

    def test_oversized_window_override_is_a_usage_error(self, tmp_path, capsys):
        spec = self.write_scenario(tmp_path)
        assert main(self.args(spec, window=20)) == 2
        assert "never fill" in capsys.readouterr().err

    def test_failed_run_does_not_leave_a_blocking_empty_store(self, tmp_path, capsys):
        # A run that dies before any snapshot must not leave a header-only
        # store that forces --force on the corrected rerun.
        spec = self.write_scenario(tmp_path)
        store = tmp_path / "snapshots.jsonl"
        assert main(self.args(spec, store=store, window=20)) == 2
        assert not store.exists()
        capsys.readouterr()
        assert main(self.args(spec, store=store)) == 0

    def test_scenario_flags_are_rejected_in_raw_mode(self, tmp_path, capsys):
        # The mirror image: raw rounds would silently ignore --store etc.
        store = tmp_path / "snapshots.jsonl"
        assert main(["serve", "--smoke", "--store", str(store)]) == 2
        err = capsys.readouterr().err
        assert "--store" in err and "--scenario" in err
        assert not store.exists()
        assert main(["serve", "--smoke", "--window", "3"]) == 2
        assert "--window" in capsys.readouterr().err

    def test_shipped_example_spec_loads(self):
        from pathlib import Path

        from repro.experiments.spec import load_scenario_spec

        spec_path = Path(__file__).parent.parent / "examples/specs/drift_attack.yaml"
        spec = load_scenario_spec(spec_path)
        assert spec.name == "drift-attack" and spec.build().drift_steps()


class TestBench:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "figure7" in out

    def test_compute_persist_and_rerender(self, tmp_path, capsys):
        assert main(["bench", "table8", "--smoke", "-o", str(tmp_path)]) == 0
        computed = capsys.readouterr().out
        assert "Table 8" in computed
        artifact = tmp_path / "table8.json"
        payload = json.loads(artifact.read_text())
        assert payload["target"] == "table8" and payload["records"]

        # Re-render from the persisted records: no recomputation, same data.
        assert main(["bench", "table8", "--from", str(artifact)]) == 0
        rerendered = capsys.readouterr().out
        assert "Table 8" in rerendered
        for record in payload["records"]:
            assert f"{record['f1']:.4f}" in rerendered

    def test_pivot_rerenders_sweep_output(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        out = tmp_path / "out"
        assert main(["sweep", "--spec", str(spec), "-o", str(out), "-q"]) == 0
        assert main([
            "bench", "pivot", "--from", str(out / "sweep.json"),
            "--rows", "mechanism", "--cols", "epsilon", "--value", "f1",
        ]) == 0
        assert "fedpem" in capsys.readouterr().out

    def test_missing_records_file(self, capsys):
        assert main(["bench", "table8", "--from", "/nonexistent.json"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_rerender_with_missing_pivot_keys_is_a_clean_error(self, tmp_path, capsys):
        # table3's recipe needs step_size, which plain sweep records lack —
        # that must surface as a friendly CLIError, not a KeyError traceback.
        spec = write_spec(tmp_path)
        out = tmp_path / "out"
        assert main(["sweep", "--spec", str(spec), "-o", str(out), "-q"]) == 0
        assert main(["bench", "table3", "--from", str(out / "sweep.json")]) == 2
        assert "step_size" in capsys.readouterr().err

    def test_figure_rerender(self, tmp_path, capsys):
        assert main(["bench", "figure7", "--smoke", "-o", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["bench", "figure7", "--from", str(tmp_path / "figure7.json")]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "eps=4" in out


class TestLoadgen:
    def test_smoke_self_hosts_a_gateway(self, tmp_path, capsys):
        out = tmp_path / "loadgen.json"
        assert main(["loadgen", "--smoke", "--level", "4", "--batch-size",
                     "256", "--rng", "0", "-o", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "reports/s" in rendered and "p99" in rendered
        payload = json.loads(out.read_text())
        assert payload["workload"] == "dataset:rdb"
        assert payload["n_reports"] > 0
        assert set(payload["latency_ms"]) == {"count", "p50", "p95", "p99",
                                              "mean", "max"}
        assert payload["gateway"]["upload_bits"] > 0

    def test_spec_drives_the_run_and_flags_win(self, tmp_path, capsys):
        spec = tmp_path / "loadgen.json"
        spec.write_text(json.dumps({
            "name": "cli-net",
            "gateway": {"connection_credits": 4},
            "workload": {"dataset": "rdb", "scale": "tiny", "level": 4,
                         "batch_size": 128, "rounds": 2},
            "load": {"connections": 3, "backend": "serial", "seed": 5},
        }))
        out = tmp_path / "report.json"
        # --connections 1 must beat the spec's 3, and --rounds 1 must beat
        # the spec's 2 even though 1 is also the built-in default; the
        # rest comes from the spec.
        assert main(["loadgen", "--spec", str(spec), "--connections", "1",
                     "--rounds", "1", "-o", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["connections"] == 1
        assert payload["rounds"] == 1 and payload["batch_size"] == 128
        assert payload["backend"] == "serial"

    def test_scenario_replay(self, tmp_path, capsys):
        scenario = tmp_path / "scenario.json"
        scenario.write_text(json.dumps(SCENARIO_DOC))
        out = tmp_path / "report.json"
        assert main(["loadgen", "--scenario", str(scenario), "--connections",
                     "2", "--level", "5", "--rng", "1", "-o", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["workload"] == "scenario:cli-lab"
        # 8 steps x 400 arrivals per replayed stream, per connection.
        assert payload["n_reports"] == 2 * 8 * 400

    def test_refused_shutdown_keeps_the_measurement(self, tmp_path, capsys):
        from repro.net import start_gateway

        out = tmp_path / "report.json"
        with start_gateway(allow_shutdown=False) as handle:
            assert main(["loadgen", "--connect", handle.address, "--scale",
                         "tiny", "--level", "4", "--rng", "0", "--shutdown",
                         "-o", str(out)]) == 0
        captured = capsys.readouterr()
        assert "did not shut down" in captured.err
        # The completed measurement survives the refusal.
        assert json.loads(out.read_text())["n_reports"] > 0

    def test_bad_connect_address_is_a_cli_error(self, capsys):
        assert main(["loadgen", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_unreachable_gateway_is_a_cli_error(self, capsys):
        assert main(["loadgen", "--connect", "127.0.0.1:1"]) == 2
        assert "error" in capsys.readouterr().err


class TestServeListen:
    def test_gateway_only_flags_require_listen(self, capsys):
        assert main(["serve", "--credits", "4"]) == 2
        assert "--listen" in capsys.readouterr().err

    def test_listen_rejects_round_flags(self, capsys):
        assert main(["serve", "--listen", "127.0.0.1:0", "--rounds", "3"]) == 2
        err = capsys.readouterr().err
        assert "--rounds" in err

    def test_listen_rejects_perturbation_flags(self, capsys):
        # A gateway never perturbs: a seed would be silently meaningless.
        assert main(["serve", "--listen", "127.0.0.1:0", "--rng", "7"]) == 2
        assert "--rng" in capsys.readouterr().err

    def test_listen_rejects_bad_address(self, capsys):
        assert main(["serve", "--listen", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_serve_and_loadgen_pair_over_a_real_socket(self, tmp_path, capsys):
        """The scripted CI flow: serve --listen + loadgen --connect --shutdown."""
        import threading
        import time

        ready = tmp_path / "gw.addr"
        stats_out = tmp_path / "gateway.json"
        serve_status: list[int] = []

        def serve():
            serve_status.append(main([
                "serve", "--listen", "127.0.0.1:0", "--ready-file", str(ready),
                "--credits", "4", "-o", str(stats_out),
            ]))

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        deadline = time.time() + 30
        # Non-empty, not merely existing: write_text creates the file
        # before its content lands.
        while time.time() < deadline:
            if ready.exists() and ready.read_text().strip():
                break
            time.sleep(0.05)
        address = ready.read_text().strip()
        out = tmp_path / "loadgen.json"
        assert main(["loadgen", "--connect", address, "--scale", "tiny",
                     "--level", "4", "--rng", "2", "--shutdown",
                     "-o", str(out)]) == 0
        thread.join(timeout=30)
        assert serve_status == [0]
        capsys.readouterr()
        report = json.loads(out.read_text())
        stats = json.loads(stats_out.read_text())
        # The gateway accounted exactly the bits the clients sent.
        assert stats["upload_bits"] == report["upload_bits"]
        assert stats["broadcast_bits"] == report["broadcast_bits"]
        assert report["gateway"]["credits_per_connection"] == 4


class TestGatewaySpecErrors:
    def spec_with_bogus_backend(self, tmp_path):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"gateway": {"decode_backend": "quantum"}}))
        return spec

    def test_listen_reports_unknown_decode_backend_cleanly(self, tmp_path, capsys):
        spec = self.spec_with_bogus_backend(tmp_path)
        assert main(["serve", "--listen", "127.0.0.1:0", "--spec", str(spec)]) == 2
        err = capsys.readouterr().err
        assert "quantum" in err and "Traceback" not in err

    def test_loadgen_reports_unknown_decode_backend_cleanly(self, tmp_path, capsys):
        spec = self.spec_with_bogus_backend(tmp_path)
        assert main(["loadgen", "--spec", str(spec)]) == 2
        err = capsys.readouterr().err
        assert "quantum" in err and "Traceback" not in err


class TestLoadgenScenarioConflicts:
    def test_scenario_rejects_explicit_dataset_flags(self, tmp_path, capsys):
        scenario = tmp_path / "scenario.json"
        scenario.write_text(json.dumps(SCENARIO_DOC))
        assert main(["loadgen", "--scenario", str(scenario), "--dataset",
                     "rdb", "--scale", "large"]) == 2
        err = capsys.readouterr().err
        assert "--dataset" in err and "--scale" in err
