"""Tests for the consensus-based pruning strategy (Equations 4-8)."""

import pytest

from repro.core.pruning import (
    PruningCandidates,
    consensus_prune,
    population_confidence,
    select_pruning_candidates,
)
from repro.core.results import LevelEstimate


def _estimate_from_frequencies(freqs: dict[str, float]) -> LevelEstimate:
    n = 1000
    return LevelEstimate(
        level=3,
        prefix_length=len(next(iter(freqs))),
        candidate_prefixes=list(freqs),
        estimated_counts={p: f * n for p, f in freqs.items()},
        estimated_frequencies=dict(freqs),
        selected_prefixes=list(freqs)[:3],
        extension_count=3,
        n_users=n,
        domain_size=len(freqs) + 1,
    )


@pytest.fixture
def level_estimate():
    freqs = {format(i, "04b"): 0.2 / (i + 1) for i in range(12)}
    return _estimate_from_frequencies(freqs)


class TestSelectPruningCandidates:
    def test_sizes_bounded_by_n(self, level_estimate):
        candidates = select_pruning_candidates(level_estimate, 4)
        assert len(candidates.infrequent) == 4
        assert len(candidates.frequent) == 4

    def test_frequent_sorted_descending(self, level_estimate):
        candidates = select_pruning_candidates(level_estimate, 5)
        freqs = [f for _, f in candidates.frequent]
        assert freqs == sorted(freqs, reverse=True)
        assert candidates.frequent[0][0] == "0000"

    def test_infrequent_sorted_ascending(self, level_estimate):
        candidates = select_pruning_candidates(level_estimate, 5)
        assert candidates.infrequent[0] == "1011"  # the least frequent prefix

    def test_n_pairs(self, level_estimate):
        candidates = select_pruning_candidates(level_estimate, 3)
        assert candidates.n_pairs == 6

    def test_invalid_n(self, level_estimate):
        with pytest.raises(ValueError):
            select_pruning_candidates(level_estimate, 0)


class TestPopulationConfidence:
    def test_large_previous_party_gives_small_gamma(self):
        assert population_confidence(900, 1000) < population_confidence(100, 1000)

    def test_bounds(self):
        assert 0.0 <= population_confidence(500, 1000) <= 1.0

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            population_confidence(10, 0)


class TestConsensusPrune:
    def _candidates(self):
        return PruningCandidates(
            level=3,
            prefix_length=4,
            infrequent=("0001", "0010", "0011", "0100"),
            frequent=(("1111", 0.30), ("1110", 0.20), ("1100", 0.10), ("1000", 0.05)),
        )

    def test_agreement_prunes_infrequent_prefixes(self):
        candidates = self._candidates()
        # The validating party agrees: the same prefixes look infrequent and
        # the predecessor's frequent prefixes are also frequent here (so the
        # contrast score is small and type-2 pruning stays quiet).
        validated_infrequent = {"0001": 0.0, "0010": 0.001, "0011": 0.002, "0100": 0.003}
        validated_frequent = {"1111": 0.28, "1110": 0.22, "1100": 0.09, "1000": 0.06}
        pruned = consensus_prune(
            candidates,
            validated_infrequent,
            validated_frequent,
            k=4,
            epsilon=4.0,
            gamma=0.25,
        )
        assert pruned <= set(candidates.infrequent) | {p for p, _ in candidates.frequent}
        assert "0001" in pruned
        # A prefix frequent in BOTH parties must never be pruned.
        assert "1111" not in pruned

    def test_disagreement_prunes_nothing_from_type1(self):
        candidates = self._candidates()
        # The validating party sees the "infrequent" candidates in the exact
        # opposite order — no consensus, so type-1 pruning should be empty or
        # minimal and never include the locally frequent ones.
        validated_infrequent = {"0001": 0.30, "0010": 0.25, "0011": 0.01, "0100": 0.0}
        validated_frequent = {"1111": 0.3, "1110": 0.2, "1100": 0.1, "1000": 0.05}
        pruned = consensus_prune(
            candidates,
            validated_infrequent,
            validated_frequent,
            k=4,
            epsilon=4.0,
            gamma=0.25,
        )
        assert "0001" not in pruned

    def test_contrast_score_prunes_locally_absent_but_remotely_popular(self):
        candidates = self._candidates()
        validated_infrequent = {"0001": 0.0, "0010": 0.0, "0011": 0.0, "0100": 0.0}
        # '1111' is very popular in the previous party but absent here →
        # highest contrast score and lowest local frequency → prunable.
        validated_frequent = {"1111": 0.0, "1110": 0.25, "1100": 0.12, "1000": 0.07}
        pruned = consensus_prune(
            candidates,
            validated_infrequent,
            validated_frequent,
            k=4,
            epsilon=1.0,
            gamma=0.1,
        )
        assert "1111" in pruned
        assert "1110" not in pruned

    def test_empty_candidates_prune_nothing(self):
        candidates = PruningCandidates(level=3, prefix_length=4, infrequent=(), frequent=())
        assert (
            consensus_prune(candidates, {}, {}, k=4, epsilon=2.0, gamma=0.5) == set()
        )

    def test_pruning_set_is_subset_of_candidates(self):
        candidates = self._candidates()
        pruned = consensus_prune(
            candidates,
            {p: 0.0 for p in candidates.infrequent},
            {p: 0.0 for p, _ in candidates.frequent},
            k=4,
            epsilon=0.5,
            gamma=0.0,
        )
        universe = set(candidates.infrequent) | {p for p, _ in candidates.frequent}
        assert pruned <= universe
