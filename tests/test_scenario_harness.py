"""The robustness harness: snapshot scoring, backend determinism, stores.

The backbone invariant mirrors ``test_service_equivalence.py``: execution
backends are a pure knob, so a scenario run with the same seed produces a
bit-identical snapshot-record sequence on the serial and thread backends
— and, store included, byte-identical persisted files.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.store import ScenarioSnapshotStore, StoreError
from repro.metrics.robustness import detection_latency, score_series
from repro.scenarios import (
    BaseWorkload,
    DriftSchedule,
    PoisonedReports,
    Scenario,
    ScenarioSpec,
    run_scenario,
    run_scenario_spec,
)


def _scenario(**overrides) -> Scenario:
    kwargs = dict(
        base=BaseWorkload(
            kind="zipf", n_items=64, n_bits=8, exponent=2.5, shift=4.0, seed=5
        ),
        effects=[DriftSchedule(mode="abrupt", start=5)],
        n_steps=8,
        batch_size=500,
        k=3,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def _run(scenario=None, **overrides):
    kwargs = dict(
        epsilon=6.0, oracle="krr", granularity=3,
        window_batches=2, stride=2, seed=0,
    )
    kwargs.update(overrides)
    return run_scenario(scenario or _scenario(), **kwargs)


class TestRunScenario:
    def test_records_align_with_tracker_cadence(self):
        report = _run()
        assert [r["step"] for r in report.records] == [2, 4, 6, 8]
        for record in report.records:
            assert 0.0 <= record["f1"] <= 1.0
            assert record["upload_bits"] > 0 and record["broadcast_bits"] > 0
            assert record["window_users"] == 1000
            assert len(record["true_top_k"]) == 3

    def test_truth_moves_with_the_scenario(self):
        report = _run()
        assert report.records[0]["true_top_k"] != report.records[-1]["true_top_k"]
        assert report.records[0]["since_drift"] is None
        assert report.records[-1]["since_drift"] == 3

    def test_drift_events_carry_latency(self):
        report = _run()
        assert [e["event_step"] for e in report.events] == [5]
        event = report.events[0]
        if event["latency_steps"] is not None:
            assert event["detected_step"] == 5 + event["latency_steps"]

    def test_poison_counts_surface_in_records(self):
        report = _run(_scenario(effects=[PoisonedReports(fraction=0.1)]))
        assert all(r["n_poisoned"] == 50 for r in report.records)

    def test_report_round_trips_to_json(self):
        report = _run()
        parsed = json.loads(json.dumps(report.to_dict()))
        assert parsed["records"] == report.records
        assert parsed["events"] == report.events

    def test_render_mentions_drift(self):
        text = _run().render()
        assert "drift @ step 5" in text and "precision" in text

    def test_explicit_config_must_match_the_domain(self):
        from repro.core.config import MechanismConfig

        config = MechanismConfig(
            k=3, epsilon=6.0, n_bits=12, granularity=3, simulation_mode="per_user"
        )
        with pytest.raises(ValueError, match="n_bits"):
            _run(config=config)

    def test_oversized_window_is_rejected_not_silent(self):
        # An explicit override past the stream length must fail loudly
        # instead of producing a zero-snapshot run (the spec-level check
        # does not see CLI/API overrides).
        with pytest.raises(ValueError, match="never fill"):
            _run(window_batches=20)


class TestBackendDeterminism:
    """Same seed ⇒ bit-identical snapshot records on every backend."""

    def test_thread_backend_matches_serial(self):
        serial = _run(seed=42)
        threaded = _run(seed=42, backend="thread", max_workers=2)
        assert threaded.records == serial.records
        assert threaded.events == serial.events

    def test_thread_backend_matches_serial_under_olh(self):
        # OLH is the oracle whose decode actually fans out on the engine.
        scenario = _scenario(n_steps=4)
        serial = _run(scenario, oracle="olh", seed=11)
        threaded = _run(scenario, oracle="olh", seed=11, backend="thread", max_workers=2)
        assert threaded.records == serial.records

    def test_same_seed_same_records(self):
        assert _run(seed=7).records == _run(seed=7).records

    def test_different_seeds_differ(self):
        assert _run(seed=0).records != _run(seed=1).records


class TestSnapshotStore:
    def test_append_and_load(self, tmp_path):
        path = tmp_path / "snapshots.jsonl"
        with ScenarioSnapshotStore(path, fingerprint="abcd") as store:
            report = _run(store=store)
            assert store.records() == report.records
        assert ScenarioSnapshotStore.load(path) == report.records

    def test_refuses_existing_store_without_overwrite(self, tmp_path):
        path = tmp_path / "snapshots.jsonl"
        ScenarioSnapshotStore(path).close()
        with pytest.raises(StoreError, match="exists"):
            ScenarioSnapshotStore(path)
        ScenarioSnapshotStore(path, overwrite=True).close()

    def test_same_seed_runs_write_identical_bytes(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            with ScenarioSnapshotStore(path, fingerprint="f" * 16) as store:
                _run(store=store, seed=3)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_load_drops_a_partial_trailing_line(self, tmp_path):
        path = tmp_path / "snapshots.jsonl"
        with ScenarioSnapshotStore(path) as store:
            store.append({"step": 2, "f1": 1.0})
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"record": {"step": 4, "f1"')
        assert ScenarioSnapshotStore.load(path) == [{"step": 2, "f1": 1.0}]

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not-a-store.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(StoreError, match="snapshot store"):
            ScenarioSnapshotStore.load(path)


class TestRunScenarioSpec:
    def test_spec_cadence_is_the_default(self):
        spec = ScenarioSpec.from_dict(
            {
                "base": {"kind": "zipf", "n_items": 64, "n_bits": 8,
                         "exponent": 2.5, "shift": 4.0, "seed": 5},
                "n_steps": 8, "batch_size": 500, "k": 3,
                "window_batches": 2, "stride": 2,
                "effects": [{"kind": "drift", "mode": "abrupt", "start": 5}],
                "name": "unit-lab",
            }
        )
        report = run_scenario_spec(spec, epsilon=6.0, granularity=3, seed=0)
        assert report.scenario == "unit-lab"
        assert report.records == _run(seed=0).records

    def test_overrides_win_over_the_spec(self):
        spec = ScenarioSpec.from_dict(
            {"base": {"n_items": 64, "n_bits": 8, "exponent": 2.5, "shift": 4.0,
                      "seed": 5},
             "n_steps": 8, "batch_size": 500, "k": 3, "window_batches": 4}
        )
        report = run_scenario_spec(
            spec, epsilon=6.0, granularity=3, window_batches=2, stride=4, seed=0
        )
        assert [r["step"] for r in report.records] == [2, 6]


class TestRobustnessMetrics:
    def test_detection_latency(self):
        scored = [(2, 0.2), (4, 0.4), (6, 0.8), (8, 1.0)]
        assert detection_latency(5, scored) == 1
        assert detection_latency(5, scored, threshold=0.9) == 3
        assert detection_latency(5, scored, threshold=1.1) is None
        # Snapshots before the event never count as detection.
        assert detection_latency(7, [(6, 1.0), (8, 1.0)]) == 1

    def test_score_series(self):
        records = score_series(
            [(1, [1, 2]), (2, [3, 4])], {1: [1, 2], 2: [1, 2]}
        )
        assert records[0] == {"step": 1, "precision": 1.0, "recall": 1.0, "f1": 1.0}
        assert records[1]["f1"] == 0.0
        with pytest.raises(KeyError):
            score_series([(3, [1])], {1: [1]})
