"""Cross-backend determinism: every backend reproduces the serial results.

The engine's contract is that backends are a pure execution knob.  These
tests pin it down end to end: mechanism runs (heavy hitters, per-party
reports, communication and privacy accounting) and whole sweep grids must
be identical across serial, thread and process execution for a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.baselines.fedpem import FedPEMMechanism
from repro.baselines.gtf import GTFMechanism
from repro.baselines.pem import SinglePartyPEM
from repro.core.config import MechanismConfig
from repro.core.tap import TAPMechanism
from repro.core.taps import TAPSMechanism
from repro.datasets.registry import load_dataset
from repro.experiments.runner import (
    ExperimentSettings,
    cell_seed,
    iter_cells,
    mechanism_seed_offset,
    run_sweep,
)

PARALLEL_BACKENDS = ("thread", "process")
MECHANISMS = {
    "tap": TAPMechanism,
    "taps": TAPSMechanism,
    "fedpem": FedPEMMechanism,
    "gtf": GTFMechanism,
}


def _fingerprint(result):
    """Everything observable about a run except wall-clock time."""
    return {
        "heavy_hitters": result.heavy_hitters,
        "estimated_counts": result.estimated_counts,
        "party_heavy_hitters": {
            name: record.local_heavy_hitters
            for name, record in sorted(result.party_records.items())
        },
        "selected_per_level": {
            name: [level.selected_prefixes for level in record.levels]
            for name, record in sorted(result.party_records.items())
        },
        "upload_bits": result.transcript.upload_bits(),
        "broadcast_bits": result.transcript.broadcast_bits(),
        "n_reports": result.accountant.n_reports(),
        "max_spent": result.accountant.max_spent(),
    }


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("rdb", scale="tiny", seed=3)


@pytest.fixture(scope="module")
def config(dataset) -> MechanismConfig:
    return MechanismConfig(k=6, epsilon=4.0, n_bits=dataset.n_bits, granularity=6)


@pytest.fixture(scope="module")
def serial_fingerprints(dataset, config):
    return {
        name: _fingerprint(cls(config).run(dataset, rng=77))
        for name, cls in MECHANISMS.items()
    }


class TestMechanismsAcrossBackends:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("mechanism", sorted(MECHANISMS))
    def test_identical_to_serial(
        self, mechanism, backend, dataset, config, serial_fingerprints
    ):
        cls = MECHANISMS[mechanism]
        parallel_config = config.with_updates(backend=backend, max_workers=2)
        result = cls(parallel_config).run(dataset, rng=77)
        assert _fingerprint(result) == serial_fingerprints[mechanism]

    def test_serial_rerun_is_deterministic(
        self, dataset, config, serial_fingerprints
    ):
        result = TAPMechanism(config).run(dataset, rng=77)
        assert _fingerprint(result) == serial_fingerprints["tap"]

    def test_accounting_survives_parallel_execution(self, dataset, config):
        result = TAPMechanism(config.with_updates(backend="process")).run(
            dataset, rng=3
        )
        assert result.accountant.satisfies_ldp()
        assert result.accountant.n_reports() <= dataset.total_users


class TestPEMAcrossBackends:
    def test_run_many_identical_across_backends(self, dataset):
        pem = SinglePartyPEM(k=5, n_bits=dataset.n_bits, granularity=6)
        reference = None
        for backend in ("serial",) + PARALLEL_BACKENDS:
            results = pem.run_many(
                dataset.parties, rng=11, backend=backend, max_workers=2
            )
            snapshot = [(r.party, r.heavy_hitters, r.estimated_counts) for r in results]
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference, backend


class TestSweepAcrossBackends:
    @pytest.fixture(scope="class")
    def smoke(self) -> ExperimentSettings:
        return ExperimentSettings().smoke()

    @staticmethod
    def _strip(records):
        return [
            {key: value for key, value in rec.items() if key != "runtime_seconds"}
            for rec in records
        ]

    @pytest.fixture(scope="class")
    def serial_records(self, smoke):
        return self._strip(
            run_sweep(smoke, mechanisms=("fedpem", "taps")).records
        )

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_sweep_records_identical(self, smoke, serial_records, backend):
        records = run_sweep(
            smoke, mechanisms=("fedpem", "taps"), backend=backend, max_workers=2
        ).records
        assert self._strip(records) == serial_records

    def test_settings_backend_knob_is_honoured(self, smoke, serial_records):
        parallel = smoke.with_updates(backend="thread", max_workers=2)
        records = run_sweep(parallel, mechanisms=("fedpem", "taps")).records
        assert self._strip(records) == serial_records


class TestBackendValidation:
    def test_config_rejects_unknown_backend_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'"):
            MechanismConfig(backend="gpu")

    def test_settings_reject_unknown_backends_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentSettings(backend="bogus")
        with pytest.raises(ValueError, match="unknown party_backend"):
            ExperimentSettings(party_backend="bogus")


class TestStableSweepSeeding:
    def test_offset_is_stable_digest(self):
        # zlib.crc32 is standardised: these values never change across
        # processes, platforms or PYTHONHASHSEED settings.
        assert mechanism_seed_offset("taps") == mechanism_seed_offset("TAPS")
        assert 0 <= mechanism_seed_offset("taps") < 1000
        assert mechanism_seed_offset("taps") != mechanism_seed_offset("tap")

    def test_cell_seed_is_pure(self):
        assert cell_seed(2025, "taps", 2) == 2025 + 7919 * 2 + mechanism_seed_offset(
            "taps"
        )

    def test_cells_carry_seeds_up_front(self):
        settings = ExperimentSettings().smoke()
        cells = list(iter_cells(settings, mechanisms=("fedpem", "taps")))
        assert [cell.seed for cell in cells] == [
            cell_seed(settings.seed, cell.mechanism, cell.repetition) for cell in cells
        ]
        assert all(cell.config.k == cell.k for cell in cells)
