"""Gateway behaviour over real sockets: rounds, errors, admission control."""

from __future__ import annotations

import socket
import struct

import numpy as np
import pytest

from repro.ldp.registry import make_oracle
from repro.net import framing
from repro.net.client import GatewayConnection, RemoteAggregationServer
from repro.net.framing import OversizeFrameError
from repro.net.gateway import start_gateway
from repro.service.clients import iter_perturbed_batches
from repro.service.protocol import (
    RoundBroadcast,
    encode_broadcast,
    encode_report_batch,
    wire_bits,
)
from repro.service.server import AggregationServer, ServiceError
from repro.trie.candidate_domain import CandidateDomain


@pytest.fixture(scope="module")
def gateway():
    with start_gateway(decode_backend="thread", decode_workers=2) as handle:
        yield handle


def _broadcast(domain, *, party="alpha", level=3, oracle="krr", epsilon=4.0):
    return RoundBroadcast(
        party=party,
        level=level,
        oracle_name=oracle,
        epsilon=epsilon,
        domain_size=domain.size,
        prefixes=tuple(domain.prefixes),
    )


def _stream_round(connection, domain, *, seed=5, n=300, oracle_name="krr"):
    """Open a round, stream three batches, finalize; returns the estimate."""
    oracle = make_oracle(oracle_name, 4.0)
    round_id, bits = connection.open_round(
        _broadcast(domain, oracle=oracle_name)
    )
    values = np.random.default_rng(seed).integers(0, domain.size, size=n)
    for batch in iter_perturbed_batches(
        oracle, values, domain.size, seed, batch_size=100, party="alpha", level=3
    ):
        connection.send_batch(round_id, encode_report_batch(batch))
    return round_id, bits, connection.finalize(round_id)


class TestRoundsOverTheWire:
    def test_welcome_announces_the_contract(self, gateway):
        with GatewayConnection(gateway.address) as connection:
            assert connection.credits >= 1
            assert connection.max_frame_bytes > 0
            assert connection.protocol >= 1

    def test_round_matches_local_server_bit_for_bit(self, gateway):
        domain = CandidateDomain.full_domain(3)
        with GatewayConnection(gateway.address) as connection:
            _, remote_bits, remote = _stream_round(connection, domain, seed=5)

        local_server = AggregationServer()
        oracle = make_oracle("krr", 4.0)
        round_id = local_server.open_round(
            party="alpha", level=3, oracle=oracle, domain=domain
        )
        values = np.random.default_rng(5).integers(0, domain.size, size=300)
        for batch in iter_perturbed_batches(
            oracle, values, domain.size, 5, batch_size=100, party="alpha", level=3
        ):
            local_server.ingest_batch(round_id, batch)
        local = local_server.finalize_round(round_id)

        np.testing.assert_array_equal(remote.support_counts, local.support_counts)
        assert remote.estimated_counts.tobytes() == local.estimated_counts.tobytes()
        assert remote.metadata == local.metadata
        assert remote_bits == local_server.broadcast_bits()

    def test_batch_latencies_are_recorded(self, gateway):
        domain = CandidateDomain.full_domain(3)
        with GatewayConnection(gateway.address) as connection:
            _stream_round(connection, domain)
            assert len(connection.latencies) == 3
            assert all(lat > 0 for lat in connection.latencies)

    def test_olh_round_decodes_on_the_gateway_engine(self, gateway):
        domain = CandidateDomain.full_domain(4)
        with GatewayConnection(gateway.address) as connection:
            _, _, remote = _stream_round(connection, domain, oracle_name="olh")
        assert remote.oracle_name == "olh"
        assert remote.n_users == 300

    def test_stats_expose_accounting(self, gateway):
        with GatewayConnection(gateway.address) as connection:
            stats = connection.stats()
        assert stats["upload_bits"] > 0
        assert stats["broadcast_bits"] > 0
        assert stats["rounds_opened"] >= 1
        assert stats["credits_per_connection"] == connection.credits


class TestStructuredErrors:
    def test_unknown_round_code_crosses_the_wire(self, gateway):
        with GatewayConnection(gateway.address) as connection:
            connection._send(
                framing.FRAME_ROUND_CONTROL,
                framing.encode_control({"op": "finalize", "round_id": 999_999}),
            )
            with pytest.raises(ServiceError) as excinfo:
                connection._next_message()
            assert excinfo.value.code == "unknown_round"
            # Service-level failures leave the connection usable.
            domain = CandidateDomain.full_domain(3)
            _, _, estimate = _stream_round(connection, domain)
            assert estimate.n_users == 300

    def test_batch_for_wrong_party_maps_to_party_mismatch(self, gateway):
        domain = CandidateDomain.full_domain(3)
        oracle = make_oracle("krr", 4.0)
        with GatewayConnection(gateway.address) as connection:
            round_id, _ = connection.open_round(_broadcast(domain, party="alpha"))
            (batch,) = iter_perturbed_batches(
                oracle,
                np.zeros(4, dtype=np.int64),
                domain.size,
                0,
                batch_size=8,
                party="mallory",
                level=3,
            )
            connection.send_batch(round_id, encode_report_batch(batch))
            with pytest.raises(ServiceError) as excinfo:
                connection.drain()
            assert excinfo.value.code == "party_mismatch"
            # The rejection returned its credit: the caught error leaves a
            # consistent ledger and the connection fully usable.
            assert connection.outstanding == 0
            _, _, estimate = _stream_round(connection, domain)
            assert estimate.n_users == 300

    def test_round_closed_after_finalize(self, gateway):
        domain = CandidateDomain.full_domain(3)
        with GatewayConnection(gateway.address) as connection:
            round_id, _, _ = _stream_round(connection, domain)
            connection._send(
                framing.FRAME_ROUND_CONTROL,
                framing.encode_control({"op": "finalize", "round_id": round_id}),
            )
            with pytest.raises(ServiceError) as excinfo:
                connection._next_message()
            assert excinfo.value.code == "round_closed"

    def test_undecodable_batch_maps_to_wire_format(self, gateway):
        domain = CandidateDomain.full_domain(3)
        with GatewayConnection(gateway.address) as connection:
            round_id, _ = connection.open_round(_broadcast(domain))
            connection.send_batch(round_id, b"GARBAGE BYTES")
            from repro.service.protocol import WireFormatError

            with pytest.raises(WireFormatError):
                connection.drain()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("epsilon", -1.0),       # check_positive refuses
            ("epsilon", 0.0),
            ("domain_size", 0),      # make_shard refuses
            ("oracle_name", "mystery"),  # no such oracle registered
        ],
    )
    def test_value_invalid_broadcasts_answer_with_an_error_frame(
        self, gateway, field, value
    ):
        """A decodable broadcast with refused values must not kill the
        handler: the failure crosses the wire as a typed error frame and
        the gateway keeps serving."""
        from repro.service.protocol import WireFormatError

        domain = CandidateDomain.full_domain(3)
        broadcast = _broadcast(domain)
        broadcast = type(broadcast)(**{**broadcast.__dict__, field: value})
        with GatewayConnection(gateway.address) as connection:
            with pytest.raises(WireFormatError):
                connection.open_round(broadcast)
            # Same connection still serves a valid round afterwards.
            _, _, estimate = _stream_round(connection, domain)
            assert estimate.n_users == 300

    def test_unknown_control_op_is_a_frame_error(self, gateway):
        with GatewayConnection(gateway.address) as connection:
            connection._send(
                framing.FRAME_ROUND_CONTROL,
                framing.encode_control({"op": "frobnicate"}),
            )
            with pytest.raises(framing.FrameError, match="frobnicate"):
                connection._next_message()


class TestAdmissionControl:
    def test_oversize_frame_rejected_and_connection_closed(self):
        with start_gateway(max_frame_bytes=512) as handle:
            with GatewayConnection(handle.address) as connection:
                assert connection.max_frame_bytes == 512
                # The client itself refuses before sending...
                with pytest.raises(OversizeFrameError, match="batch_size"):
                    connection._send(framing.FRAME_REPORT_BATCH, b"\x00" * 1024)
                # ...and a client that pushes the bytes anyway is rejected
                # by the gateway and hung up on.
                connection._sock.sendall(
                    framing.encode_frame(framing.FRAME_REPORT_BATCH, b"\x00" * 1024)
                )
                with pytest.raises(OversizeFrameError):
                    connection._next_message()
                # The gateway hung up: the next read hits EOF.
                with pytest.raises(ConnectionError):
                    connection._read_frame()

    def test_oversize_header_never_buffers_the_body(self):
        """A huge *declared* length is refused without reading the body."""
        with start_gateway(max_frame_bytes=512) as handle:
            host, port = handle.address.rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=10) as sock:
                sock.settimeout(10)
                fp = sock.makefile("rb")
                # Read the welcome frame first.
                length, kind = framing.parse_frame_header(fp.read(5))
                fp.read(length)
                # Declare a 1 GiB control frame, send only the header.
                sock.sendall(struct.pack("<IB", 1 << 30, framing.FRAME_ROUND_CONTROL))
                length, kind = framing.parse_frame_header(fp.read(5))
                body = fp.read(length)
                assert kind == framing.FRAME_ERROR
                error = framing.decode_error(body)
                assert isinstance(error, OversizeFrameError)

    def test_upload_bound_does_not_cap_gateway_responses(self):
        """``max_frame_bytes`` bounds what clients upload; an estimate
        frame (which scales with the domain, not the batch) may exceed it
        and must still reach the client."""
        with start_gateway(max_frame_bytes=4096) as handle:
            # Level 8: the broadcast request (~2.9 kB) and every batch stay
            # under the bound, the estimate frame (~6.3 kB) exceeds it.
            domain = CandidateDomain.full_domain(8)
            with GatewayConnection(handle.address) as connection:
                _, _, estimate = _stream_round(connection, domain, n=120)
        assert estimate.domain_size == domain.size

    def test_client_respects_small_credit_budgets(self):
        with start_gateway(connection_credits=1) as handle:
            domain = CandidateDomain.full_domain(3)
            with GatewayConnection(handle.address) as connection:
                assert connection.credits == 1
                _, _, estimate = _stream_round(connection, domain, n=500)
                assert estimate.n_users == 500
                stats = connection.stats()
            assert stats["frames_rejected"] == 0

    def test_domain_size_is_bound_to_the_broadcast_prefixes(self, gateway):
        """A tiny frame cannot declare a huge domain: the O(domain_size)
        shard allocation is tied to the broadcast's actual size."""
        from repro.service.protocol import WireFormatError

        with GatewayConnection(gateway.address) as connection:
            giant = RoundBroadcast(
                party="greedy", level=1, oracle_name="krr", epsilon=4.0,
                domain_size=50_000_000, prefixes=("0",),
            )
            with pytest.raises(WireFormatError, match="domain_size"):
                connection.open_round(giant)
            # The honest relation (n prefixes, dummy optional) still opens.
            for size in (1, 2):
                honest = RoundBroadcast(
                    party="ok", level=1, oracle_name="krr", epsilon=4.0,
                    domain_size=size, prefixes=("0",),
                )
                round_id, _ = connection.open_round(honest)
                assert round_id >= 0

    def test_refused_send_leaves_no_phantom_outstanding_batch(self):
        with start_gateway(max_frame_bytes=512) as handle:
            domain = CandidateDomain.full_domain(3)
            with GatewayConnection(handle.address) as connection:
                round_id, _ = connection.open_round(_broadcast(domain))
                with pytest.raises(OversizeFrameError):
                    connection.send_batch(round_id, b"\x00" * 1024)
                assert connection.outstanding == 0
                connection.drain()  # returns immediately, nothing pending

    def test_stats_are_safe_under_concurrent_round_opens(self):
        """stats snapshots run on the accumulator thread, serialized with
        the round-opening mutations of other connections."""
        import threading

        domain = CandidateDomain.full_domain(3)
        with start_gateway() as handle:
            errors: list[BaseException] = []

            def open_rounds():
                try:
                    with GatewayConnection(handle.address) as connection:
                        for _ in range(40):
                            connection.open_round(_broadcast(domain))
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            def poll_stats():
                try:
                    with GatewayConnection(handle.address) as connection:
                        for _ in range(40):
                            connection.stats()
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            threads = [
                threading.Thread(target=open_rounds),
                threading.Thread(target=open_rounds),
                threading.Thread(target=poll_stats),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            with GatewayConnection(handle.address) as connection:
                assert connection.stats()["rounds_opened"] == 80

    def test_remote_shutdown_can_be_disabled(self):
        with start_gateway(allow_shutdown=False) as handle:
            with GatewayConnection(handle.address) as connection:
                with pytest.raises(ServiceError) as excinfo:
                    connection.shutdown_gateway()
                assert excinfo.value.code == "admission_rejected"

    def test_remote_shutdown_stops_the_gateway(self):
        handle = start_gateway()
        with GatewayConnection(handle.address) as connection:
            connection.shutdown_gateway()
        handle._thread.join(timeout=10)
        assert not handle._thread.is_alive()
        handle.close()  # idempotent after self-stop


class TestRemoteAggregationServer:
    def test_mirrors_local_accounting_exactly(self, gateway):
        domain = CandidateDomain.full_domain(3)
        oracle = make_oracle("krr", 4.0)
        values = np.random.default_rng(9).integers(0, domain.size, size=200)

        def drive(server):
            round_id = server.open_round(
                party="alpha", level=3, oracle=oracle, domain=domain
            )
            for batch in iter_perturbed_batches(
                oracle, values, domain.size, 9, batch_size=64, party="alpha", level=3
            ):
                server.ingest_batch(round_id, batch)
            estimate = server.finalize_round(round_id)
            return estimate, server.drain_messages()

        remote_server = RemoteAggregationServer(gateway.address)
        remote_est, remote_msgs = drive(remote_server)
        remote_server.shutdown()
        local_server = AggregationServer()
        local_est, local_msgs = drive(local_server)

        assert remote_est.estimated_counts.tobytes() == local_est.estimated_counts.tobytes()
        assert remote_est.metadata == local_est.metadata
        assert [
            (m.direction, m.party, m.kind, m.payload_bits, m.level)
            for m in remote_msgs
        ] == [
            (m.direction, m.party, m.kind, m.payload_bits, m.level)
            for m in local_msgs
        ]
        assert remote_server.upload_bits() == local_server.upload_bits()
        assert remote_server.broadcast_bits() == local_server.broadcast_bits()

    def test_raw_payload_ingest_matches_server(self, gateway):
        domain = CandidateDomain.full_domain(3)
        oracle = make_oracle("krr", 4.0)
        server = RemoteAggregationServer(gateway.address)
        round_id = server.open_round(
            party="alpha", level=3, oracle=oracle, domain=domain
        )
        (batch,) = iter_perturbed_batches(
            oracle, np.zeros(10, dtype=np.int64), domain.size, 1,
            batch_size=16, party="alpha", level=3,
        )
        payload = encode_report_batch(batch)
        assert server.ingest(round_id, payload) == 10
        assert server.upload_bits() == wire_bits(payload)
        estimate = server.finalize_round(round_id)
        assert estimate.n_users == 10
        server.shutdown()

    def test_pickles_without_its_socket(self, gateway):
        import pickle

        server = RemoteAggregationServer(gateway.address)
        domain = CandidateDomain.full_domain(2)
        oracle = make_oracle("krr", 4.0)
        server.open_round(party="p", level=2, oracle=oracle, domain=domain)
        clone = pickle.loads(pickle.dumps(server))
        assert clone.address == server.address
        assert clone.broadcast_bits() == server.broadcast_bits()
        assert clone._connection is None
        server.shutdown()

    def test_broadcast_bits_cross_check(self, gateway):
        """The gateway's accounting of the open equals the canonical bytes."""
        domain = CandidateDomain.full_domain(4)
        broadcast = _broadcast(domain, party="check")
        with GatewayConnection(gateway.address) as connection:
            _, bits = connection.open_round(broadcast)
        assert bits == wire_bits(encode_broadcast(broadcast))
