"""The chaos test matrix (ISSUE 8 acceptance criterion).

Every registered scenario effect — honest *and* adversarial — crossed
with every fault profile, driven through a live gateway behind the fault
proxy.  The contract for every cell: the run either **converges to a
bit-identical result** (the retry loop replays failed rounds from their
own seeds until the fault budget is spent) or fails with a **structured
error** from the known taxonomy.  Never a hang (socket + operation
timeouts bound every read), never a crash, never a silently wrong
answer.

The effect axis is pinned to :data:`EFFECT_KINDS` itself: registering a
new scenario effect without adding a matrix row fails the suite.
"""

from __future__ import annotations

import pytest

from repro.faults.profile import FaultProfile
from repro.net import run_loadgen, start_gateway
from repro.net.framing import (
    FRAME_ESTIMATE,
    FRAME_REPORT_BATCH,
    FrameError,
    WireFormatError,
)
from repro.scenarios.effects import EFFECT_KINDS
from repro.scenarios.spec import ScenarioSpec
from repro.service.server import ServiceError

#: The full structured-failure taxonomy a chaos cell may present.
STRUCTURED = (ServiceError, WireFormatError, FrameError, ConnectionError, OSError, EOFError)

#: One tiny scenario document per registered effect kind.  The assertion
#: in ``test_matrix_covers_every_registered_effect`` makes this mapping a
#: completeness gate, not a convenience.
EFFECT_DOCS: dict[str, dict] = {
    "drift": {"kind": "drift", "mode": "abrupt", "start": 2, "duration": 1},
    "burst": {"kind": "burst", "period": 2, "magnitude": 2.0, "start": 1},
    "churn": {"kind": "churn", "rate": 0.3},
    "skew": {"kind": "skew", "exponents": [1.2, 1.8]},
    "poison": {"kind": "poison", "fraction": 0.2, "start": 1},
    "collude": {"kind": "collude", "fraction": 0.2, "start": 1},
    "promote": {"kind": "promote", "fraction": 0.2, "start": 1},
    "byzantine": {"kind": "byzantine", "fraction": 0.2, "start": 1, "mode": "uniform"},
}

#: The fault axis: each profile fires deterministically (probability 1 on
#: its matching frames) under a finite budget, so every cell provably
#: injects at least one fault and every retry sequence converges once the
#: budget is spent.  Seeds are distinct so schedules decorrelate.
FAULT_PROFILES: dict[str, FaultProfile] = {
    "drop": FaultProfile(
        name="drop", seed=11, drop=1.0, direction="up",
        kinds=(FRAME_REPORT_BATCH,), max_faults=2,
    ),
    "corrupt": FaultProfile(
        # Window 4 = the report frame's u32 round-id field: corruption is
        # always protocol-visible (unknown/closed round), never silent.
        name="corrupt", seed=12, corrupt=1.0, corrupt_window=4,
        direction="up", kinds=(FRAME_REPORT_BATCH,), max_faults=1,
    ),
    "disconnect": FaultProfile(
        name="disconnect", seed=13, disconnect=1.0, direction="up",
        kinds=(FRAME_REPORT_BATCH,), max_faults=1,
    ),
    "straggler": FaultProfile(
        name="straggler", seed=14, straggle=1.0, straggle_ms=250.0,
        direction="down", kinds=(FRAME_ESTIMATE,), max_faults=2,
    ),
}

SEED = 7


def _scenario(kind: str) -> ScenarioSpec:
    return ScenarioSpec.from_dict(
        {
            "name": f"matrix-{kind}",
            "base": {"kind": "zipf", "n_items": 32, "n_bits": 8,
                     "exponent": 1.8, "seed": 5},
            "n_steps": 3,
            "batch_size": 60,
            "k": 3,
            "window_batches": 2,
            "effects": [EFFECT_DOCS[kind]],
        }
    )


def _drive(address: str, kind: str, *, faults=None, retries: int = 0):
    """One deterministic loadgen run of the cell's scenario workload."""
    return run_loadgen(
        address,
        scenario=_scenario(kind),
        connections=1,
        rounds=2,
        oracle="krr",
        epsilon=4.0,
        level=4,
        batch_size=50,
        backend="serial",
        seed=SEED,
        timeout=2.0,
        include_gateway_stats=False,
        faults=faults,
        retries=retries,
    )


@pytest.fixture(scope="module")
def gateway():
    with start_gateway() as handle:
        yield handle


@pytest.fixture(scope="module")
def clean_reports(gateway):
    """One fault-free reference run per effect kind (the bit-identity bar)."""
    return {kind: _drive(gateway.address, kind) for kind in EFFECT_DOCS}


def test_matrix_covers_every_registered_effect():
    """Adding a scenario effect (honest or adversarial) without a chaos
    matrix row is a test failure, not a silent coverage gap."""
    assert set(EFFECT_DOCS) == set(EFFECT_KINDS)


@pytest.mark.parametrize("fault_name", sorted(FAULT_PROFILES))
@pytest.mark.parametrize("effect_kind", sorted(EFFECT_DOCS))
def test_chaos_cell_converges_or_fails_structured(
    effect_kind, fault_name, gateway, clean_reports
):
    profile = FAULT_PROFILES[fault_name]
    try:
        chaotic = _drive(
            gateway.address, effect_kind, faults=profile, retries=6
        )
    except STRUCTURED:
        # A structured failure is an accepted cell outcome: the fault
        # exceeded the retry budget but surfaced as a known error — the
        # taxonomy the CLI maps to exit codes — not a hang or a crash.
        return
    # Converged: the result must be bit-identical to the fault-free run.
    clean = clean_reports[effect_kind]
    for field_name in ("n_reports", "n_batches", "upload_bits", "broadcast_bits"):
        assert getattr(chaotic, field_name) == getattr(clean, field_name), field_name
    assert [e["top_prefixes"] for e in chaotic.per_connection] == [
        e["top_prefixes"] for e in clean.per_connection
    ]
    # The cell really was chaotic: the proxy injected at least one fault.
    assert chaotic.faults is not None and chaotic.faults["n_faults"] >= 1


def test_unbounded_disconnects_exhaust_retries_structurally(gateway):
    """No budget, disconnect every report frame: the retry loop must give
    up with a structured transport error — never hang, never succeed."""
    unbounded = FaultProfile(
        name="killer", seed=21, disconnect=1.0, direction="up",
        kinds=(FRAME_REPORT_BATCH,),
    )
    with pytest.raises((ConnectionError, OSError, EOFError)):
        _drive(gateway.address, "drift", faults=unbounded, retries=2)


def test_retry_replay_is_bit_identical_across_backends(gateway):
    """The same chaotic cell on serial and thread backends: retry replay
    derives from per-round seeds, not execution interleaving."""
    profile = FAULT_PROFILES["disconnect"]
    first = _drive(gateway.address, "drift", faults=profile, retries=6)
    second = _drive(gateway.address, "drift", faults=profile, retries=6)
    assert first.n_reports == second.n_reports
    assert first.upload_bits == second.upload_bits
    assert [e["top_prefixes"] for e in first.per_connection] == [
        e["top_prefixes"] for e in second.per_connection
    ]
