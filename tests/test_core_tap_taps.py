"""End-to-end tests for the TAP and TAPS mechanisms."""

import numpy as np
import pytest

from repro.core.config import MechanismConfig
from repro.core.tap import TAPMechanism
from repro.core.taps import TAPSMechanism
from repro.metrics.scores import f1_score


@pytest.mark.parametrize("mechanism_cls", [TAPMechanism, TAPSMechanism])
class TestMechanismContract:
    def test_returns_k_heavy_hitters(self, two_party_dataset, tiny_config, mechanism_cls):
        result = mechanism_cls(tiny_config).run(two_party_dataset, rng=0)
        assert len(result.heavy_hitters) == tiny_config.k
        assert len(set(result.heavy_hitters)) == tiny_config.k

    def test_heavy_hitters_within_domain(self, two_party_dataset, tiny_config, mechanism_cls):
        result = mechanism_cls(tiny_config).run(two_party_dataset, rng=1)
        limit = 1 << two_party_dataset.n_bits
        assert all(0 <= item < limit for item in result.heavy_hitters)

    def test_satisfies_ldp_accounting(self, two_party_dataset, tiny_config, mechanism_cls):
        result = mechanism_cls(tiny_config).run(two_party_dataset, rng=2)
        assert result.accountant.satisfies_ldp()
        # Every user reports at most once; the number of reports can never
        # exceed the population (validation users included).
        assert result.accountant.n_reports() <= two_party_dataset.total_users

    def test_dominant_items_found_at_high_epsilon(
        self, two_party_dataset, tiny_config, mechanism_cls
    ):
        config = tiny_config.with_updates(epsilon=8.0)
        hits = 0
        for seed in range(3):
            result = mechanism_cls(config).run(two_party_dataset, rng=seed)
            hits += int(5 in result.heavy_hitters) + int(9 in result.heavy_hitters)
        assert hits >= 4, "items 5 and 9 dominate and should almost always be found"

    def test_per_party_records_cover_all_levels(
        self, two_party_dataset, tiny_config, mechanism_cls
    ):
        result = mechanism_cls(tiny_config).run(two_party_dataset, rng=3)
        for record in result.party_records.values():
            levels = [lev.level for lev in record.levels]
            assert levels == list(range(1, tiny_config.granularity + 1))
            assert record.local_heavy_hitters

    def test_transcript_has_uploads(self, two_party_dataset, tiny_config, mechanism_cls):
        result = mechanism_cls(tiny_config).run(two_party_dataset, rng=4)
        assert result.upload_bits() > 0
        assert result.communication_bits() >= result.upload_bits()

    def test_deterministic_given_seed(self, two_party_dataset, tiny_config, mechanism_cls):
        a = mechanism_cls(tiny_config).run(two_party_dataset, rng=42)
        b = mechanism_cls(tiny_config).run(two_party_dataset, rng=42)
        assert a.heavy_hitters == b.heavy_hitters

    def test_runtime_recorded(self, two_party_dataset, tiny_config, mechanism_cls):
        result = mechanism_cls(tiny_config).run(two_party_dataset, rng=5)
        assert result.runtime_seconds > 0

    def test_config_adapts_to_dataset_bits(self, two_party_dataset, mechanism_cls):
        config = MechanismConfig(k=3, epsilon=4.0, n_bits=32, granularity=16)
        result = mechanism_cls(config).run(two_party_dataset, rng=6)
        assert result.config.n_bits == two_party_dataset.n_bits


class TestTAPSpecific:
    def test_kwarg_construction(self):
        mech = TAPMechanism(k=7, epsilon=2.0, n_bits=12, granularity=6)
        assert mech.config.k == 7
        assert mech.name == "tap"

    def test_shared_trie_disabled_still_runs(self, two_party_dataset, tiny_config):
        config = tiny_config.with_updates(use_shared_trie=False)
        result = TAPMechanism(config).run(two_party_dataset, rng=0)
        assert len(result.heavy_hitters) == config.k


class TestTAPSSpecific:
    def test_pruning_messages_logged_for_multi_party(self, two_party_dataset, tiny_config):
        config = tiny_config.with_updates(min_validation_users=1)
        result = TAPSMechanism(config).run(two_party_dataset, rng=0)
        kinds = {m.kind for m in result.transcript.messages}
        assert "pruning_candidates" in kinds

    def test_pruned_levels_recorded(self, two_party_dataset, tiny_config):
        config = tiny_config.with_updates(min_validation_users=1)
        result = TAPSMechanism(config).run(two_party_dataset, rng=1)
        # The second party (smaller population) may prune at pruning levels;
        # pruned prefixes, when present, must have been candidate prefixes.
        for record in result.party_records.values():
            for level in record.levels:
                for pruned in level.pruned_prefixes:
                    assert len(pruned) == level.prefix_length

    def test_pruning_window(self):
        assert TAPSMechanism._is_pruning_level(3, g=8, g_s=2)
        assert TAPSMechanism._is_pruning_level(4, g=8, g_s=2)
        assert not TAPSMechanism._is_pruning_level(5, g=8, g_s=2)
        assert TAPSMechanism._is_pruning_level(6, g=8, g_s=2)
        assert TAPSMechanism._is_pruning_level(8, g=8, g_s=2)

    def test_single_party_dataset_runs_without_pruning(self, skewed_party):
        from repro.datasets.base import FederatedDataset

        dataset = FederatedDataset("solo", [skewed_party], n_bits=6)
        config = MechanismConfig(k=3, epsilon=4.0, n_bits=6, granularity=3)
        result = TAPSMechanism(config).run(dataset, rng=0)
        assert len(result.heavy_hitters) == 3
        kinds = {m.kind for m in result.transcript.messages}
        assert "pruning_candidates" not in kinds

    def test_high_min_validation_users_disables_pruning(
        self, two_party_dataset, tiny_config
    ):
        config = tiny_config.with_updates(min_validation_users=10_000)
        result = TAPSMechanism(config).run(two_party_dataset, rng=2)
        for record in result.party_records.values():
            assert all(not level.pruned_prefixes for level in record.levels)
