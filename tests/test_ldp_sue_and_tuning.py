"""Tests for the SUE extension oracle and the parameter-selection helpers."""

import numpy as np
import pytest

from repro.core.tuning import (
    GranularityRecommendation,
    recommend_granularity,
    recommend_oracle,
)
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.ldp.registry import available_oracles, make_oracle
from repro.ldp.sue import SymmetricUnaryEncoding


class TestSymmetricUnaryEncoding:
    def test_registered(self):
        assert "sue" in available_oracles()
        assert isinstance(make_oracle("sue", 1.0), SymmetricUnaryEncoding)

    def test_probabilities_symmetric(self):
        oracle = SymmetricUnaryEncoding(epsilon=2.0)
        p, q = oracle.support_probabilities(64)
        assert p + q == pytest.approx(1.0)
        assert p == pytest.approx(np.exp(1.0) / (np.exp(1.0) + 1.0))

    def test_ldp_ratio_bounded(self):
        eps = 3.0
        p, q = SymmetricUnaryEncoding(eps).support_probabilities(10)
        # Both bit positions flip symmetrically; the squared ratio is the
        # privacy cost, bounded by e^eps.
        assert (p / q) ** 2 <= np.exp(eps) * (1 + 1e-9)

    def test_estimation_nearly_unbiased(self):
        oracle = SymmetricUnaryEncoding(epsilon=3.0)
        rng = np.random.default_rng(0)
        true_freqs = np.array([0.5, 0.3, 0.2])
        values = rng.choice(3, size=15_000, p=true_freqs)
        result = oracle.run(values, 3, rng=1, mode="per_user")
        np.testing.assert_allclose(result.estimated_frequencies, true_freqs, atol=0.04)

    def test_variance_worse_than_oue(self):
        eps, n, d = 2.0, 1000, 50
        assert SymmetricUnaryEncoding(eps).variance(n, d) > OptimizedUnaryEncoding(
            eps
        ).variance(n, d)

    def test_report_bits(self):
        assert SymmetricUnaryEncoding(1.0).report_bits(77) == 77

    def test_bad_report_shape(self):
        with pytest.raises(ValueError):
            SymmetricUnaryEncoding(1.0).support_counts(np.zeros((2, 3), dtype=bool), 4)


class TestRecommendOracle:
    def test_small_domain_prefers_krr(self):
        assert recommend_oracle(epsilon=4.0, domain_size=20) == "krr"

    def test_large_domain_prefers_oue(self):
        assert recommend_oracle(epsilon=1.0, domain_size=1000) == "oue"

    def test_communication_bound_switches_to_olh(self):
        assert (
            recommend_oracle(
                epsilon=1.0, domain_size=100_000, communication_bound_bits=1024
            )
            == "olh"
        )

    def test_threshold_matches_wang_et_al(self):
        eps = 2.0
        threshold = 3 * np.exp(eps) + 2
        assert recommend_oracle(eps, int(threshold) - 1) == "krr"
        assert recommend_oracle(eps, int(threshold) + 2) == "oue"

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            recommend_oracle(0.0, 10)
        with pytest.raises(ValueError):
            recommend_oracle(1.0, 0)


class TestRecommendGranularity:
    def test_large_population_supports_finer_granularity(self):
        small = recommend_granularity(
            5_000, 48, epsilon=4.0, k=10, expected_top_frequency=0.02
        )
        large = recommend_granularity(
            5_000_000, 48, epsilon=4.0, k=10, expected_top_frequency=0.02
        )
        assert isinstance(small, GranularityRecommendation)
        assert large.granularity >= small.granularity

    def test_granularity_never_exceeds_bits(self):
        rec = recommend_granularity(100_000, 8, epsilon=4.0, k=10)
        assert rec.granularity <= 8

    def test_rationale_is_informative(self):
        rec = recommend_granularity(10_000, 16, epsilon=4.0, k=10)
        assert "sigma" in rec.rationale

    def test_tiny_population_falls_back_to_coarsest(self):
        rec = recommend_granularity(
            50, 48, epsilon=0.5, k=20, expected_top_frequency=0.001
        )
        assert rec.granularity == min(48, 2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            recommend_granularity(0, 16, epsilon=1.0, k=5)
        with pytest.raises(ValueError):
            recommend_granularity(100, 16, epsilon=1.0, k=0)
