"""Tests for MechanismConfig."""

import pytest

from repro.core.config import ExtensionStrategy, MechanismConfig
from repro.ldp.krr import KRandomizedResponse


class TestDefaults:
    def test_paper_heuristic_shared_level(self):
        assert MechanismConfig(granularity=24, n_bits=48).effective_shared_level == 6
        assert MechanismConfig(granularity=8, n_bits=16).effective_shared_level == 2
        assert MechanismConfig(granularity=4, n_bits=16).effective_shared_level == 1

    def test_explicit_shared_level_wins(self):
        cfg = MechanismConfig(granularity=8, n_bits=16, shared_level=3)
        assert cfg.effective_shared_level == 3

    def test_step_size(self):
        assert MechanismConfig(n_bits=48, granularity=24).step_size == 2
        assert MechanismConfig(n_bits=16, granularity=4).step_size == 4

    def test_effective_fixed_extension_defaults_to_k(self):
        assert MechanismConfig(k=7).effective_fixed_extension == 7
        assert MechanismConfig(k=7, fixed_extension=3).effective_fixed_extension == 3

    def test_make_oracle(self):
        cfg = MechanismConfig(oracle="krr", epsilon=2.5)
        oracle = cfg.make_oracle()
        assert isinstance(oracle, KRandomizedResponse)
        assert oracle.epsilon == 2.5


class TestValidation:
    def test_granularity_cannot_exceed_bits(self):
        with pytest.raises(ValueError):
            MechanismConfig(n_bits=8, granularity=9)

    def test_shared_level_bounds(self):
        with pytest.raises(ValueError):
            MechanismConfig(granularity=8, n_bits=16, shared_level=8)
        with pytest.raises(ValueError):
            MechanismConfig(granularity=8, n_bits=16, shared_level=0)

    def test_dividing_ratio_bounds(self):
        with pytest.raises(ValueError):
            MechanismConfig(dividing_ratio=0.6)

    def test_phase1_fraction_bounds(self):
        with pytest.raises(ValueError):
            MechanismConfig(phase1_user_fraction=0.0)
        with pytest.raises(ValueError):
            MechanismConfig(phase1_user_fraction=1.0)

    def test_negative_k_and_epsilon(self):
        with pytest.raises(ValueError):
            MechanismConfig(k=0)
        with pytest.raises(ValueError):
            MechanismConfig(epsilon=0)

    def test_unknown_execution_mode(self):
        with pytest.raises(ValueError, match="execution_mode"):
            MechanismConfig(execution_mode="quantum")

    def test_service_mode_requires_per_user_reports(self):
        with pytest.raises(ValueError, match="per_user"):
            MechanismConfig(execution_mode="service", simulation_mode="aggregate")
        cfg = MechanismConfig(execution_mode="service", simulation_mode="per_user")
        assert cfg.execution_mode == "service"

    def test_report_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            MechanismConfig(report_batch_size=0)

    def test_effective_report_batch_size(self):
        from repro.core.config import DEFAULT_REPORT_BATCH_SIZE

        assert MechanismConfig().effective_report_batch_size is None
        assert MechanismConfig(report_batch_size=7).effective_report_batch_size == 7
        service = MechanismConfig(
            execution_mode="service", simulation_mode="per_user"
        )
        assert service.effective_report_batch_size == DEFAULT_REPORT_BATCH_SIZE


class TestTransforms:
    def test_with_updates_is_copy(self):
        cfg = MechanismConfig(k=10)
        other = cfg.with_updates(k=20)
        assert cfg.k == 10
        assert other.k == 20
        assert other.epsilon == cfg.epsilon

    def test_for_dataset_shrinks_granularity(self):
        cfg = MechanismConfig(n_bits=48, granularity=24)
        adapted = cfg.for_dataset(10)
        assert adapted.n_bits == 10
        assert adapted.granularity == 10

    def test_for_dataset_adjusts_shared_level(self):
        cfg = MechanismConfig(n_bits=48, granularity=24, shared_level=20)
        adapted = cfg.for_dataset(8)
        assert adapted.effective_shared_level < adapted.granularity

    def test_extension_strategy_enum(self):
        assert ExtensionStrategy("adaptive") is ExtensionStrategy.ADAPTIVE
        assert ExtensionStrategy("fixed") is ExtensionStrategy.FIXED


class TestGatewayField:
    def test_gateway_requires_network_mode(self):
        import pytest

        from repro.core.config import MechanismConfig

        with pytest.raises(ValueError, match="only meaningful"):
            MechanismConfig(execution_mode="service", gateway="10.0.0.5:9000",
                            simulation_mode="per_user")
        with pytest.raises(ValueError, match="only meaningful"):
            MechanismConfig(gateway="10.0.0.5:9000")
        config = MechanismConfig(execution_mode="network", gateway="127.0.0.1:1",
                                 simulation_mode="per_user")
        assert MechanismConfig.from_dict(config.to_dict()) == config
