"""Declarative sweep specs: parsing, validation, round-trip, fingerprints."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import ExperimentSettings
from repro.experiments.spec import (
    LoadgenSpec,
    SpecError,
    SweepSpec,
    load_loadgen_spec,
    load_scenario_spec,
    load_spec,
    save_spec,
)
from repro.scenarios import ScenarioSpec

SPEC_DICT = {
    "name": "unit-spec",
    "settings": {"scale": "tiny", "repetitions": 2, "seed": 7, "granularity": 5},
    "grid": {
        "datasets": ["rdb"],
        "mechanisms": ["fedpem", "taps"],
        "epsilons": [2.0, 4.0],
        "ks": [5],
    },
    "config_overrides": {"oracle": "krr"},
    "dataset_kwargs": {},
}


class TestFromDict:
    def test_grid_axes_land_on_settings(self):
        spec = SweepSpec.from_dict(SPEC_DICT)
        assert spec.settings.datasets == ("rdb",)
        assert spec.settings.mechanisms == ("fedpem", "taps")
        assert spec.settings.epsilons == (2.0, 4.0)
        assert spec.settings.ks == (5,)
        assert spec.settings.repetitions == 2
        assert spec.name == "unit-spec"

    def test_axes_may_live_under_settings_directly(self):
        spec = SweepSpec.from_dict(
            {"settings": {"scale": "tiny", "mechanisms": ["taps"]}}
        )
        assert spec.settings.mechanisms == ("taps",)

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="typo_key"):
            SweepSpec.from_dict({"typo_key": 1})

    def test_unknown_settings_key(self):
        with pytest.raises(SpecError, match="not_a_knob"):
            SweepSpec.from_dict({"settings": {"not_a_knob": 1}})

    def test_unknown_config_override(self):
        with pytest.raises(SpecError, match="not_a_config_field"):
            SweepSpec.from_dict({"config_overrides": {"not_a_config_field": 1}})

    def test_axis_in_both_grid_and_settings(self):
        with pytest.raises(SpecError, match="once"):
            SweepSpec.from_dict(
                {"settings": {"ks": [5]}, "grid": {"ks": [5]}}
            )

    def test_empty_grid_axis(self):
        with pytest.raises(SpecError, match="non-empty"):
            SweepSpec.from_dict({"grid": {"datasets": []}})

    def test_invalid_settings_value_is_a_spec_error(self):
        with pytest.raises(SpecError, match="backend"):
            SweepSpec.from_dict({"settings": {"backend": "quantum"}})

    def test_non_mapping_document(self):
        with pytest.raises(SpecError, match="mapping"):
            SweepSpec.from_dict([1, 2, 3])

    @pytest.mark.parametrize("section", ["settings", "grid", "config_overrides", "dataset_kwargs"])
    def test_non_mapping_section(self, section):
        with pytest.raises(SpecError, match=f"'{section}' must be a mapping"):
            SweepSpec.from_dict({section: "small"})


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        spec = SweepSpec.from_dict(SPEC_DICT)
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_settings_round_trip_is_exact(self):
        settings = ExperimentSettings(
            scale="tiny", repetitions=2, epsilons=(1.0, 4.0), backend="thread"
        )
        assert ExperimentSettings.from_dict(settings.to_dict()) == settings

    def test_settings_reject_unknown_keys(self):
        with pytest.raises(ValueError, match="bogus"):
            ExperimentSettings.from_dict({"bogus": 1})


class TestFingerprint:
    def test_stable_across_instances(self):
        a = SweepSpec.from_dict(SPEC_DICT)
        b = SweepSpec.from_dict(json.loads(json.dumps(SPEC_DICT)))
        assert a.fingerprint() == b.fingerprint()

    def test_changes_with_the_grid(self):
        a = SweepSpec.from_dict(SPEC_DICT)
        changed = dict(SPEC_DICT, grid={**SPEC_DICT["grid"], "ks": [10]})
        assert a.fingerprint() != SweepSpec.from_dict(changed).fingerprint()

    def test_ignores_execution_knobs_and_name(self):
        # Backends never change what a cell computes, so they must not
        # invalidate a resume; nor should relabelling the spec.
        a = SweepSpec.from_dict(SPEC_DICT)
        changed = dict(
            SPEC_DICT,
            name="renamed",
            settings={
                **SPEC_DICT["settings"],
                "backend": "thread",
                "max_workers": 4,
                "party_backend": "thread",
            },
        )
        assert a.fingerprint() == SweepSpec.from_dict(changed).fingerprint()


SCENARIO_BLOCK = {
    "name": "unit-lab",
    "base": {"kind": "zipf", "n_items": 64, "n_bits": 8, "exponent": 2.0, "seed": 1},
    "n_steps": 6,
    "batch_size": 200,
    "k": 3,
    "window_batches": 2,
    "stride": 2,
    "effects": [
        {"kind": "drift", "mode": "abrupt", "start": 4},
        {"kind": "poison", "fraction": 0.1},
    ],
}


class TestScenarioBlock:
    def test_round_trip_is_exact(self):
        spec = SweepSpec.from_dict({**SPEC_DICT, "scenario": SCENARIO_BLOCK})
        assert isinstance(spec.scenario, ScenarioSpec)
        assert spec.scenario.k == 3 and len(spec.scenario.effects) == 2
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_absent_block_stays_absent(self):
        # No "scenario": null in the document form — pre-scenario stores
        # must keep their fingerprints.
        spec = SweepSpec.from_dict(SPEC_DICT)
        assert spec.scenario is None and "scenario" not in spec.to_dict()

    def test_fingerprint_tracks_the_scenario(self):
        plain = SweepSpec.from_dict(SPEC_DICT)
        with_scenario = SweepSpec.from_dict({**SPEC_DICT, "scenario": SCENARIO_BLOCK})
        changed = SweepSpec.from_dict(
            {**SPEC_DICT, "scenario": {**SCENARIO_BLOCK, "k": 4}}
        )
        assert plain.fingerprint() != with_scenario.fingerprint()
        assert with_scenario.fingerprint() != changed.fingerprint()

    def test_unknown_scenario_key_is_a_spec_error(self):
        with pytest.raises(SpecError, match="tracker"):
            SweepSpec.from_dict({"scenario": {"tracker": 1}})

    def test_unknown_effect_kind_is_a_spec_error(self):
        with pytest.raises(SpecError, match="ddos"):
            SweepSpec.from_dict({"scenario": {"effects": [{"kind": "ddos"}]}})

    def test_non_mapping_block(self):
        with pytest.raises(SpecError, match="mapping"):
            SweepSpec.from_dict({"scenario": "drift"})


class TestLoadScenarioSpec:
    def test_standalone_document(self, tmp_path):
        path = tmp_path / "lab.json"
        path.write_text(json.dumps(SCENARIO_BLOCK))
        spec = load_scenario_spec(path)
        assert spec == ScenarioSpec.from_dict(SCENARIO_BLOCK)

    def test_embedded_in_a_sweep_spec(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({**SPEC_DICT, "scenario": SCENARIO_BLOCK}))
        assert load_scenario_spec(path) == ScenarioSpec.from_dict(SCENARIO_BLOCK)

    def test_yaml_document(self, tmp_path):
        path = tmp_path / "lab.yaml"
        path.write_text(
            "name: yaml-lab\n"
            "base: {kind: zipf, n_items: 64, n_bits: 8, exponent: 2.0, seed: 1}\n"
            "effects:\n  - {kind: burst, period: 2}\n"
        )
        spec = load_scenario_spec(path)
        assert spec.name == "yaml-lab" and spec.effects[0].period == 2

    def test_empty_scenario_block(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({**SPEC_DICT, "scenario": None}))
        with pytest.raises(SpecError, match="empty"):
            load_scenario_spec(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="does not exist"):
            load_scenario_spec(tmp_path / "nope.yaml")

    def test_invalid_scenario_is_a_spec_error(self, tmp_path):
        path = tmp_path / "lab.json"
        path.write_text(json.dumps({"base": {"kind": "uniform"}}))
        with pytest.raises(SpecError, match="uniform"):
            load_scenario_spec(path)


class TestFiles:
    def test_yaml_load(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text(
            "name: yaml-spec\n"
            "settings:\n  scale: tiny\n  repetitions: 1\n"
            "grid:\n  datasets: [rdb]\n  mechanisms: [taps]\n"
            "  epsilons: [4.0]\n  ks: [5]\n"
        )
        spec = load_spec(path)
        assert spec.name == "yaml-spec"
        assert spec.settings.mechanisms == ("taps",)

    def test_yaml_flow_style_load(self, tmp_path):
        # YAML is a JSON superset; a .yaml file in flow style must go
        # through the YAML parser, not the '{' JSON sniff.
        path = tmp_path / "flow.yaml"
        path.write_text(
            "{settings: {scale: tiny}, grid: {datasets: [rdb], "
            "mechanisms: [taps], epsilons: [4.0], ks: [5]}}\n"
        )
        assert load_spec(path).settings.mechanisms == ("taps",)

    def test_json_load_and_save_round_trip(self, tmp_path):
        spec = SweepSpec.from_dict(SPEC_DICT)
        path = save_spec(spec, tmp_path / "spec.json")
        assert load_spec(path) == spec

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="does not exist"):
            load_spec(tmp_path / "nope.yaml")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="invalid JSON"):
            load_spec(path)


LOADGEN_DICT = {
    "name": "net-lab",
    "gateway": {"decode_backend": "thread", "connection_credits": 8},
    "workload": {
        "dataset": "rdb",
        "scale": "tiny",
        "oracle": "olh",
        "epsilon": 2.0,
        "level": 5,
        "rounds": 2,
        "batch_size": 512,
    },
    "load": {"connections": 3, "backend": "serial", "seed": 7},
}


class TestLoadgenSpec:
    def test_from_dict_and_round_trip(self):
        spec = LoadgenSpec.from_dict(LOADGEN_DICT)
        assert spec.name == "net-lab"
        assert LoadgenSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_name_the_offender(self):
        bad = {**LOADGEN_DICT, "gateway": {"decode_backend": "thread", "typo": 1}}
        with pytest.raises(SpecError, match="typo"):
            LoadgenSpec.from_dict(bad, source="bad.yaml")
        with pytest.raises(SpecError, match="wurkload"):
            LoadgenSpec.from_dict({"wurkload": {}}, source="bad.yaml")

    @pytest.mark.parametrize("bad_section", [[], False, ""])
    def test_falsy_non_mapping_sections_are_rejected(self, bad_section):
        # `load: []` must not silently drop the operator's configuration.
        with pytest.raises(SpecError, match="mapping"):
            LoadgenSpec.from_dict({**LOADGEN_DICT, "load": bad_section})
        with pytest.raises(SpecError, match="mapping"):
            SweepSpec.from_dict({"settings": bad_section})
        # null/missing still default cleanly.
        assert LoadgenSpec.from_dict({**LOADGEN_DICT, "load": None}).load == {}

    @pytest.mark.parametrize("bad_name", [0, False, ["x"]])
    def test_non_string_names_are_rejected(self, bad_name):
        with pytest.raises(SpecError, match="'name' must be a string"):
            LoadgenSpec.from_dict({**LOADGEN_DICT, "name": bad_name})
        with pytest.raises(SpecError, match="'name' must be a string"):
            SweepSpec.from_dict({"name": bad_name})
        assert LoadgenSpec.from_dict({**LOADGEN_DICT, "name": None}).name == "loadgen"

    def test_consumer_views_map_onto_the_apis(self):
        spec = LoadgenSpec.from_dict(LOADGEN_DICT)
        assert spec.gateway_kwargs() == {
            "decode_backend": "thread",
            "connection_credits": 8,
        }
        kwargs = spec.loadgen_kwargs()
        assert kwargs["dataset"] == "rdb" and kwargs["oracle"] == "olh"
        assert kwargs["connections"] == 3 and kwargs["seed"] == 7
        assert "scenario" not in kwargs
        # The views feed the real constructors without TypeErrors.
        from repro.net.gateway import AggregationGateway

        AggregationGateway(**spec.gateway_kwargs())

    def test_scenario_block_replaces_the_dataset(self):
        doc = {
            "workload": {
                "scenario": {
                    "base": {"kind": "zipf", "n_items": 16, "n_bits": 6, "seed": 1},
                    "n_steps": 6,
                    "batch_size": 50,
                    "k": 2,
                }
            }
        }
        spec = LoadgenSpec.from_dict(doc)
        assert isinstance(spec.scenario, ScenarioSpec)
        assert spec.loadgen_kwargs()["scenario"] is spec.scenario
        assert LoadgenSpec.from_dict(spec.to_dict()) == spec

    def test_adaptive_block_validates_and_flows_through(self):
        doc = {
            **LOADGEN_DICT,
            "load": {"connections": 2, "adaptive": {"target_p95_ms": 25.0}},
        }
        spec = LoadgenSpec.from_dict(doc)
        assert spec.loadgen_kwargs()["adaptive"] == {"target_p95_ms": 25.0}
        assert LoadgenSpec.from_dict(spec.to_dict()) == spec
        # `adaptive: true` is the default-config shorthand.
        spec = LoadgenSpec.from_dict({**LOADGEN_DICT, "load": {"adaptive": True}})
        assert spec.loadgen_kwargs()["adaptive"] is True

    def test_adaptive_block_rejects_bad_configs_at_load(self):
        with pytest.raises(SpecError, match="unknown"):
            LoadgenSpec.from_dict(
                {**LOADGEN_DICT, "load": {"adaptive": {"bogus_knob": 1}}},
                source="bad.yaml",
            )
        with pytest.raises(SpecError, match="target_p95_ms"):
            LoadgenSpec.from_dict(
                {**LOADGEN_DICT, "load": {"adaptive": {"target_p95_ms": -1}}}
            )
        with pytest.raises(SpecError, match="adaptive"):
            LoadgenSpec.from_dict({**LOADGEN_DICT, "load": {"adaptive": "turbo"}})

    def test_fingerprint_tracks_content(self):
        spec = LoadgenSpec.from_dict(LOADGEN_DICT)
        again = LoadgenSpec.from_dict(LOADGEN_DICT)
        assert spec.fingerprint() == again.fingerprint()
        other = LoadgenSpec.from_dict(
            {**LOADGEN_DICT, "load": {"connections": 4}}
        )
        assert other.fingerprint() != spec.fingerprint()

    def test_yaml_file_load(self, tmp_path):
        path = tmp_path / "loadgen.yaml"
        path.write_text(
            "name: from-yaml\n"
            "gateway: {connection_credits: 4}\n"
            "workload: {dataset: rdb, scale: tiny}\n"
            "load: {connections: 2}\n"
        )
        spec = load_loadgen_spec(path)
        assert spec.name == "from-yaml"
        assert spec.load == {"connections": 2}

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="does not exist"):
            load_loadgen_spec(tmp_path / "nope.yaml")
