"""Tests for the FO base class, privacy accountant and oracle registry."""

import numpy as np
import pytest

from repro.ldp.base import EstimationResult
from repro.ldp.budget import PrivacyAccountant
from repro.ldp.krr import KRandomizedResponse
from repro.ldp.registry import available_oracles, make_oracle


class TestEstimationResult:
    def _result(self, counts):
        counts = np.asarray(counts, dtype=float)
        return EstimationResult(
            support_counts=counts.astype(int),
            estimated_counts=counts,
            estimated_frequencies=counts / max(counts.sum(), 1),
            n_users=int(counts.sum()),
            domain_size=counts.size,
            oracle_name="krr",
            epsilon=1.0,
        )

    def test_top_indices_sorted_by_count(self):
        result = self._result([5, 30, 10, 20])
        np.testing.assert_array_equal(result.top_indices(2), [1, 3])

    def test_top_indices_with_k_larger_than_domain(self):
        result = self._result([1, 2])
        assert result.top_indices(10).size == 2

    def test_top_indices_zero_k(self):
        assert self._result([1, 2]).top_indices(0).size == 0


class TestRunValidation:
    def test_invalid_domain_size(self):
        with pytest.raises(ValueError):
            KRandomizedResponse(1.0).run(np.array([0]), 0, rng=0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            KRandomizedResponse(1.0).run(np.array([0]), 2, rng=0, mode="bogus")

    def test_empty_values_produce_zero_estimates(self):
        result = KRandomizedResponse(1.0).run(np.array([], dtype=int), 4, rng=0)
        assert result.n_users == 0
        np.testing.assert_array_equal(result.estimated_counts, np.zeros(4))


class TestPrivacyAccountant:
    def test_single_report_per_user_satisfies_ldp(self):
        acct = PrivacyAccountant(epsilon=2.0)
        acct.record([0, 1, 2], party="a", level=1, epsilon=2.0, oracle="krr", domain_size=4)
        assert acct.satisfies_ldp()
        assert acct.n_reports() == 3
        assert acct.max_spent() == pytest.approx(2.0)

    def test_double_report_violates_ldp(self):
        acct = PrivacyAccountant(epsilon=2.0)
        acct.record([0], party="a", level=1, epsilon=2.0, oracle="krr", domain_size=4)
        acct.record([0], party="a", level=2, epsilon=2.0, oracle="krr", domain_size=4)
        assert not acct.satisfies_ldp()
        assert acct.users_reporting_more_than_once() == [("a", 0)]

    def test_same_user_id_in_different_parties_is_fine(self):
        acct = PrivacyAccountant(epsilon=1.0)
        acct.record([0], party="a", level=1, epsilon=1.0, oracle="krr", domain_size=4)
        acct.record([0], party="b", level=1, epsilon=1.0, oracle="krr", domain_size=4)
        assert acct.satisfies_ldp()

    def test_overspending_detected(self):
        acct = PrivacyAccountant(epsilon=1.0)
        acct.record([7], party="a", level=1, epsilon=1.5, oracle="krr", domain_size=4)
        assert not acct.satisfies_ldp()

    def test_spent_for_unknown_user_is_zero(self):
        assert PrivacyAccountant(epsilon=1.0).spent("a", 3) == 0.0

    def test_max_spent_empty(self):
        assert PrivacyAccountant(epsilon=1.0).max_spent() == 0.0


class TestRegistry:
    def test_available_oracles(self):
        assert {"krr", "oue", "olh", "sue"} <= set(available_oracles())

    def test_make_oracle_by_name(self):
        for name in available_oracles():
            oracle = make_oracle(name, 2.0)
            assert oracle.name == name
            assert oracle.epsilon == 2.0

    def test_make_oracle_case_insensitive(self):
        assert make_oracle("KRR", 1.0).name == "krr"

    def test_unknown_oracle_raises(self):
        with pytest.raises(KeyError):
            make_oracle("nope", 1.0)
