"""Metrics registry: bucket algebra, snapshot determinism, quantiles."""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import (
    MAX_EXP,
    METRICS_SCHEMA,
    MIN_EXP,
    MetricsRegistry,
    UNDERFLOW_EXP,
    bucket_bounds,
    bucket_exponent,
    encode_snapshot,
    histogram_quantile,
    latency_summary,
    merge_snapshots,
    quantiles,
    validate_metrics_document,
)

OBSERVATIONS = st.lists(
    st.floats(
        min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    max_size=40,
)


class TestBuckets:
    def test_bucket_invariant_over_the_positive_range(self):
        for value in (1e-12, 0.001, 0.5, 1.0, 1.5, 2.0, 3.14, 1000.0, 2.0**40):
            e = bucket_exponent(value)
            assert MIN_EXP <= e <= MAX_EXP
            low, high = bucket_bounds(e)
            if MIN_EXP < e < MAX_EXP:
                # Unclamped buckets satisfy the defining inequality exactly.
                assert low <= value < high
                assert high == 2 * low or low == 0.0

    def test_boundaries_land_in_the_upper_bucket(self):
        # 2^(e-1) <= v < 2^e: a power of two starts its own bucket.
        assert bucket_exponent(1.0) == 1
        assert bucket_exponent(0.5) == 0
        assert bucket_exponent(2.0) == 2
        assert bucket_exponent(math.nextafter(1.0, 0.0)) == 0

    def test_non_positive_and_nan_underflow(self):
        assert bucket_exponent(0.0) == UNDERFLOW_EXP
        assert bucket_exponent(-3.0) == UNDERFLOW_EXP
        assert bucket_exponent(float("nan")) == UNDERFLOW_EXP
        assert bucket_bounds(UNDERFLOW_EXP) == (0.0, 0.0)

    def test_clamping_pins_the_bucket_universe(self):
        assert bucket_exponent(1e-300) == MIN_EXP
        assert bucket_exponent(1e300) == MAX_EXP


class TestHistogramMergeAlgebra:
    @given(a=OBSERVATIONS, b=OBSERVATIONS)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_observe_all(self, a, b):
        """merge(snap(A), snap(B)) == snap(A + B), exactly for integers."""
        left, right, union = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for registry in (left, right, union):
            registry.histogram("h")  # exists even with zero observations
        for v in a:
            left.histogram("h").observe(v)
            union.histogram("h").observe(v)
        for v in b:
            right.histogram("h").observe(v)
            union.histogram("h").observe(v)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        expect = union.snapshot()["histograms"]["h"]
        got = merged["histograms"]["h"]
        assert got["count"] == expect["count"]
        assert got["buckets"] == expect["buckets"]
        assert got["min"] == expect["min"]
        assert got["max"] == expect["max"]
        # Sums are floats: merge adds partial sums, observe-all adds
        # values one by one — identical up to float associativity.
        assert got["sum"] == pytest.approx(expect["sum"], rel=1e-12, abs=1e-12)

    @given(values=OBSERVATIONS)
    @settings(max_examples=60, deadline=None)
    def test_bucket_counts_always_sum_to_count(self, values):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for v in values:
            histogram.observe(v)
        hist = registry.snapshot()["histograms"]["h"]
        assert sum(hist["buckets"].values()) == hist["count"] == len(values)

    @given(values=OBSERVATIONS)
    @settings(max_examples=40, deadline=None)
    def test_snapshot_encoding_ignores_cross_instrument_interleaving(self, values):
        """Byte-stable snapshots: each instrument sees its own observation
        sequence; how updates interleave *across* instruments (the thread
        schedule) and the instrument creation order must not matter."""
        forward, backward = MetricsRegistry(), MetricsRegistry()
        backward.counter("n")  # created before the histogram, not after
        forward.histogram("h")
        forward.counter("n")
        backward.histogram("h")
        for v in values:
            forward.histogram("h").observe(v)
            forward.counter("n").inc()
        for v in values:
            backward.counter("n").inc()
            backward.histogram("h").observe(v)
        assert encode_snapshot(forward.snapshot()) == encode_snapshot(
            backward.snapshot()
        )

    def test_merge_is_associative_and_commutative(self):
        snaps = []
        for seed in range(3):
            registry = MetricsRegistry()
            rng = np.random.default_rng(seed)
            for v in rng.uniform(0.01, 100.0, size=20):
                registry.histogram("h").observe(float(v))
                registry.counter("n", shard=seed).inc()
            snaps.append(registry.snapshot())
        a, b, c = snaps
        abc = merge_snapshots(merge_snapshots(a, b), c)
        cba = merge_snapshots(c, merge_snapshots(b, a))
        assert encode_snapshot(abc) == encode_snapshot(cba)


class TestRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x", a=1) is not registry.counter("x", a=2)
        registry.counter("x", b=2, a=1).inc(3)
        assert registry.snapshot()["counters"]["x{a=1,b=2}"] == 3

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert registry.snapshot()["gauges"]["g"] == 1.0
        gauge.set(7.5)
        assert registry.snapshot()["gauges"]["g"] == 7.5

    def test_concurrent_increments_never_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        histogram = registry.histogram("h")

        def work():
            for _ in range(1000):
                counter.inc()
                histogram.observe(1.5)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["n"] == 8000
        assert snapshot["histograms"]["h"]["count"] == 8000
        assert snapshot["histograms"]["h"]["buckets"] == {"1": 8000}


class TestQuantiles:
    def test_histogram_quantile_is_bucket_accurate(self):
        registry = MetricsRegistry()
        values = [float(v) for v in np.random.default_rng(0).uniform(1.0, 512.0, 500)]
        for v in values:
            registry.histogram("h").observe(v)
        hist = registry.snapshot()["histograms"]["h"]
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(np.asarray(values), q))
            approx = histogram_quantile(hist, q)
            # Log2 buckets: within a factor of 2 by construction.
            assert exact / 2 <= approx <= exact * 2

    def test_histogram_quantile_clamps_to_observed_range(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(3.0)
        hist = registry.snapshot()["histograms"]["h"]
        assert histogram_quantile(hist, 0.0) == 3.0
        assert histogram_quantile(hist, 1.0) == 3.0
        assert histogram_quantile({"count": 0, "buckets": {}}, 0.5) == 0.0

    def test_quantiles_match_separate_percentile_calls(self):
        values = np.random.default_rng(1).uniform(0.0, 50.0, 101)
        p50, p95 = quantiles(values, (50.0, 95.0))
        assert p50 == float(np.percentile(values, 50.0))
        assert p95 == float(np.percentile(values, 95.0))

    def test_latency_summary_shape(self):
        empty = latency_summary([])
        assert empty == {
            "count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0,
        }
        summary = latency_summary([0.001, 0.002, 0.003])
        assert summary["count"] == 3
        assert summary["p50"] == 2.0
        assert summary["max"] == 3.0


class TestValidation:
    def _document(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.histogram("h").observe(1.0)
        return {
            "schema": METRICS_SCHEMA,
            "source": "gateway",
            "metrics": registry.snapshot(),
        }

    def test_valid_document_passes_through(self):
        document = self._document()
        assert validate_metrics_document(document) is document

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.update(schema="nope"), "schema"),
            (lambda d: d.pop("source"), "source"),
            (lambda d: d.pop("metrics"), "metrics"),
            (lambda d: d["metrics"].pop("counters"), "counters"),
            (lambda d: d["metrics"]["counters"].update(n=1.5), "integer"),
            (lambda d: d["metrics"]["counters"].update(n=True), "integer"),
            (lambda d: d["metrics"]["histograms"]["h"].pop("buckets"), "buckets"),
            (
                lambda d: d["metrics"]["histograms"]["h"]["buckets"].update({"1": 5}),
                "sum to count",
            ),
        ],
    )
    def test_violations_raise_naming_the_problem(self, mutate, message):
        document = self._document()
        mutate(document)
        with pytest.raises(ValueError, match=message):
            validate_metrics_document(document)
