"""Telemetry end to end: wire extension, live scrapes, bit-identity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.ldp.registry import make_oracle
from repro.net import framing, run_loadgen, start_gateway
from repro.net.client import GatewayConnection
from repro.obs.registry import METRICS_SCHEMA, validate_metrics_document
from repro.obs.trace import Tracer
from repro.service.clients import iter_perturbed_batches
from repro.service.protocol import RoundBroadcast, encode_report_batch
from repro.trie.candidate_domain import CandidateDomain


def _broadcast(domain, *, level=3):
    return RoundBroadcast(
        party="alpha",
        level=level,
        oracle_name="krr",
        epsilon=4.0,
        domain_size=domain.size,
        prefixes=tuple(domain.prefixes),
    )


def _batches(domain, *, seed, n=300):
    oracle = make_oracle("krr", 4.0)
    values = np.random.default_rng(seed).integers(0, domain.size, size=n)
    return [
        encode_report_batch(batch)
        for batch in iter_perturbed_batches(
            oracle, values, domain.size, seed, batch_size=100, party="alpha", level=3
        )
    ]


class TestWireExtension:
    def test_split_frame_kind_separates_the_flag(self):
        assert framing.split_frame_kind(framing.FRAME_REPORT_BATCH) == (
            framing.FRAME_REPORT_BATCH,
            False,
        )
        flagged = framing.FRAME_REPORT_BATCH | framing.FRAME_FLAG_TRACE
        assert framing.split_frame_kind(flagged) == (framing.FRAME_REPORT_BATCH, True)

    def test_trace_bytes_ride_outside_the_body_length(self):
        """The extension is ignorable: the u32 length still counts body
        bytes only, so wire-bit accounting is identical with or without
        the 24 trace bytes between header and body."""
        body = b"payload"
        trace = bytes(range(framing.TRACE_CONTEXT_SIZE))
        plain = framing.encode_frame(framing.FRAME_REPORT_BATCH, body)
        stamped = framing.encode_frame(framing.FRAME_REPORT_BATCH, body, trace=trace)
        assert len(stamped) == len(plain) + framing.TRACE_CONTEXT_SIZE
        length, raw_kind = framing.parse_frame_header(
            stamped[: framing.FRAME_HEADER_SIZE]
        )
        assert length == len(body)
        kind, has_trace = framing.split_frame_kind(raw_kind)
        assert kind == framing.FRAME_REPORT_BATCH and has_trace
        assert stamped[framing.FRAME_HEADER_SIZE :] == trace + body

    def test_wrong_size_trace_is_rejected(self):
        with pytest.raises(ValueError, match="24"):
            framing.encode_frame(framing.FRAME_REPORT_BATCH, b"x", trace=b"short")

    def test_metrics_frame_codec_round_trips(self):
        document = {
            "schema": METRICS_SCHEMA,
            "source": "gateway",
            "metrics": {"counters": {"n": 3}, "gauges": {}, "histograms": {}},
        }
        body = framing.encode_metrics_frame(document)
        assert framing.decode_metrics_frame(body) == document


class TestLiveScrape:
    @pytest.fixture(scope="class")
    def gateway(self):
        with start_gateway(
            decode_backend="thread", decode_workers=2, telemetry_sample=1.0
        ) as handle:
            yield handle

    def test_mid_round_scrape_reports_live_series(self, gateway):
        domain = CandidateDomain.full_domain(3)
        with GatewayConnection(gateway.address) as connection:
            round_id, _ = connection.open_round(_broadcast(domain))
            payloads = _batches(domain, seed=5)
            connection.send_batch(round_id, payloads[0])
            connection.drain()
            # Scrape from a *second* connection while the round is open.
            with GatewayConnection(gateway.address) as probe:
                document = validate_metrics_document(probe.metrics())
            counters = document["metrics"]["counters"]
            assert document["source"] == "gateway"
            assert counters["gateway_rounds_opened_total"] >= 1
            assert counters["gateway_batches_ingested_total"] >= 1
            assert counters["service_reports_total"] >= 100
            assert document["metrics"]["gauges"]["gateway_connections_live"] >= 1
            hist = document["metrics"]["histograms"]["gateway_batch_ms"]
            assert hist["count"] >= 1  # telemetry_sample=1 times every batch
            assert document["stats"]["rounds_opened"] >= 1
            for payload in payloads[1:]:
                connection.send_batch(round_id, payload)
            estimate = connection.finalize(round_id)
        assert estimate.n_users == 300

    def test_stats_cli_scrapes_and_validates(self, gateway, tmp_path, capsys):
        out = tmp_path / "stats.json"
        assert main(["stats", gateway.address, "--json", "-o", str(out)]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text(encoding="utf-8"))
        validate_metrics_document(document)
        assert main(["stats", gateway.address]) == 0
        rendered = capsys.readouterr().out
        assert "gateway_connections_total" in rendered
        assert "gateway_batch_ms" in rendered

    def test_stats_cli_fails_cleanly_when_nothing_listens(self, capsys):
        assert main(["stats", "127.0.0.1:9", "--timeout", "0.5"]) == 2
        assert "cannot scrape" in capsys.readouterr().err


class TestBitIdentity:
    def test_full_telemetry_and_mid_round_scrapes_never_perturb_the_estimate(self):
        """The invariant the whole subsystem hangs on: a fixed-seed round
        against a fully instrumented gateway (sampling on, tracer on,
        trace-stamped frames, concurrent scrapes between batches) yields
        byte-identical estimates to a plain gateway."""
        domain = CandidateDomain.full_domain(3)
        payloads = _batches(domain, seed=11)

        with start_gateway(decode_backend="thread", decode_workers=2) as plain:
            with GatewayConnection(plain.address) as connection:
                round_id, plain_bits = connection.open_round(_broadcast(domain))
                for payload in payloads:
                    connection.send_batch(round_id, payload)
                baseline = connection.finalize(round_id)

        gateway_tracer = Tracer(seed=0)
        with start_gateway(
            decode_backend="thread",
            decode_workers=2,
            telemetry_sample=1.0,
            tracer=gateway_tracer,
        ) as instrumented:
            client_tracer = Tracer(seed=1)
            with GatewayConnection(
                instrumented.address, tracer=client_tracer
            ) as connection:
                round_id, traced_bits = connection.open_round(_broadcast(domain))
                for payload in payloads:
                    connection.send_batch(round_id, payload)
                    connection.drain()
                    with GatewayConnection(instrumented.address) as probe:
                        validate_metrics_document(probe.metrics())
                traced = connection.finalize(round_id)

        assert traced_bits == plain_bits
        np.testing.assert_array_equal(
            traced.support_counts, baseline.support_counts
        )
        assert traced.estimated_counts.tobytes() == baseline.estimated_counts.tobytes()
        assert traced.metadata == baseline.metadata

        # And the trace actually crossed the wire: gateway ingest spans
        # are parented on the client's batch spans, same trace ids.
        client_spans = {s["span_id"]: s for s in client_tracer.drain()}
        ingests = [
            s for s in gateway_tracer.drain() if s["name"] == "gateway.ingest"
        ]
        assert len(ingests) == len(payloads)
        for span in ingests:
            parent = client_spans[span["parent_id"]]
            assert parent["name"] == "client.batch"
            assert parent["trace_id"] == span["trace_id"]


class TestLoadgenTelemetry:
    def test_report_carries_merged_snapshot_and_span_log(self, tmp_path):
        trace_log = tmp_path / "spans.jsonl"
        with start_gateway(
            decode_backend="thread", decode_workers=2, telemetry_sample=1.0
        ) as gateway:
            report = run_loadgen(
                gateway.address,
                dataset="rdb",
                scale="tiny",
                level=4,
                batch_size=256,
                connections=2,
                rounds=1,
                backend="serial",
                seed=0,
                telemetry=True,
                trace_log=trace_log,
            )
        document = validate_metrics_document(report.telemetry)
        assert document["source"] == "loadgen"
        validate_metrics_document(document["gateway"])
        payload = report.to_dict()
        assert payload["telemetry"]["source"] == "loadgen"
        assert payload["trace_log"] == str(trace_log)

        spans = [
            json.loads(line)
            for line in trace_log.read_text(encoding="utf-8").splitlines()
        ]
        names = {span["name"] for span in spans}
        assert {"client.round", "client.batch"} <= names
        assert all("trace_id" in span and "duration_ms" in span for span in spans)

    def test_off_reports_stay_byte_identical_to_pre_telemetry_shape(self):
        with start_gateway(decode_backend="thread", decode_workers=2) as gateway:
            report = run_loadgen(
                gateway.address,
                dataset="rdb",
                scale="tiny",
                level=4,
                connections=1,
                rounds=1,
                backend="serial",
                seed=0,
            )
        payload = report.to_dict()
        assert "telemetry" not in payload
        assert "trace_log" not in payload
