"""The service-mode invariant: for a fixed seed on the serial backend,
service-mode TAP/TAPS are bit-identical to the in-memory path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fedpem import FedPEMMechanism
from repro.core.config import MechanismConfig
from repro.core.tap import TAPMechanism
from repro.core.taps import TAPSMechanism
from repro.federation.messages import MessageDirection


def _assert_bit_identical(memory, service):
    """Every numeric artefact of the two runs must be exactly equal."""
    assert service.heavy_hitters == memory.heavy_hitters
    assert service.estimated_counts == memory.estimated_counts
    assert set(service.party_records) == set(memory.party_records)
    for name, mem_record in memory.party_records.items():
        svc_record = service.party_records[name]
        assert svc_record.local_heavy_hitters == mem_record.local_heavy_hitters
        # LevelEstimate is a dataclass: == compares every field, including
        # the float count/frequency dicts, exactly.
        assert svc_record.levels == mem_record.levels
    assert service.accountant.records == memory.accountant.records


def _config(dataset, **overrides) -> MechanismConfig:
    base = dict(
        k=5,
        epsilon=4.0,
        n_bits=dataset.n_bits,
        granularity=5,
        simulation_mode="per_user",
    )
    base.update(overrides)
    return MechanismConfig(**base)


@pytest.mark.parametrize("mechanism_cls", [TAPMechanism, TAPSMechanism])
class TestServiceModeBitIdentical:
    def test_matching_batch_size(self, mechanism_cls, two_party_dataset):
        """Explicit equal batching: multi-batch rounds on both paths."""
        config = _config(two_party_dataset, report_batch_size=64)
        memory = mechanism_cls(config).run(two_party_dataset, rng=123)
        service = mechanism_cls(
            config.with_updates(execution_mode="service")
        ).run(two_party_dataset, rng=123)
        _assert_bit_identical(memory, service)

    def test_default_batching(self, mechanism_cls, two_party_dataset):
        """Populations under the service default batch: one batch per round,
        identical to the historical one-shot in-memory path."""
        config = _config(two_party_dataset)
        memory = mechanism_cls(config).run(two_party_dataset, rng=7)
        service = mechanism_cls(
            config.with_updates(execution_mode="service")
        ).run(two_party_dataset, rng=7)
        _assert_bit_identical(memory, service)

    def test_every_oracle(self, mechanism_cls, two_party_dataset):
        for oracle in ("krr", "oue", "olh"):
            config = _config(two_party_dataset, oracle=oracle, report_batch_size=97)
            memory = mechanism_cls(config).run(two_party_dataset, rng=11)
            service = mechanism_cls(
                config.with_updates(execution_mode="service")
            ).run(two_party_dataset, rng=11)
            _assert_bit_identical(memory, service)


class TestServiceTranscript:
    def test_exact_wire_accounting_replaces_estimates(self, two_party_dataset):
        config = _config(two_party_dataset, report_batch_size=64)
        memory = TAPMechanism(config).run(two_party_dataset, rng=123)
        service = TAPMechanism(
            config.with_updates(execution_mode="service")
        ).run(two_party_dataset, rng=123)
        assert not memory.transcript.messages_of_kind("report_batch")
        batches = service.transcript.messages_of_kind("report_batch")
        opens = service.transcript.messages_of_kind("service_round_open")
        assert batches and opens
        assert all(m.direction is MessageDirection.PARTY_TO_SERVER for m in batches)
        assert all(m.payload_bits > 0 for m in batches + opens)
        # Each party runs granularity-many rounds; one open per round.
        assert len(opens) == config.granularity * two_party_dataset.n_parties

    def test_krr_upload_is_one_byte_per_report(self, two_party_dataset):
        """Small domains: exact wire bytes beat the analytic pair estimate."""
        config = _config(two_party_dataset, report_batch_size=1000)
        service = TAPMechanism(
            config.with_updates(execution_mode="service")
        ).run(two_party_dataset, rng=5)
        batch_bits = sum(
            m.payload_bits
            for m in service.transcript.messages_of_kind("report_batch")
        )
        total_reports = two_party_dataset.total_users
        # 1 byte per k-RR report plus a few dozen header bytes per batch.
        assert batch_bits < total_reports * 8 * 2


class TestServiceModeBackends:
    def test_parallel_party_backends_reproduce_serial(self, two_party_dataset):
        config = _config(two_party_dataset, report_batch_size=64,
                         execution_mode="service")
        serial = TAPMechanism(config).run(two_party_dataset, rng=3)
        threaded = TAPMechanism(
            config.with_updates(backend="thread", max_workers=2)
        ).run(two_party_dataset, rng=3)
        _assert_bit_identical(serial, threaded)
        assert (
            threaded.transcript.bits_by_kind()["report_batch"]
            == serial.transcript.bits_by_kind()["report_batch"]
        )

    def test_service_mode_works_for_baselines(self, two_party_dataset):
        config = _config(two_party_dataset, report_batch_size=128)
        memory = FedPEMMechanism(config).run(two_party_dataset, rng=2)
        service = FedPEMMechanism(
            config.with_updates(execution_mode="service")
        ).run(two_party_dataset, rng=2)
        assert service.heavy_hitters == memory.heavy_hitters
        assert service.estimated_counts == memory.estimated_counts
