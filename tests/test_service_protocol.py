"""Tests for the service wire codecs: lossless round trips, exact sizes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ldp.registry import available_oracles, make_oracle
from repro.service.clients import iter_perturbed_batches
from repro.service.protocol import (
    ReportBatch,
    RoundBroadcast,
    WireFormatError,
    decode_broadcast,
    decode_report_batch,
    encode_broadcast,
    encode_report_batch,
    wire_bits,
)


def _one_batch(oracle_name: str, n: int = 200, domain_size: int = 37) -> ReportBatch:
    oracle = make_oracle(oracle_name, epsilon=3.0)
    values = np.random.default_rng(5).integers(0, domain_size, size=n)
    (batch,) = iter_perturbed_batches(
        oracle, values, domain_size, rng=7, batch_size=n, party="alpha", level=4
    )
    return batch


def _reports_equal(a, b) -> bool:
    if isinstance(a, tuple):
        return all(np.array_equal(x, y) for x, y in zip(a, b))
    return np.array_equal(np.asarray(a), np.asarray(b))


class TestReportBatchRoundTrip:
    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_lossless(self, oracle_name):
        batch = _one_batch(oracle_name)
        decoded = decode_report_batch(encode_report_batch(batch))
        assert decoded.party == batch.party
        assert decoded.level == batch.level
        assert decoded.oracle_name == batch.oracle_name
        assert decoded.epsilon == batch.epsilon
        assert decoded.domain_size == batch.domain_size
        assert decoded.value_domain == batch.value_domain
        assert decoded.n_users == batch.n_users
        assert _reports_equal(decoded.reports, batch.reports)

    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_encoding_is_canonical(self, oracle_name):
        batch = _one_batch(oracle_name)
        assert encode_report_batch(batch) == encode_report_batch(batch)

    def test_empty_batch_round_trip(self):
        oracle = make_oracle("krr", epsilon=2.0)
        batch = ReportBatch(
            party="p", level=1, oracle_name="krr", epsilon=2.0,
            domain_size=9, value_domain=9, n_users=0,
            reports=np.zeros(0, dtype=np.int64),
        )
        decoded = decode_report_batch(encode_report_batch(batch))
        assert decoded.n_users == 0
        assert oracle.n_reports(decoded.reports) == 0


class TestPayloadSizes:
    def test_krr_uses_one_byte_per_small_domain_report(self):
        batch = _one_batch("krr", n=100, domain_size=200)
        header = encode_report_batch(
            ReportBatch(**{**batch.__dict__, "n_users": 0,
                           "reports": np.zeros(0, dtype=np.int64)})
        )
        payload_bytes = len(encode_report_batch(batch)) - len(header)
        assert payload_bytes == 100  # uint8 per report

    def test_unary_packs_to_ceil_d_over_8_bytes_per_user(self):
        batch = _one_batch("oue", n=50, domain_size=37)
        empty = ReportBatch(**{**batch.__dict__, "n_users": 0,
                               "reports": np.zeros((0, 37), dtype=bool)})
        payload_bytes = len(encode_report_batch(batch)) - len(
            encode_report_batch(empty)
        )
        assert payload_bytes == 50 * ((37 + 7) // 8)

    def test_olh_ships_seed_plus_small_bucket(self):
        batch = _one_batch("olh", n=64)
        empty = ReportBatch(**{**batch.__dict__, "n_users": 0,
                               "reports": (np.zeros(0, np.int64), np.zeros(0, np.int64))})
        payload_bytes = len(encode_report_batch(batch)) - len(
            encode_report_batch(empty)
        )
        assert payload_bytes == 64 * 9  # 8-byte seed + 1-byte bucket (d' < 256)

    def test_wire_bits_is_exact(self):
        payload = encode_report_batch(_one_batch("krr"))
        assert wire_bits(payload) == len(payload) * 8


class TestBroadcastRoundTrip:
    def test_lossless(self):
        broadcast = RoundBroadcast(
            party="beta", level=3, oracle_name="krr", epsilon=4.0,
            domain_size=5, prefixes=("000", "010", "110", "111"),
        )
        assert decode_broadcast(encode_broadcast(broadcast)) == broadcast


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(WireFormatError, match="magic"):
            decode_report_batch(b"XXXXjunk")
        with pytest.raises(WireFormatError, match="magic"):
            decode_broadcast(b"XXXXjunk")

    def test_unknown_oracle_codec(self):
        batch = ReportBatch(
            party="p", level=1, oracle_name="mystery", epsilon=1.0,
            domain_size=4, value_domain=4, n_users=1,
            reports=np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(WireFormatError, match="mystery"):
            encode_report_batch(batch)

    def test_truncated_payload(self):
        payload = encode_report_batch(_one_batch("krr"))
        with pytest.raises(WireFormatError, match="bytes"):
            decode_report_batch(payload[:-3])

    def test_truncated_header(self):
        with pytest.raises(WireFormatError, match="header"):
            decode_report_batch(b"RPB1\x05")

    def test_out_of_domain_values_rejected_up_front(self):
        from repro.ldp.registry import make_oracle

        oracle = make_oracle("oue", epsilon=2.0)
        with pytest.raises(ValueError, match="candidate indices"):
            list(
                iter_perturbed_batches(
                    oracle, np.array([7]), 4, rng=0, batch_size=8
                )
            )
