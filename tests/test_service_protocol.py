"""Tests for the service wire codecs: lossless round trips, exact sizes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ldp.registry import available_oracles, make_oracle
from repro.service.clients import iter_perturbed_batches
from repro.service.protocol import (
    ReportBatch,
    RoundBroadcast,
    WireFormatError,
    decode_broadcast,
    decode_report_batch,
    encode_broadcast,
    encode_report_batch,
    wire_bits,
)


def _one_batch(oracle_name: str, n: int = 200, domain_size: int = 37) -> ReportBatch:
    oracle = make_oracle(oracle_name, epsilon=3.0)
    values = np.random.default_rng(5).integers(0, domain_size, size=n)
    (batch,) = iter_perturbed_batches(
        oracle, values, domain_size, rng=7, batch_size=n, party="alpha", level=4
    )
    return batch


def _reports_equal(a, b) -> bool:
    if isinstance(a, tuple):
        return all(np.array_equal(x, y) for x, y in zip(a, b))
    return np.array_equal(np.asarray(a), np.asarray(b))


class TestReportBatchRoundTrip:
    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_lossless(self, oracle_name):
        batch = _one_batch(oracle_name)
        decoded = decode_report_batch(encode_report_batch(batch))
        assert decoded.party == batch.party
        assert decoded.level == batch.level
        assert decoded.oracle_name == batch.oracle_name
        assert decoded.epsilon == batch.epsilon
        assert decoded.domain_size == batch.domain_size
        assert decoded.value_domain == batch.value_domain
        assert decoded.n_users == batch.n_users
        assert _reports_equal(decoded.reports, batch.reports)

    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_encoding_is_canonical(self, oracle_name):
        batch = _one_batch(oracle_name)
        assert encode_report_batch(batch) == encode_report_batch(batch)

    def test_empty_batch_round_trip(self):
        oracle = make_oracle("krr", epsilon=2.0)
        batch = ReportBatch(
            party="p", level=1, oracle_name="krr", epsilon=2.0,
            domain_size=9, value_domain=9, n_users=0,
            reports=np.zeros(0, dtype=np.int64),
        )
        decoded = decode_report_batch(encode_report_batch(batch))
        assert decoded.n_users == 0
        assert oracle.n_reports(decoded.reports) == 0


class TestPayloadSizes:
    def test_krr_uses_one_byte_per_small_domain_report(self):
        batch = _one_batch("krr", n=100, domain_size=200)
        header = encode_report_batch(
            ReportBatch(**{**batch.__dict__, "n_users": 0,
                           "reports": np.zeros(0, dtype=np.int64)})
        )
        payload_bytes = len(encode_report_batch(batch)) - len(header)
        assert payload_bytes == 100  # uint8 per report

    def test_unary_packs_to_ceil_d_over_8_bytes_per_user(self):
        batch = _one_batch("oue", n=50, domain_size=37)
        empty = ReportBatch(**{**batch.__dict__, "n_users": 0,
                               "reports": np.zeros((0, 37), dtype=bool)})
        payload_bytes = len(encode_report_batch(batch)) - len(
            encode_report_batch(empty)
        )
        assert payload_bytes == 50 * ((37 + 7) // 8)

    def test_olh_ships_seed_plus_small_bucket(self):
        batch = _one_batch("olh", n=64)
        empty = ReportBatch(**{**batch.__dict__, "n_users": 0,
                               "reports": (np.zeros(0, np.int64), np.zeros(0, np.int64))})
        payload_bytes = len(encode_report_batch(batch)) - len(
            encode_report_batch(empty)
        )
        assert payload_bytes == 64 * 9  # 8-byte seed + 1-byte bucket (d' < 256)

    def test_wire_bits_is_exact(self):
        payload = encode_report_batch(_one_batch("krr"))
        assert wire_bits(payload) == len(payload) * 8


class TestBroadcastRoundTrip:
    def test_lossless(self):
        broadcast = RoundBroadcast(
            party="beta", level=3, oracle_name="krr", epsilon=4.0,
            domain_size=5, prefixes=("000", "010", "110", "111"),
        )
        assert decode_broadcast(encode_broadcast(broadcast)) == broadcast


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(WireFormatError, match="magic"):
            decode_report_batch(b"XXXXjunk")
        with pytest.raises(WireFormatError, match="magic"):
            decode_broadcast(b"XXXXjunk")

    def test_unknown_oracle_codec(self):
        batch = ReportBatch(
            party="p", level=1, oracle_name="mystery", epsilon=1.0,
            domain_size=4, value_domain=4, n_users=1,
            reports=np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(WireFormatError, match="mystery"):
            encode_report_batch(batch)

    def test_truncated_payload(self):
        payload = encode_report_batch(_one_batch("krr"))
        with pytest.raises(WireFormatError, match="bytes"):
            decode_report_batch(payload[:-3])

    def test_truncated_header(self):
        with pytest.raises(WireFormatError, match="header"):
            decode_report_batch(b"RPB1\x05")

    def test_out_of_domain_values_rejected_up_front(self):
        from repro.ldp.registry import make_oracle

        oracle = make_oracle("oue", epsilon=2.0)
        with pytest.raises(ValueError, match="candidate indices"):
            list(
                iter_perturbed_batches(
                    oracle, np.array([7]), 4, rng=0, batch_size=8
                )
            )


# --------------------------------------------------------------------------- #
# Fuzz/property coverage — the safety floor for accepting bytes off a socket:
# any truncated or corrupted buffer must raise WireFormatError (or decode to
# a well-formed value), never hang, crash with another exception type, or
# silently mis-decode.
# --------------------------------------------------------------------------- #
def _random_batch(oracle_name: str, gen: np.random.Generator) -> ReportBatch:
    oracle = make_oracle(oracle_name, epsilon=float(gen.uniform(0.5, 6.0)))
    domain_size = int(gen.integers(2, 300))
    n = int(gen.integers(0, 64))
    values = gen.integers(0, domain_size, size=n)
    party = "".join(gen.choice(list("abcxyz-_0"), size=int(gen.integers(1, 12))))
    batches = list(
        iter_perturbed_batches(
            oracle, values, domain_size, int(gen.integers(0, 2**31)),
            batch_size=max(n, 1), party=party, level=int(gen.integers(0, 40)),
        )
    )
    if batches:
        return batches[0]
    return ReportBatch(
        party=party, level=0, oracle_name=oracle.name, epsilon=oracle.epsilon,
        domain_size=domain_size,
        value_domain=oracle.report_value_domain(domain_size),
        n_users=0, reports=oracle.perturb(values, domain_size, gen),
    )


class TestFuzzedRoundTrips:
    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_random_batches_round_trip_exactly(self, oracle_name):
        gen = np.random.default_rng(2025)
        for _ in range(25):
            batch = _random_batch(oracle_name, gen)
            encoded = encode_report_batch(batch)
            assert encoded == encode_report_batch(batch)  # canonical
            decoded = decode_report_batch(encoded)
            assert decoded.party == batch.party
            assert decoded.epsilon == batch.epsilon
            assert decoded.value_domain == batch.value_domain
            assert _reports_equal(decoded.reports, batch.reports)

    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_every_truncation_raises_wire_format_error(self, oracle_name):
        gen = np.random.default_rng(7)
        payload = encode_report_batch(_random_batch(oracle_name, gen))
        for cut in range(len(payload)):
            with pytest.raises(WireFormatError):
                decode_report_batch(payload[:cut])

    @pytest.mark.parametrize("oracle_name", available_oracles())
    def test_corrupted_batches_never_crash_or_mis_decode(self, oracle_name):
        gen = np.random.default_rng(11)
        payload = bytearray(encode_report_batch(_random_batch(oracle_name, gen)))
        for _ in range(300):
            corrupted = bytearray(payload)
            for _ in range(int(gen.integers(1, 4))):
                corrupted[int(gen.integers(0, len(corrupted)))] = int(
                    gen.integers(0, 256)
                )
            try:
                decoded = decode_report_batch(bytes(corrupted))
            except WireFormatError:
                continue  # the contract: this is the only acceptable failure
            # A flip in the report payload (not the header) can still be a
            # valid batch — but then it must be fully well-formed.
            assert decoded.n_users >= 0
            assert decoded.oracle_name.lower() in available_oracles()

    def test_truncated_broadcasts_raise_wire_format_error(self):
        broadcast = RoundBroadcast(
            party="beta", level=3, oracle_name="krr", epsilon=4.0,
            domain_size=5, prefixes=("000", "010", "110", "111"),
        )
        payload = encode_broadcast(broadcast)
        for cut in range(len(payload)):
            with pytest.raises(WireFormatError):
                decode_broadcast(payload[:cut])

    @pytest.mark.parametrize(
        "body",
        [
            b"5",                      # JSON but not an object
            b"[1, 2]",                 # wrong container
            b"{}",                     # missing every key
            b'{"party": "p"}',         # missing most keys
            b'{"party": 3, "level": 1, "oracle": "krr", "epsilon": 1.0,'
            b' "domain_size": 2, "prefixes": ["0"]}',       # party not a str
            b'{"party": "p", "level": "x", "oracle": "krr", "epsilon": 1.0,'
            b' "domain_size": 2, "prefixes": ["0"]}',       # level not an int
            b'{"party": "p", "level": 1, "oracle": "krr", "epsilon": 1.0,'
            b' "domain_size": 2, "prefixes": 7}',           # prefixes not a list
            b'{"party": "p", "level": 1, "oracle": "krr", "epsilon": 1.0,'
            b' "domain_size": 2, "prefixes": [1, 2]}',      # prefixes not strings
            b'{"party": "p", "level": 1, "oracle": "krr", "epsilon": 1.0,'
            b' "domain_size": 2, "prefixes": "0101"}',      # a string would
            # silently split into per-character prefixes
        ],
    )
    def test_malformed_broadcast_bodies_raise_wire_format_error(self, body):
        with pytest.raises(WireFormatError):
            decode_broadcast(b"RBC1" + body)

    def test_corrupted_broadcasts_never_crash(self):
        gen = np.random.default_rng(13)
        broadcast = RoundBroadcast(
            party="gamma", level=2, oracle_name="olh", epsilon=2.5,
            domain_size=9, prefixes=tuple(f"{i:03b}" for i in range(8)),
        )
        payload = bytearray(encode_broadcast(broadcast))
        for _ in range(300):
            corrupted = bytearray(payload)
            corrupted[int(gen.integers(0, len(corrupted)))] = int(gen.integers(0, 256))
            try:
                decoded = decode_broadcast(bytes(corrupted))
            except WireFormatError:
                continue
            assert isinstance(decoded.party, str)
            assert all(isinstance(p, str) for p in decoded.prefixes)

    def test_header_lying_about_n_users_cannot_mis_decode(self):
        """A tampered user count must length-mismatch, never mis-shape."""
        batch = _one_batch("krr", n=10, domain_size=20)
        payload = bytearray(encode_report_batch(batch))
        # n_users is the fourth u32 of the fixed header tail, right before
        # the f64 epsilon and the payload.
        offset = len(payload) - batch.n_users - 8 - 4
        payload[offset : offset + 4] = (batch.n_users * 2).to_bytes(4, "little")
        with pytest.raises(WireFormatError, match="bytes"):
            decode_report_batch(bytes(payload))
