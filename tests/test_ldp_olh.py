"""Tests for the OLH frequency oracle."""

import math

import numpy as np
import pytest

from repro.ldp.olh import OptimizedLocalHashing, _universal_hash


class TestHashDomain:
    def test_hash_domain_size_formula(self):
        assert OptimizedLocalHashing(1.0).hash_domain_size() == math.ceil(math.e + 1)
        assert OptimizedLocalHashing(2.0).hash_domain_size() == math.ceil(
            math.exp(2.0) + 1
        )

    def test_hash_domain_at_least_two(self):
        assert OptimizedLocalHashing(0.01).hash_domain_size() >= 2


class TestUniversalHash:
    def test_outputs_within_buckets(self):
        seeds = np.arange(100, dtype=np.int64)
        values = np.full(100, 7, dtype=np.int64)
        hashed = _universal_hash(seeds, values, 8)
        assert hashed.min() >= 0 and hashed.max() < 8

    def test_deterministic_per_seed(self):
        seeds = np.array([5, 5], dtype=np.int64)
        values = np.array([3, 3], dtype=np.int64)
        hashed = _universal_hash(seeds, values, 16)
        assert hashed[0] == hashed[1]

    def test_roughly_uniform_over_buckets(self):
        seeds = np.arange(20_000, dtype=np.int64)
        values = np.full(20_000, 42, dtype=np.int64)
        hashed = _universal_hash(seeds, values, 4)
        counts = np.bincount(hashed, minlength=4) / 20_000
        np.testing.assert_allclose(counts, 0.25, atol=0.02)


class TestSupportProbabilities:
    def test_q_is_inverse_hash_domain(self):
        oracle = OptimizedLocalHashing(2.0)
        _, q = oracle.support_probabilities(100)
        assert q == pytest.approx(1.0 / oracle.hash_domain_size())

    def test_p_exceeds_q(self):
        oracle = OptimizedLocalHashing(1.0)
        p, q = oracle.support_probabilities(100)
        assert p > q


class TestEstimation:
    def test_estimates_are_nearly_unbiased(self):
        oracle = OptimizedLocalHashing(epsilon=3.0)
        rng = np.random.default_rng(2)
        true_freqs = np.array([0.5, 0.3, 0.2])
        values = rng.choice(3, size=15_000, p=true_freqs)
        result = oracle.run(values, 3, rng=8, mode="per_user")
        np.testing.assert_allclose(result.estimated_frequencies, true_freqs, atol=0.04)

    def test_aggregate_mode_agrees_with_per_user(self):
        oracle = OptimizedLocalHashing(epsilon=2.0)
        values = np.random.default_rng(4).integers(0, 4, size=6000)
        a = oracle.run(values, 4, rng=5, mode="aggregate")
        b = oracle.run(values, 4, rng=6, mode="per_user")
        np.testing.assert_allclose(
            a.estimated_frequencies, b.estimated_frequencies, atol=0.06
        )

    def test_variance_matches_oue(self):
        from repro.ldp.oue import OptimizedUnaryEncoding

        eps, n, d = 2.5, 700, 50
        assert OptimizedLocalHashing(eps).variance(n, d) == pytest.approx(
            OptimizedUnaryEncoding(eps).variance(n, d)
        )


class TestVectorizedDecode:
    """The chunked NumPy decode must reproduce the per-candidate scan exactly."""

    @staticmethod
    def _reference_support_counts(oracle, reports, domain_size):
        """The pre-vectorisation decode: one Python pass per candidate."""
        seeds, ys = reports
        d_prime = oracle.hash_domain_size()
        counts = np.zeros(domain_size, dtype=np.int64)
        for candidate in range(domain_size):
            hashed = _universal_hash(seeds, np.full(seeds.shape, candidate), d_prime)
            counts[candidate] = int(np.count_nonzero(hashed == ys))
        return counts

    def test_matches_per_candidate_reference(self):
        oracle = OptimizedLocalHashing(epsilon=3.0)
        domain_size = 211
        values = np.random.default_rng(0).integers(0, domain_size, size=4_000)
        reports = oracle.perturb(values, domain_size, np.random.default_rng(1))
        fast = oracle.support_counts(reports, domain_size)
        assert np.array_equal(
            fast, self._reference_support_counts(oracle, reports, domain_size)
        )

    def test_chunking_boundaries_are_exact(self, monkeypatch):
        """Force tiny candidate chunks; results must not change."""
        from repro.ldp import olh as olh_module

        oracle = OptimizedLocalHashing(epsilon=2.0)
        values = np.random.default_rng(2).integers(0, 50, size=300)
        reports = oracle.perturb(values, 50, np.random.default_rng(3))
        full = oracle.support_counts(reports, 50)
        monkeypatch.setattr(olh_module, "_DECODE_BLOCK_ELEMENTS", 301)
        assert np.array_equal(oracle.support_counts(reports, 50), full)

    def test_range_decode_concatenates_to_full(self):
        oracle = OptimizedLocalHashing(epsilon=2.0)
        values = np.random.default_rng(4).integers(0, 64, size=500)
        reports = oracle.perturb(values, 64, np.random.default_rng(5))
        full = oracle.support_counts(reports, 64)
        parts = [
            oracle.support_counts_range(reports, start, stop)
            for start, stop in [(0, 10), (10, 41), (41, 64)]
        ]
        assert np.array_equal(np.concatenate(parts), full)

    def test_empty_batch(self):
        oracle = OptimizedLocalHashing(epsilon=2.0)
        empty = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert not oracle.support_counts(empty, 16).any()
        assert oracle.n_reports(empty) == 0

    def test_invalid_range(self):
        oracle = OptimizedLocalHashing(epsilon=2.0)
        reports = (np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64))
        with pytest.raises(ValueError, match="range"):
            oracle.support_counts_range(reports, 5, 2)


class TestCosts:
    def test_report_bits_independent_of_domain(self):
        oracle = OptimizedLocalHashing(epsilon=2.0)
        assert oracle.report_bits(10) == oracle.report_bits(1_000_000)

    def test_decode_cost_scales_with_domain(self):
        oracle = OptimizedLocalHashing(epsilon=2.0)
        assert oracle.decode_cost(10, 100) == 1000
