"""Tests for the OLH frequency oracle."""

import math

import numpy as np
import pytest

from repro.ldp.olh import OptimizedLocalHashing, _universal_hash


class TestHashDomain:
    def test_hash_domain_size_formula(self):
        assert OptimizedLocalHashing(1.0).hash_domain_size() == math.ceil(math.e + 1)
        assert OptimizedLocalHashing(2.0).hash_domain_size() == math.ceil(
            math.exp(2.0) + 1
        )

    def test_hash_domain_at_least_two(self):
        assert OptimizedLocalHashing(0.01).hash_domain_size() >= 2


class TestUniversalHash:
    def test_outputs_within_buckets(self):
        seeds = np.arange(100, dtype=np.int64)
        values = np.full(100, 7, dtype=np.int64)
        hashed = _universal_hash(seeds, values, 8)
        assert hashed.min() >= 0 and hashed.max() < 8

    def test_deterministic_per_seed(self):
        seeds = np.array([5, 5], dtype=np.int64)
        values = np.array([3, 3], dtype=np.int64)
        hashed = _universal_hash(seeds, values, 16)
        assert hashed[0] == hashed[1]

    def test_roughly_uniform_over_buckets(self):
        seeds = np.arange(20_000, dtype=np.int64)
        values = np.full(20_000, 42, dtype=np.int64)
        hashed = _universal_hash(seeds, values, 4)
        counts = np.bincount(hashed, minlength=4) / 20_000
        np.testing.assert_allclose(counts, 0.25, atol=0.02)


class TestSupportProbabilities:
    def test_q_is_inverse_hash_domain(self):
        oracle = OptimizedLocalHashing(2.0)
        _, q = oracle.support_probabilities(100)
        assert q == pytest.approx(1.0 / oracle.hash_domain_size())

    def test_p_exceeds_q(self):
        oracle = OptimizedLocalHashing(1.0)
        p, q = oracle.support_probabilities(100)
        assert p > q


class TestEstimation:
    def test_estimates_are_nearly_unbiased(self):
        oracle = OptimizedLocalHashing(epsilon=3.0)
        rng = np.random.default_rng(2)
        true_freqs = np.array([0.5, 0.3, 0.2])
        values = rng.choice(3, size=15_000, p=true_freqs)
        result = oracle.run(values, 3, rng=8, mode="per_user")
        np.testing.assert_allclose(result.estimated_frequencies, true_freqs, atol=0.04)

    def test_aggregate_mode_agrees_with_per_user(self):
        oracle = OptimizedLocalHashing(epsilon=2.0)
        values = np.random.default_rng(4).integers(0, 4, size=6000)
        a = oracle.run(values, 4, rng=5, mode="aggregate")
        b = oracle.run(values, 4, rng=6, mode="per_user")
        np.testing.assert_allclose(
            a.estimated_frequencies, b.estimated_frequencies, atol=0.06
        )

    def test_variance_matches_oue(self):
        from repro.ldp.oue import OptimizedUnaryEncoding

        eps, n, d = 2.5, 700, 50
        assert OptimizedLocalHashing(eps).variance(n, d) == pytest.approx(
            OptimizedUnaryEncoding(eps).variance(n, d)
        )


class TestCosts:
    def test_report_bits_independent_of_domain(self):
        oracle = OptimizedLocalHashing(epsilon=2.0)
        assert oracle.report_bits(10) == oracle.report_bits(1_000_000)

    def test_decode_cost_scales_with_domain(self):
        oracle = OptimizedLocalHashing(epsilon=2.0)
        assert oracle.decode_cost(10, 100) == 1000
