"""The resumable run store: persistence, resume semantics, bit-identity."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import ExperimentSettings, iter_cells, run_sweep
from repro.experiments.store import StoreError, SweepCellStore, cell_key


def smoke_settings(**updates) -> ExperimentSettings:
    base = ExperimentSettings().smoke().with_updates(
        repetitions=2, mechanisms=("fedpem", "taps")
    )
    return base.with_updates(**updates) if updates else base


def strip_runtime(records):
    """Drop the one wall-clock key; everything else must be bit-identical."""
    return [{k: v for k, v in r.items() if k != "runtime_seconds"} for r in records]


class TestStoreBasics:
    def test_append_then_reload(self, tmp_path):
        settings = smoke_settings()
        cells = list(iter_cells(settings))
        path = tmp_path / "cells.jsonl"
        with SweepCellStore(path, fingerprint="fp") as store:
            store.append(cells[0], {"f1": 0.5, "dataset": "rdb"})
            assert cells[0] in store and cells[1] not in store
        with SweepCellStore(path, fingerprint="fp", resume=True) as reloaded:
            assert len(reloaded) == 1
            assert reloaded.get(cells[0])["f1"] == 0.5

    def test_refuses_existing_without_resume(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        SweepCellStore(path).close()
        with pytest.raises(StoreError, match="resume"):
            SweepCellStore(path)

    def test_overwrite_truncates(self, tmp_path):
        settings = smoke_settings()
        cell = next(iter_cells(settings))
        path = tmp_path / "cells.jsonl"
        with SweepCellStore(path) as store:
            store.append(cell, {"f1": 1.0})
        with SweepCellStore(path, overwrite=True) as store:
            assert len(store) == 0

    def test_fingerprint_mismatch(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        SweepCellStore(path, fingerprint="aaaa").close()
        with pytest.raises(StoreError, match="different sweep spec"):
            SweepCellStore(path, fingerprint="bbbb", resume=True)

    def test_partial_trailing_line_is_dropped(self, tmp_path):
        settings = smoke_settings()
        cell = next(iter_cells(settings))
        path = tmp_path / "cells.jsonl"
        with SweepCellStore(path, fingerprint="fp") as store:
            store.append(cell, {"f1": 1.0})
        with path.open("a") as handle:
            handle.write('{"key": ["rdb", "ta')  # mid-write kill
        with SweepCellStore(path, fingerprint="fp", resume=True) as store:
            assert len(store) == 1

    def test_appends_after_a_partial_line_do_not_glue(self, tmp_path):
        # A second kill+resume cycle must survive the first: the partial
        # fragment is truncated away on resume, so the next append starts
        # on its own line instead of corrupting the store.
        settings = smoke_settings()
        cells = list(iter_cells(settings))
        path = tmp_path / "cells.jsonl"
        with SweepCellStore(path, fingerprint="fp") as store:
            store.append(cells[0], {"f1": 1.0})
        with path.open("a") as handle:
            handle.write('{"key": ["rdb", "ta')  # kill #1, mid-write
        with SweepCellStore(path, fingerprint="fp", resume=True) as store:
            store.append(cells[1], {"f1": 0.5})  # the resumed run's work
        with SweepCellStore(path, fingerprint="fp", resume=True) as store:
            assert len(store) == 2  # kill #2: both cells load cleanly
            assert store.get(cells[1])["f1"] == 0.5

    def test_unterminated_but_parseable_tail_is_recomputed(self, tmp_path):
        # A tail with no newline is untrustworthy even if it parses: it may
        # be a complete record whose newline never hit disk.  Dropping it
        # (one cell recomputed) keeps the append path glue-free.
        settings = smoke_settings()
        cells = list(iter_cells(settings))
        path = tmp_path / "cells.jsonl"
        with SweepCellStore(path, fingerprint="fp") as store:
            store.append(cells[0], {"f1": 1.0})
            store.append(cells[1], {"f1": 0.5})
        with path.open("r+", encoding="utf-8") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            handle.truncate(size - 1)  # chop only the final newline
        with SweepCellStore(path, fingerprint="fp", resume=True) as store:
            assert cells[0] in store and cells[1] not in store

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        header = {"kind": "repro-sweep-cells", "version": 1, "fingerprint": None}
        path.write_text(
            json.dumps(header) + "\n" + "garbage\n" + json.dumps(header) + "\n"
        )
        with pytest.raises(StoreError, match="corrupt"):
            SweepCellStore(path, resume=True)

    def test_not_a_store_file(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        path.write_text('{"records": []}\n')
        with pytest.raises(StoreError, match="not a sweep cell store"):
            SweepCellStore(path, resume=True)


class TestResumeSemantics:
    def test_fresh_store_run_matches_plain_run(self, tmp_path):
        settings = smoke_settings()
        plain = run_sweep(settings)
        with SweepCellStore(tmp_path / "cells.jsonl") as store:
            stored = run_sweep(settings, store=store)
            assert len(store) == len(plain.records)
        assert strip_runtime(stored.records) == strip_runtime(plain.records)

    def test_resume_skips_completed_cells(self, tmp_path):
        settings = smoke_settings()
        cells = list(iter_cells(settings))
        full = run_sweep(settings)

        # Simulate a sweep killed halfway: persist only the first half of
        # the grid (with sentinel runtimes proving those cells are reused).
        path = tmp_path / "cells.jsonl"
        with SweepCellStore(path) as store:
            for cell, record in zip(cells[:2], full.records[:2]):
                store.append(cell, {**record, "runtime_seconds": -1.0})

        with SweepCellStore(path, resume=True) as store:
            resumed = run_sweep(settings, store=store)
            assert len(store) == len(cells)

        # The first half came from the store (sentinel intact = not rerun),
        # and the merged records equal the uninterrupted run bit-for-bit
        # modulo wall-clock.
        assert [r["runtime_seconds"] for r in resumed.records[:2]] == [-1.0, -1.0]
        assert strip_runtime(resumed.records) == strip_runtime(full.records)

    def test_store_runs_are_identical_across_backends(self, tmp_path):
        settings = smoke_settings()
        with SweepCellStore(tmp_path / "serial.jsonl") as store:
            serial = run_sweep(settings, store=store)
        with SweepCellStore(tmp_path / "thread.jsonl") as store:
            threaded = run_sweep(settings, backend="thread", max_workers=2, store=store)
        assert strip_runtime(serial.records) == strip_runtime(threaded.records)

    def test_thread_backend_resume_round_trip(self, tmp_path):
        settings = smoke_settings()
        full = run_sweep(settings)
        cells = list(iter_cells(settings))
        path = tmp_path / "cells.jsonl"
        with SweepCellStore(path) as store:
            store.append(cells[0], full.records[0])
        with SweepCellStore(path, resume=True) as store:
            resumed = run_sweep(settings, backend="thread", max_workers=2, store=store)
        assert strip_runtime(resumed.records) == strip_runtime(full.records)

    def test_cell_keys_are_unique_across_the_grid(self):
        settings = smoke_settings().with_updates(
            epsilons=(2.0, 4.0), ks=(5, 10), repetitions=2
        )
        cells = list(iter_cells(settings))
        keys = {cell_key(c) for c in cells}
        assert len(keys) == len(cells)
