"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_children, stable_choice


class TestAsGenerator:
    def test_none_returns_generator(self):
        gen = as_generator(None)
        assert isinstance(gen, np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1_000_000, size=20)
        b = as_generator(2).integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = as_generator(np.random.SeedSequence(5))
        assert isinstance(gen, np.random.Generator)


class TestSpawnChildren:
    def test_returns_requested_count(self):
        children = spawn_children(np.random.default_rng(0), 5)
        assert len(children) == 5
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_children_are_independent_streams(self):
        children = spawn_children(np.random.default_rng(0), 2)
        a = children[0].integers(0, 1_000_000, size=50)
        b = children[1].integers(0, 1_000_000, size=50)
        assert not np.array_equal(a, b)

    def test_deterministic_given_parent_seed(self):
        a = spawn_children(np.random.default_rng(9), 3)[2].integers(0, 100, size=5)
        b = spawn_children(np.random.default_rng(9), 3)[2].integers(0, 100, size=5)
        np.testing.assert_array_equal(a, b)

    def test_zero_children(self):
        assert spawn_children(np.random.default_rng(0), 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_children(np.random.default_rng(0), -1)


class TestStableChoice:
    def test_single_choice_from_options(self):
        value = stable_choice(np.random.default_rng(0), ["a", "bb", "ccc"])
        assert value in {"a", "bb", "ccc"}

    def test_sized_choice_returns_list(self):
        values = stable_choice(np.random.default_rng(0), ["x", "y"], size=10)
        assert len(values) == 10
        assert set(values) <= {"x", "y"}

    def test_empty_options_raise(self):
        with pytest.raises(ValueError):
            stable_choice(np.random.default_rng(0), [])
