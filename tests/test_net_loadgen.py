"""The multiprocess load generator: totals, backends, scenario replay."""

from __future__ import annotations

import pytest

from repro.datasets.registry import load_dataset
from repro.net import run_loadgen, start_gateway
from repro.scenarios.spec import ScenarioSpec


@pytest.fixture(scope="module")
def gateway():
    with start_gateway(decode_backend="thread", decode_workers=2) as handle:
        yield handle


def _tiny_scenario() -> ScenarioSpec:
    return ScenarioSpec.from_dict(
        {
            "name": "loadgen-replay",
            "base": {"kind": "zipf", "n_items": 32, "n_bits": 8, "seed": 3},
            "n_steps": 4,
            "batch_size": 200,
            "k": 3,
        }
    )


class TestDatasetWorkloads:
    def test_totals_and_latency_summary(self, gateway):
        dataset = load_dataset("rdb", scale="tiny", seed=0)
        report = run_loadgen(
            gateway.address, dataset=dataset, level=4, batch_size=256,
            connections=3, rounds=2, backend="serial", seed=0,
        )
        assert report.connections == 3 and report.rounds == 2
        assert report.n_reports == sum(
            entry["n_reports"] for entry in report.per_connection
        )
        assert report.n_batches >= 3 * 2  # at least one batch per (pool, round)
        assert report.reports_per_sec > 0
        assert report.latency_ms["count"] == report.n_batches
        assert 0 < report.latency_ms["p50"] <= report.latency_ms["p99"]
        assert report.upload_bits > 0 and report.broadcast_bits > 0
        # Parties assign round-robin: 3 connections over a 2-party dataset.
        pools = [entry["pool"] for entry in report.per_connection]
        assert len(pools) == 3 and len(set(pools)) == 3
        for entry in report.per_connection:
            assert entry["top_prefixes"], "every pool reports estimated top prefixes"

    def test_wire_bits_are_seed_deterministic(self, gateway):
        kwargs = dict(
            dataset="rdb", scale="tiny", dataset_seed=0, level=4,
            batch_size=128, connections=2, rounds=1, seed=42,
        )
        first = run_loadgen(gateway.address, backend="serial", **kwargs)
        second = run_loadgen(gateway.address, backend="thread", **kwargs)
        # Timing differs; the bytes on the wire must not.
        assert first.upload_bits == second.upload_bits
        assert first.broadcast_bits == second.broadcast_bits
        assert [e["top_prefixes"] for e in first.per_connection] == [
            e["top_prefixes"] for e in second.per_connection
        ]

    def test_level_is_capped_at_the_workload_bits(self, gateway):
        report = run_loadgen(
            gateway.address, dataset="rdb", scale="tiny", level=64,
            connections=1, backend="serial", seed=0,
        )
        assert report.level == load_dataset("rdb", scale="tiny", seed=2025).n_bits

    def test_users_per_round_bounds_the_stream(self, gateway):
        report = run_loadgen(
            gateway.address, dataset="rdb", scale="tiny", level=4,
            connections=2, rounds=2, users_per_round=50,
            backend="serial", seed=1,
        )
        assert report.n_reports == 2 * 2 * 50

    def test_process_backend_spawns_real_client_processes(self, gateway):
        report = run_loadgen(
            gateway.address, dataset="rdb", scale="tiny", level=4,
            batch_size=256, connections=2, backend="process", max_workers=2,
            seed=3,
        )
        assert report.backend == "process"
        assert report.n_reports > 0
        assert report.latency_ms["count"] == report.n_batches

    def test_report_to_dict_is_json_safe(self, gateway):
        import json

        report = run_loadgen(
            gateway.address, dataset="rdb", scale="tiny", level=4,
            connections=1, backend="serial", seed=0,
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["workload"] == "dataset:rdb"
        assert "latencies" not in payload["per_connection"][0]
        assert payload["gateway"]["upload_bits"] > 0
        assert "reports/s" in report.render()


class TestAdaptiveLoadgen:
    def test_adaptive_controller_drives_and_traces(self, gateway):
        report = run_loadgen(
            gateway.address, dataset="rdb", scale="tiny", level=4,
            connections=2, rounds=3, batch_size=256, backend="serial", seed=0,
            adaptive={"target_p95_ms": 500.0, "min_batch_size": 128,
                      "max_batch_size": 1024},
        )
        payload = report.to_dict()
        assert payload["adaptive"]["target_p95_ms"] == 500.0
        for entry in payload["per_connection"]:
            trace = entry["controller"]
            assert len(trace) == 3  # one decision per round
            for decision in trace:
                assert 128 <= decision["batch_size"] <= 1024
                assert decision["action"] in (
                    "probe", "increase", "decrease", "hold", "converged"
                )
        # The run is still complete and correct under moving batch sizes.
        assert report.n_reports == sum(
            entry["n_reports"] for entry in report.per_connection
        )

    def test_adaptive_off_keeps_report_shape_unchanged(self, gateway):
        report = run_loadgen(
            gateway.address, dataset="rdb", scale="tiny", level=4,
            connections=1, backend="serial", seed=0,
        )
        payload = report.to_dict()
        assert "adaptive" not in payload
        assert "controller" not in payload["per_connection"][0]

    def test_adaptive_wire_bytes_unchanged(self, gateway):
        """The controller only re-slices batches — bytes on the wire are
        batch-size-dependent (per-batch headers), but reports are not."""
        kwargs = dict(dataset="rdb", scale="tiny", dataset_seed=0, level=4,
                      connections=1, rounds=2, backend="serial", seed=5)
        fixed = run_loadgen(gateway.address, batch_size=256, **kwargs)
        adaptive = run_loadgen(
            gateway.address, batch_size=256, adaptive=True, **kwargs
        )
        assert adaptive.n_reports == fixed.n_reports

    def test_adaptive_rejects_junk(self, gateway):
        with pytest.raises(ValueError, match="adaptive"):
            run_loadgen(
                gateway.address, dataset="rdb", scale="tiny",
                connections=1, backend="serial", adaptive="turbo",
            )


class TestScenarioReplay:
    def test_each_connection_replays_the_arrival_stream(self, gateway):
        spec = _tiny_scenario()
        report = run_loadgen(
            gateway.address, scenario=spec, level=6, batch_size=300,
            connections=2, backend="serial", seed=0,
        )
        # 4 steps x 200 arrivals per replayed stream, per connection.
        assert report.n_reports == 2 * 4 * 200
        assert report.workload == "scenario:loadgen-replay"
        assert report.level == 6  # capped at the scenario's 8 bits, not below

    def test_scenario_replay_is_seed_deterministic(self, gateway):
        spec = _tiny_scenario()
        kwargs = dict(scenario=spec, level=5, connections=2, seed=9)
        first = run_loadgen(gateway.address, backend="serial", **kwargs)
        second = run_loadgen(gateway.address, backend="serial", **kwargs)
        assert first.upload_bits == second.upload_bits
        assert [e["top_prefixes"] for e in first.per_connection] == [
            e["top_prefixes"] for e in second.per_connection
        ]
