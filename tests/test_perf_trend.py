"""The shared trend engine (:mod:`repro.perf.trend`).

Covers the verdict ladder, ratio orientation for both directions,
calibrated (machine-normalized) comparison, and every skip path — each
skip must carry its reason, never silence.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.calibrate import MachineCalibration
from repro.perf.trend import TrendPolicy, TrendReport, trend_vs_previous


def _calibration(ops_per_sec: float) -> MachineCalibration:
    return MachineCalibration(
        ops_per_sec=ops_per_sec,
        elapsed_seconds=0.1,
        work_units=1000,
        repetitions=1,
        cpu_count=1,
        effective_cores=1,
    )


POLICY = TrendPolicy(value="reports_per_sec", direction="higher")
KEY = ("oracle",)


def _payload(entries, ops_per_sec=1e6):
    return {"entries": entries, "calibration": _calibration(ops_per_sec).to_dict()}


def test_policy_verdict_ladder():
    policy = TrendPolicy(warn_ratio=0.75, fail_ratio=0.5)
    assert policy.verdict_for(1.2) == "pass"
    assert policy.verdict_for(0.75) == "pass"
    assert policy.verdict_for(0.74) == "warn"
    assert policy.verdict_for(0.51) == "warn"
    # An exact 2x slowdown is a fail, not a warn: the boundary is <=.
    assert policy.verdict_for(0.5) == "fail"
    assert policy.verdict_for(0.1) == "fail"


def test_policy_validation():
    with pytest.raises(ValueError, match="direction"):
        TrendPolicy(direction="sideways")
    with pytest.raises(ValueError, match="tolerances"):
        TrendPolicy(warn_ratio=0.5, fail_ratio=0.75)
    with pytest.raises(ValueError, match="tolerances"):
        TrendPolicy(fail_ratio=0.0)


def test_no_baseline_marks_everything_new():
    report = trend_vs_previous(
        [{"oracle": "krr", "reports_per_sec": 100.0}],
        None,
        key_fields=KEY,
        policy=POLICY,
        calibration=_calibration(1e6),
    )
    assert report.baseline is None
    assert [c.verdict for c in report.comparisons] == ["new"]
    assert report.verdict == "pass"  # new is not a regression


def test_same_machine_same_speed_passes():
    previous = _payload([{"oracle": "krr", "reports_per_sec": 100.0}])
    report = trend_vs_previous(
        [{"oracle": "krr", "reports_per_sec": 99.0}],
        previous,
        key_fields=KEY,
        policy=POLICY,
        calibration=_calibration(1e6),
    )
    (comparison,) = report.comparisons
    assert comparison.verdict == "pass"
    assert comparison.ratio == pytest.approx(0.99)


def test_calibration_excuses_a_slower_machine():
    """Half the throughput on a half-speed machine is NOT a regression."""
    previous = _payload([{"oracle": "krr", "reports_per_sec": 100.0}], ops_per_sec=2e6)
    report = trend_vs_previous(
        [{"oracle": "krr", "reports_per_sec": 50.0}],
        previous,
        key_fields=KEY,
        policy=POLICY,
        calibration=_calibration(1e6),
    )
    (comparison,) = report.comparisons
    assert comparison.verdict == "pass"
    assert comparison.ratio == pytest.approx(1.0)


def test_calibration_unmasks_a_faster_machine():
    """Same raw throughput on a 2x faster machine IS a 2x regression."""
    previous = _payload([{"oracle": "krr", "reports_per_sec": 100.0}], ops_per_sec=1e6)
    report = trend_vs_previous(
        [{"oracle": "krr", "reports_per_sec": 100.0}],
        previous,
        key_fields=KEY,
        policy=POLICY,
        calibration=_calibration(2e6),
    )
    (comparison,) = report.comparisons
    assert comparison.verdict == "fail"
    assert comparison.ratio == pytest.approx(0.5)
    assert report.verdict == "fail"
    assert report.warnings  # fail comparisons render printable messages


def test_lower_is_better_direction_orients_ratio():
    policy = TrendPolicy(value="cost_ratio", direction="lower", normalize=False)
    previous = {"entries": [{"measure": "serial", "cost_ratio": 10.0}]}
    report = trend_vs_previous(
        [{"measure": "serial", "cost_ratio": 5.0}],  # cost halved: good
        previous,
        key_fields=("measure",),
        policy=policy,
    )
    (comparison,) = report.comparisons
    assert comparison.ratio == pytest.approx(2.0)
    assert comparison.verdict == "pass"
    report = trend_vs_previous(
        [{"measure": "serial", "cost_ratio": 20.0}],  # cost doubled: fail
        previous,
        key_fields=("measure",),
        policy=policy,
    )
    assert report.comparisons[0].verdict == "fail"


def test_uncalibrated_baseline_skips_with_reason():
    previous = {"entries": [{"oracle": "krr", "reports_per_sec": 100.0}]}
    report = trend_vs_previous(
        [{"oracle": "krr", "reports_per_sec": 1.0}],
        previous,
        key_fields=KEY,
        policy=POLICY,
        calibration=_calibration(1e6),
    )
    (comparison,) = report.comparisons
    assert comparison.verdict == "skip"
    assert "uncalibrated" in comparison.reason
    assert report.verdict == "pass"  # a skip is not a regression


def test_uncalibrated_run_skips_with_reason():
    previous = _payload([{"oracle": "krr", "reports_per_sec": 100.0}])
    report = trend_vs_previous(
        [{"oracle": "krr", "reports_per_sec": 1.0}],
        previous,
        key_fields=KEY,
        policy=POLICY,
        calibration=None,
    )
    assert report.comparisons[0].verdict == "skip"
    assert "run is uncalibrated" in report.comparisons[0].reason


def test_skipped_entry_carries_its_reason_through():
    report = trend_vs_previous(
        [{"oracle": "olh", "skipped_reason": "needs >=2 cores"}],
        _payload([{"oracle": "olh", "reports_per_sec": 50.0}]),
        key_fields=KEY,
        policy=POLICY,
        calibration=_calibration(1e6),
    )
    (comparison,) = report.comparisons
    assert comparison.verdict == "skip"
    assert comparison.reason == "needs >=2 cores"


def test_previous_may_be_a_path(tmp_path):
    path = tmp_path / "artifact.json"
    path.write_text(json.dumps(_payload([{"oracle": "krr", "reports_per_sec": 100.0}])))
    report = trend_vs_previous(
        [{"oracle": "krr", "reports_per_sec": 100.0}],
        path,
        key_fields=KEY,
        policy=POLICY,
        calibration=_calibration(1e6),
    )
    assert report.baseline == "committed"
    assert report.comparisons[0].verdict == "pass"
    # A missing/corrupt path degrades to "no baseline", never raises.
    report = trend_vs_previous(
        [{"oracle": "krr", "reports_per_sec": 100.0}],
        tmp_path / "missing.json",
        key_fields=KEY,
        policy=POLICY,
        calibration=_calibration(1e6),
    )
    assert report.baseline is None


def test_report_round_trips_to_dict():
    report = trend_vs_previous(
        [
            {"oracle": "krr", "reports_per_sec": 100.0},
            {"oracle": "oue", "skipped_reason": "not measured"},
        ],
        _payload([{"oracle": "krr", "reports_per_sec": 400.0}]),
        key_fields=KEY,
        policy=POLICY,
        calibration=_calibration(1e6),
    )
    data = report.to_dict()
    assert data["baseline"] == "committed"
    assert data["verdict"] == "fail"
    assert TrendPolicy.from_dict(data["policy"]) == POLICY
    verdicts = {c["key"]["oracle"]: c["verdict"] for c in data["comparisons"]}
    assert verdicts == {"krr": "fail", "oue": "skip"}
    assert data["warnings"] and "0.25x" in data["warnings"][0]


def test_worst_verdict_wins():
    report = TrendReport(baseline="committed", policy=POLICY, comparisons=())
    assert report.verdict == "pass"


@given(
    value=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    old_value=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    ops=st.floats(min_value=1e3, max_value=1e9, allow_nan=False),
    speed=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_ratio_is_machine_invariant(value, old_value, ops, speed):
    """Scaling both the machine's speed and its throughput cancels out."""
    previous = _payload([{"oracle": "krr", "reports_per_sec": old_value}], ops_per_sec=ops)
    base = trend_vs_previous(
        [{"oracle": "krr", "reports_per_sec": value}],
        previous,
        key_fields=KEY,
        policy=POLICY,
        calibration=_calibration(ops),
    ).comparisons[0]
    scaled = trend_vs_previous(
        [{"oracle": "krr", "reports_per_sec": value * speed}],
        previous,
        key_fields=KEY,
        policy=POLICY,
        calibration=_calibration(ops * speed),
    ).comparisons[0]
    assert scaled.ratio == pytest.approx(base.ratio, rel=1e-9)
    assert scaled.verdict == base.verdict
