"""The cluster invariant (ISSUE 7's acceptance criterion):

For a fixed seed, discovery over a live **N-shard localhost cluster** is
bit-identical — per-round estimates, per-message transcript, exact
wire-bit totals — to a single gateway and to in-memory service mode, for
TAP (k-RR) and an OLH-decoding mechanism on the serial and thread
backends, including a scenario-replay loadgen workload.  Shard fan-out is
transport, never semantics.

Failure taxonomy coverage: a clean shard shutdown mid-run surfaces as a
structured ``shard_unavailable`` error (no hang, no crash), a ring change
between open and barrier as ``ring_version_mismatch``, and a disagreeing
shard export as ``shard_mismatch``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cluster.coordinator import (
    ClusterConnection,
    ClusterCoordinator,
    parse_cluster_addresses,
    run_over_cluster,
)
from repro.core.config import MechanismConfig
from repro.core.tap import TAPMechanism
from repro.core.taps import TAPSMechanism
from repro.net import run_over_network, start_gateway
from repro.service.protocol import RoundBroadcast, encode_report_batch
from repro.service.server import ServiceError, run_in_service_mode
from repro.trie.candidate_domain import CandidateDomain


@pytest.fixture(scope="module")
def shard_pool():
    """Three live gateways; tests slice 2- and 3-shard clusters off them."""
    handles = [
        start_gateway(decode_backend="thread", decode_workers=2) for _ in range(3)
    ]
    yield handles
    for handle in handles:
        handle.close()


def _cluster_address(shard_pool, n_shards: int) -> str:
    return ",".join(handle.address for handle in shard_pool[:n_shards])


def _config(dataset, **overrides) -> MechanismConfig:
    base = dict(
        k=5,
        epsilon=4.0,
        n_bits=dataset.n_bits,
        granularity=5,
        simulation_mode="per_user",
        report_batch_size=64,
    )
    base.update(overrides)
    return MechanismConfig(**base)


def _assert_bit_identical(service, network):
    assert network.heavy_hitters == service.heavy_hitters
    assert network.estimated_counts == service.estimated_counts
    assert set(network.party_records) == set(service.party_records)
    for name, svc_record in service.party_records.items():
        net_record = network.party_records[name]
        assert net_record.local_heavy_hitters == svc_record.local_heavy_hitters
        assert net_record.levels == svc_record.levels
    assert network.accountant.records == service.accountant.records
    assert [
        (m.direction, m.party, m.kind, m.payload_bits, m.level)
        for m in network.transcript.messages
    ] == [
        (m.direction, m.party, m.kind, m.payload_bits, m.level)
        for m in service.transcript.messages
    ]
    assert network.transcript.bits_by_kind() == service.transcript.bits_by_kind()


#: TAP over k-RR plus an OLH-decoding mechanism: OLH exercises every
#: shard's sharded decode path under the cluster's batch routing.
CASES = [(TAPMechanism, "krr"), (TAPSMechanism, "olh")]


@pytest.mark.parametrize("n_shards", [2, 3])
@pytest.mark.parametrize("backend", ["serial", "thread"])
@pytest.mark.parametrize("mechanism_cls,oracle", CASES)
class TestClusterBitIdentical:
    def test_discovery_over_live_cluster(
        self, mechanism_cls, oracle, backend, n_shards, shard_pool, two_party_dataset
    ):
        config = _config(
            two_party_dataset, oracle=oracle, backend=backend,
            max_workers=2 if backend == "thread" else None,
        )
        mechanism = mechanism_cls(config)
        service = run_in_service_mode(mechanism, two_party_dataset, rng=123)
        cluster = run_over_network(
            mechanism,
            two_party_dataset,
            _cluster_address(shard_pool, n_shards),
            rng=123,
        )
        _assert_bit_identical(service, cluster)


class TestClusterVsSingleGateway:
    def test_cluster_matches_single_gateway_run(self, shard_pool, two_party_dataset):
        config = _config(two_party_dataset)
        single = run_over_network(
            TAPMechanism(config), two_party_dataset, shard_pool[0].address, rng=321
        )
        cluster = run_over_cluster(
            TAPMechanism(config),
            two_party_dataset,
            [h.address for h in shard_pool],
            rng=321,
        )
        _assert_bit_identical(single, cluster)

    def test_scenario_replay_workload_is_identical(self, shard_pool):
        """One scenario-replay loadgen workload: same seed, same scenario,
        driven once at a single gateway and once at a 2-shard cluster —
        every deterministic measurement must agree."""
        from repro.net.loadgen import run_loadgen
        from repro.scenarios.spec import ScenarioSpec

        scenario = ScenarioSpec.from_dict(
            {
                "name": "cluster-replay",
                "base": {"kind": "zipf", "n_items": 64, "n_bits": 8,
                         "exponent": 2.0, "seed": 5},
                "n_steps": 4,
                "batch_size": 200,
                "k": 4,
                "window_batches": 2,
                "stride": 2,
                "effects": [{"kind": "drift", "mode": "gradual", "start": 1,
                             "duration": 2}],
            }
        )
        kwargs = dict(
            scenario=scenario, connections=1, rounds=2, oracle="krr",
            epsilon=4.0, level=5, batch_size=128, backend="serial", seed=9,
            include_gateway_stats=False,
        )
        single = run_loadgen(shard_pool[0].address, **kwargs)
        cluster = run_loadgen(_cluster_address(shard_pool, 2), **kwargs)
        assert cluster.shards == 2 and single.shards == 1
        for field_name in ("n_reports", "n_batches", "upload_bits", "broadcast_bits"):
            assert getattr(cluster, field_name) == getattr(single, field_name)
        assert [e["top_prefixes"] for e in cluster.per_connection] == [
            e["top_prefixes"] for e in single.per_connection
        ]


def _open_test_round(connection, *, level: int = 4, party: str = "alpha"):
    domain = CandidateDomain.full_domain(level)
    round_id, _ = connection.open_round(
        RoundBroadcast(
            party=party,
            level=level,
            oracle_name="krr",
            epsilon=4.0,
            domain_size=domain.size,
            prefixes=tuple(domain.prefixes),
        )
    )
    return round_id, domain


def _one_payload(domain, *, party: str = "alpha", level: int = 4) -> bytes:
    import numpy as np

    from repro.ldp.registry import make_oracle
    from repro.service.protocol import ReportBatch

    oracle = make_oracle("krr", 4.0)
    gen = np.random.default_rng(0)
    values = gen.integers(0, domain.size, size=32)
    reports = oracle.perturb(values, domain.size, gen)
    return encode_report_batch(
        ReportBatch(
            party=party, level=level, oracle_name=oracle.name, epsilon=4.0,
            domain_size=domain.size,
            value_domain=oracle.report_value_domain(domain.size),
            n_users=len(values), reports=reports,
        )
    )


class TestFailureTaxonomy:
    def test_clean_shard_shutdown_surfaces_shard_unavailable(self):
        """A shard stopping mid-benchmark must surface as a structured
        ``shard_unavailable`` error — bounded by socket timeouts, so no
        hang — and must not crash the coordinator."""
        survivor = start_gateway()
        victim = start_gateway()
        try:
            with ClusterConnection(
                f"{survivor.address},{victim.address}", timeout=5.0
            ) as connection:
                round_id, domain = _open_test_round(connection)
                payload = _one_payload(domain)
                for _ in range(4):
                    connection.send_batch(round_id, payload)
                victim.close()  # clean shutdown, mid-round
                with pytest.raises(ServiceError) as err:
                    # Keep streaming into the dead shard until the loss
                    # surfaces; the barrier flushes whatever the sends miss.
                    for _ in range(64):
                        connection.send_batch(round_id, payload)
                    connection.finalize(round_id)
                assert err.value.code == "shard_unavailable"
        finally:
            survivor.close()
            victim.close()

    def test_shutdown_cluster_tolerates_dead_shards(self):
        first = start_gateway()
        second = start_gateway()
        connection = ClusterConnection(f"{first.address},{second.address}", timeout=5.0)
        try:
            second.close()
            # One shard already gone: graceful shutdown still completes.
            connection.shutdown_cluster()
        finally:
            connection.close()
            first.close()
            second.close()

    def test_ring_change_mid_round_surfaces_ring_version_mismatch(self):
        from repro.cluster.ring import HashRing

        first = start_gateway()
        second = start_gateway()
        try:
            with ClusterConnection(
                f"{first.address},{second.address}", timeout=5.0
            ) as connection:
                round_id, _ = _open_test_round(connection)
                connection.ring = HashRing(2, seed=99)
                with pytest.raises(ServiceError) as err:
                    connection.finalize(round_id)
                assert err.value.code == "ring_version_mismatch"
        finally:
            first.close()
            second.close()

    def test_disagreeing_shard_export_surfaces_shard_mismatch(self):
        first = start_gateway()
        second = start_gateway()
        try:
            with ClusterConnection(
                f"{first.address},{second.address}", timeout=5.0
            ) as connection:
                round_id, _ = _open_test_round(connection)
                # Corrupt the coordinator's view of the round: the shards'
                # (truthful) exports now disagree with it field-for-field.
                connection._rounds[round_id].epsilon = 9.99
                with pytest.raises(ServiceError) as err:
                    connection.finalize(round_id)
                assert err.value.code == "shard_mismatch"
        finally:
            first.close()
            second.close()

    def test_unknown_and_closed_rounds_keep_their_codes(self):
        gateway = start_gateway()
        try:
            with ClusterConnection(gateway.address, timeout=5.0) as connection:
                with pytest.raises(ServiceError) as err:
                    connection.finalize(7)
                assert err.value.code == "unknown_round"
                round_id, domain = _open_test_round(connection)
                connection.send_batch(round_id, _one_payload(domain))
                connection.finalize(round_id)
                with pytest.raises(ServiceError) as err:
                    connection.finalize(round_id)
                assert err.value.code == "round_closed"
        finally:
            gateway.close()


class TestClusterSurface:
    def test_address_parsing_rejects_duplicates_and_garbage(self):
        assert parse_cluster_addresses("h1:1, h2:2") == ["h1:1", "h2:2"]
        assert parse_cluster_addresses(["h1:1"]) == ["h1:1"]
        with pytest.raises(ValueError, match="twice"):
            parse_cluster_addresses("h1:1,h1:1")
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_cluster_addresses("h1:1,,h2:2")
        with pytest.raises(ValueError):
            parse_cluster_addresses("no-port")

    def test_coordinator_pickles_without_its_sockets(self, shard_pool):
        """Process-backend workers receive coordinator copies by pickle;
        the live connections must be dropped and rebuilt lazily."""
        coordinator = ClusterCoordinator(_cluster_address(shard_pool, 2))
        assert coordinator._conn() is not None
        clone = pickle.loads(pickle.dumps(coordinator))
        assert clone._connection is None
        assert clone.shard_addresses == coordinator.shard_addresses
        coordinator.shutdown()

    def test_connecting_to_a_dead_shard_is_shard_unavailable(self, shard_pool):
        live = shard_pool[0].address
        with pytest.raises(ServiceError) as err:
            ClusterConnection(f"{live},127.0.0.1:9", timeout=2.0)
        assert err.value.code == "shard_unavailable"
