"""Tests for dataset generators, distributions, partitioning and the registry."""

import numpy as np
import pytest

from repro.datasets.base import FederatedDataset
from repro.datasets.distributions import (
    perturbed_ranking,
    poisson_frequencies,
    sample_from_frequencies,
    scatter_item_ids,
    zipf_frequencies,
)
from repro.datasets.partition import dirichlet_domain_partition
from repro.datasets.registry import DATASET_NAMES, SCALES, load_dataset
from repro.datasets.synthetic import make_syn
from repro.datasets.textlike import make_rdb, make_tys, make_ycm
from repro.datasets.uba import make_uba
from repro.federation.party import Party


class TestDistributions:
    def test_zipf_normalised_and_decreasing(self):
        freqs = zipf_frequencies(100, 1.2)
        assert freqs.sum() == pytest.approx(1.0)
        assert np.all(np.diff(freqs) <= 0)

    def test_zipf_shift_flattens_head(self):
        plain = zipf_frequencies(100, 1.2)
        shifted = zipf_frequencies(100, 1.2, shift=20)
        assert shifted[0] / shifted[9] < plain[0] / plain[9]

    def test_zipf_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_frequencies(0, 1.0)
        with pytest.raises(ValueError):
            zipf_frequencies(10, 1.0, shift=-1)

    def test_poisson_normalised_with_bump(self):
        freqs = poisson_frequencies(50, lam=10)
        assert freqs.sum() == pytest.approx(1.0)
        assert np.argmax(freqs) in (9, 10)

    def test_sample_from_frequencies_respects_support(self):
        ids = np.array([5, 9, 100])
        freqs = np.array([0.7, 0.2, 0.1])
        samples = sample_from_frequencies(freqs, ids, 500, rng=0)
        assert set(np.unique(samples)) <= set(ids.tolist())
        assert np.mean(samples == 5) > 0.5

    def test_sample_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            sample_from_frequencies(np.array([1.0]), np.array([1, 2]), 5)

    def test_scatter_item_ids_unique_and_in_range(self):
        ids = scatter_item_ids(500, 12, rng=0)
        assert ids.size == 500
        assert np.unique(ids).size == 500
        assert ids.min() >= 0 and ids.max() < 4096

    def test_scatter_full_capacity(self):
        ids = scatter_item_ids(8, 3, rng=0)
        assert sorted(ids.tolist()) == list(range(8))

    def test_scatter_overflow_raises(self):
        with pytest.raises(ValueError):
            scatter_item_ids(10, 3)

    def test_perturbed_ranking_is_permutation(self):
        ranking = perturbed_ranking(50, 0.1, rng=0)
        assert sorted(ranking.tolist()) == list(range(50))

    def test_perturbed_ranking_zero_noise_is_identity(self):
        np.testing.assert_array_equal(perturbed_ranking(20, 0.0, rng=0), np.arange(20))


class TestPartition:
    def test_each_party_gets_items(self):
        domains = dirichlet_domain_partition(200, 4, 6, beta=0.5, rng=0)
        assert len(domains) == 4
        for domain in domains:
            assert domain.size >= 8
            assert np.unique(domain).size == domain.size

    def test_smaller_beta_more_skew(self):
        # With a small β a party's domain is dominated by few item groups;
        # with a large β every group contributes roughly evenly.  Measure the
        # average share of a party's domain coming from its largest source
        # group (group = contiguous range of the identity permutation is not
        # guaranteed, so recompute membership from the partition itself).
        def max_group_share(beta: float, seed: int) -> float:
            rng = np.random.default_rng(seed)
            n_items, n_groups = 1200, 6
            domains = dirichlet_domain_partition(n_items, 6, n_groups, beta=beta, rng=rng)
            # Reconstruct group membership the same way the partitioner does:
            # it permutes items with the *same* rng first, so instead measure
            # concentration via how unevenly each party's items spread over
            # equal-width id buckets (a proxy for source groups).
            shares = []
            for domain in domains:
                buckets = np.bincount(domain // (n_items // n_groups), minlength=n_groups + 1)
                shares.append(buckets.max() / max(domain.size, 1))
            return float(np.mean(shares))

        assert max_group_share(0.1, seed=0) >= max_group_share(50.0, seed=1) - 0.02

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            dirichlet_domain_partition(0, 2, 2, 0.5)
        with pytest.raises(ValueError):
            dirichlet_domain_partition(10, 2, 2, 0.0)


class TestFederatedDataset:
    def test_global_counts_and_top_k(self, two_party_dataset):
        counts = two_party_dataset.global_counts()
        # The random tail can add a handful of extra occurrences of item 5/9.
        assert counts[5] >= 650
        assert counts[9] >= 450
        assert two_party_dataset.true_top_k(2) == [5, 9]

    def test_frequencies_sum_to_one(self, two_party_dataset):
        assert sum(two_party_dataset.global_frequencies().values()) == pytest.approx(1.0)

    def test_party_lookup(self, two_party_dataset):
        assert two_party_dataset.party("alpha").name == "alpha"
        with pytest.raises(KeyError):
            two_party_dataset.party("nope")

    def test_duplicate_party_names_rejected(self):
        items = np.array([1, 2])
        with pytest.raises(ValueError):
            FederatedDataset("x", [Party("a", items), Party("a", items)], n_bits=4)

    def test_n_bits_too_small_rejected(self):
        with pytest.raises(ValueError):
            FederatedDataset("x", [Party("a", np.array([300]))], n_bits=4)

    def test_subsample_users(self, two_party_dataset):
        sub = two_party_dataset.subsample_users(0.5, rng=0)
        assert sub.total_users == pytest.approx(two_party_dataset.total_users / 2, abs=2)

    def test_sorted_by_population(self, two_party_dataset):
        ordered = two_party_dataset.sorted_by_population()
        assert ordered[0].n_users >= ordered[1].n_users


class TestGenerators:
    @pytest.mark.parametrize(
        "builder,n_parties",
        [(make_rdb, 2), (make_ycm, 4), (make_tys, 6), (make_uba, 6)],
    )
    def test_textlike_party_counts(self, builder, n_parties):
        ds = builder(total_users=1500, n_common_items=40, n_specific_items=50, rng=0)
        assert ds.n_parties == n_parties
        assert ds.total_users >= 1000
        assert ds.n_common_items() > 0

    def test_party_sizes_follow_table2_ordering(self):
        ds = make_ycm(total_users=4000, n_common_items=40, n_specific_items=60, rng=0)
        sizes = [p.n_users for p in ds.parties]
        assert sizes == sorted(sizes, reverse=True)

    def test_syn_has_eight_parties_and_beta_metadata(self):
        ds = make_syn(total_users=2400, n_items=200, dirichlet_beta=0.3, rng=0)
        assert ds.n_parties == 8
        assert ds.metadata["dirichlet_beta"] == 0.3

    def test_items_fit_within_n_bits(self):
        ds = make_rdb(total_users=1200, n_common_items=40, n_specific_items=50, rng=1)
        for party in ds.parties:
            assert party.items.max() < (1 << ds.n_bits)

    def test_generation_is_deterministic_for_fixed_seed(self):
        a = make_rdb(total_users=800, n_common_items=30, n_specific_items=40, rng=9)
        b = make_rdb(total_users=800, n_common_items=30, n_specific_items=40, rng=9)
        for pa, pb in zip(a.parties, b.parties):
            np.testing.assert_array_equal(pa.items, pb.items)


class TestRegistry:
    def test_all_names_load_at_tiny_scale(self):
        for name in DATASET_NAMES:
            ds = load_dataset(name, scale="tiny", seed=0)
            assert ds.total_users > 0
            assert ds.metadata["scale"] == "tiny"

    def test_unknown_dataset_and_scale(self):
        with pytest.raises(KeyError):
            load_dataset("nope", scale="tiny")
        with pytest.raises(KeyError):
            load_dataset("rdb", scale="nope")

    def test_user_fraction_subsamples(self):
        full = load_dataset("rdb", scale="tiny", seed=0)
        half = load_dataset("rdb", scale="tiny", seed=0, user_fraction=0.5)
        assert half.total_users < full.total_users

    def test_scales_are_ordered(self):
        assert SCALES["tiny"].users_multiplier < SCALES["small"].users_multiplier
        assert SCALES["small"].users_multiplier <= SCALES["paper"].users_multiplier

    def test_syn_beta_forwarded(self):
        ds = load_dataset("syn", scale="tiny", seed=0, dirichlet_beta=0.8)
        assert ds.metadata["dirichlet_beta"] == 0.8
