"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import TextTable


class TestTextTable:
    def test_render_contains_headers_and_values(self):
        table = TextTable(["mechanism", "F1"])
        table.add_row(["TAPS", 0.8312])
        text = table.render()
        assert "mechanism" in text
        assert "TAPS" in text
        assert "0.8312" in text

    def test_float_formatting(self):
        table = TextTable(["v"], float_format="{:.1f}")
        table.add_row([0.123456])
        assert "0.1" in table.render()
        assert "0.1234" not in table.render()

    def test_title_rendered_first(self):
        table = TextTable(["a"])
        table.add_row([1])
        text = table.render(title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_row_length_mismatch_raises(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row([1])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_to_records_roundtrip(self):
        table = TextTable(["name", "score"])
        table.add_row(["x", 1])
        table.add_row(["y", 2])
        records = table.to_records()
        assert records == [
            {"name": "x", "score": "1"},
            {"name": "y", "score": "2"},
        ]

    def test_n_rows(self):
        table = TextTable(["a"])
        assert table.n_rows == 0
        table.add_row([1])
        assert table.n_rows == 1

    def test_columns_are_aligned(self):
        table = TextTable(["col"])
        table.add_row(["short"])
        table.add_row(["a much longer cell"])
        lines = table.render().splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1, "all rendered lines should have the same width"

    def test_bool_cells_render_as_text(self):
        table = TextTable(["flag"])
        table.add_row([True])
        assert "True" in table.render()
