"""Unit tests for the frame layer: round trips, bounds, error mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ldp.base import EstimationResult
from repro.net import framing
from repro.net.framing import (
    FRAME_ERROR,
    FRAME_KINDS,
    FRAME_REPORT_BATCH,
    FRAME_ROUND_CONTROL,
    FrameError,
    OversizeFrameError,
)
from repro.service.protocol import WireFormatError
from repro.service.server import (
    SERVICE_ERROR_CODES,
    ExportedShardState,
    ServiceError,
)


class TestFrameHeader:
    def test_encode_parse_round_trip(self):
        for kind in FRAME_KINDS:
            encoded = framing.encode_frame(kind, b"payload")
            length, parsed_kind = framing.parse_frame_header(
                encoded[: framing.FRAME_HEADER_SIZE]
            )
            assert (length, parsed_kind) == (7, kind)
            assert encoded[framing.FRAME_HEADER_SIZE :] == b"payload"

    def test_unknown_kind_rejected_on_encode_and_check(self):
        with pytest.raises(FrameError, match="kind"):
            framing.encode_frame(42, b"")
        with pytest.raises(FrameError, match="kind"):
            framing.check_frame_header(0, 42, max_frame_bytes=1024)

    def test_oversize_rejected_from_header_alone(self):
        with pytest.raises(OversizeFrameError, match="exceeds"):
            framing.check_frame_header(2048, FRAME_ROUND_CONTROL, max_frame_bytes=1024)
        # At the bound is fine.
        framing.check_frame_header(1024, FRAME_ROUND_CONTROL, max_frame_bytes=1024)

    def test_short_header_rejected(self):
        with pytest.raises(FrameError, match="header"):
            framing.parse_frame_header(b"\x00\x00")


class TestBodyCodecs:
    def test_report_frame_round_trip(self):
        body = framing.encode_report_frame(7, 123, b"RPB1...")
        assert framing.decode_report_frame(body) == (7, 123, b"RPB1...")

    def test_report_frame_too_short(self):
        with pytest.raises(FrameError, match="at least"):
            framing.decode_report_frame(b"\x01\x02")

    def test_control_round_trip_is_canonical(self):
        message = {"op": "batch_ack", "seq": 3, "round_id": 1}
        body = framing.encode_control(message)
        assert body == framing.encode_control(dict(reversed(message.items())))
        assert framing.decode_control(body) == message

    def test_control_rejects_non_objects_and_garbage(self):
        with pytest.raises(FrameError, match="JSON object"):
            framing.decode_control(b"[1, 2]")
        with pytest.raises(FrameError, match="parse"):
            framing.decode_control(b"\xff\xfe not json")


class TestErrorMapping:
    @pytest.mark.parametrize("code", SERVICE_ERROR_CODES)
    def test_service_codes_round_trip(self, code):
        original = ServiceError("boom", code=code)
        body = framing.encode_error(original)
        mapped = framing.decode_error(body)
        assert isinstance(mapped, ServiceError)
        assert mapped.code == code
        assert "boom" in str(mapped)

    def test_wire_format_and_frame_errors_round_trip(self):
        for exc, expected in (
            (WireFormatError("bad payload"), WireFormatError),
            (FrameError("bad frame"), FrameError),
            (OversizeFrameError("too big"), OversizeFrameError),
        ):
            mapped = framing.decode_error(framing.encode_error(exc))
            assert type(mapped) is expected
            assert str(exc) in str(mapped)

    def test_unexpected_exceptions_ship_as_internal(self):
        code, message = framing.exception_to_error(RuntimeError("surprise"))
        assert code == "internal"
        mapped = framing.error_to_exception(code, message)
        assert isinstance(mapped, ServiceError) and mapped.code == "internal"

    def test_unknown_code_still_maps_to_service_error(self):
        mapped = framing.error_to_exception("from_the_future", "msg")
        assert isinstance(mapped, ServiceError)
        assert "from_the_future" in str(mapped)

    def test_error_frame_carries_optional_seq(self):
        body = framing.encode_error(ServiceError("x"), seq=9)
        assert framing.decode_control(body)["seq"] == 9

    def test_error_frame_missing_keys(self):
        with pytest.raises(FrameError, match="key"):
            framing.decode_error(framing.encode_control({"oops": 1}))


def _estimate(domain_size: int = 9) -> EstimationResult:
    gen = np.random.default_rng(3)
    counts = gen.normal(size=domain_size)
    # Deliberately awkward floats: exactness must survive the wire.
    counts[0] = np.nextafter(1.0, 2.0)
    counts[1] = -0.0
    return EstimationResult(
        support_counts=gen.integers(0, 50, size=domain_size),
        estimated_counts=counts,
        estimated_frequencies=counts / 17.0,
        n_users=17,
        domain_size=domain_size,
        oracle_name="krr",
        epsilon=3.5,
        metadata={"execution": "service", "n_batches": 2, "upload_bits": 1234},
    )


class TestEstimateCodec:
    def test_lossless_round_trip(self):
        original = _estimate()
        decoded = framing.decode_estimate(framing.encode_estimate(original))
        np.testing.assert_array_equal(decoded.support_counts, original.support_counts)
        assert decoded.estimated_counts.tobytes() == original.estimated_counts.tobytes()
        assert (
            decoded.estimated_frequencies.tobytes()
            == original.estimated_frequencies.tobytes()
        )
        assert decoded.n_users == original.n_users
        assert decoded.domain_size == original.domain_size
        assert decoded.oracle_name == original.oracle_name
        assert decoded.epsilon == original.epsilon
        assert decoded.metadata == original.metadata

    def test_estimate_frame_round_trip(self):
        body = framing.encode_estimate_frame(11, _estimate())
        round_id, decoded = framing.decode_estimate_frame(body)
        assert round_id == 11 and decoded.n_users == 17

    def test_truncations_raise_frame_errors(self):
        data = framing.encode_estimate(_estimate())
        for cut in (0, 2, 4, 7, 20, len(data) - 1):
            with pytest.raises(FrameError):
                framing.decode_estimate(data[:cut])

    def test_bad_magic(self):
        with pytest.raises(FrameError, match="magic"):
            framing.decode_estimate(b"NOPE" + b"\x00" * 32)


def _shard_state(domain_size: int = 13) -> ExportedShardState:
    gen = np.random.default_rng(7)
    return ExportedShardState(
        party="alpha",
        level=4,
        oracle_name="olh",
        epsilon=2.5,
        domain_size=domain_size,
        n_users=321,
        n_batches=6,
        upload_bits=98_765,
        counts=gen.integers(0, 10_000, size=domain_size, dtype=np.int64),
    )


class TestShardStateCodec:
    def test_lossless_round_trip(self):
        original = _shard_state()
        decoded = framing.decode_shard_state(framing.encode_shard_state(original))
        assert decoded.counts.dtype == np.int64
        np.testing.assert_array_equal(decoded.counts, original.counts)
        for field_name in (
            "party", "level", "oracle_name", "epsilon",
            "domain_size", "n_users", "n_batches", "upload_bits",
        ):
            assert getattr(decoded, field_name) == getattr(original, field_name)

    def test_shard_state_frame_round_trip(self):
        body = framing.encode_shard_state_frame(23, _shard_state())
        round_id, decoded = framing.decode_shard_state_frame(body)
        assert round_id == 23 and decoded.n_users == 321

    def test_counts_shape_must_match_domain(self):
        state = _shard_state()
        lying = ExportedShardState(
            **{**state.__dict__, "counts": state.counts[:-1]}
        )
        with pytest.raises(FrameError, match="shape"):
            framing.encode_shard_state(lying)

    def test_truncations_raise_frame_errors(self):
        data = framing.encode_shard_state(_shard_state())
        for cut in (0, 2, 4, 7, 20, len(data) - 1):
            with pytest.raises(FrameError):
                framing.decode_shard_state(data[:cut])
        # Extra trailing bytes are as suspect as missing ones.
        with pytest.raises(FrameError, match="expected"):
            framing.decode_shard_state(data + b"\x00")

    def test_bad_magic(self):
        with pytest.raises(FrameError, match="magic"):
            framing.decode_shard_state(b"NOPE" + b"\x00" * 32)

    def test_frame_body_missing_round_id(self):
        with pytest.raises(FrameError, match="round id"):
            framing.decode_shard_state_frame(b"\x01")
