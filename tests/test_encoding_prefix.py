"""Tests for repro.encoding.prefix."""

import numpy as np
import pytest

from repro.encoding.prefix import (
    extend_prefixes,
    is_prefix_of,
    level_lengths,
    prefix_of,
    prefixes_of_items,
    validate_prefix,
)


class TestValidatePrefix:
    def test_accepts_bit_strings(self):
        assert validate_prefix("0101") == "0101"
        assert validate_prefix("") == ""

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            validate_prefix("01x")

    def test_rejects_non_strings(self):
        with pytest.raises(TypeError):
            validate_prefix(101)


class TestPrefixOf:
    def test_basic(self):
        assert prefix_of("110011", 3) == "110"

    def test_bad_length(self):
        with pytest.raises(ValueError):
            prefix_of("10", 3)


class TestIsPrefixOf:
    def test_true_and_false(self):
        assert is_prefix_of("10", "1011")
        assert not is_prefix_of("11", "1011")
        assert is_prefix_of("", "1011")


class TestExtendPrefixes:
    def test_extends_with_all_suffixes(self):
        assert extend_prefixes(["0"], 1) == ["00", "01"]
        assert extend_prefixes(["10", "11"], 2) == [
            "1000", "1001", "1010", "1011",
            "1100", "1101", "1110", "1111",
        ]

    def test_zero_extra_bits_is_identity(self):
        assert extend_prefixes(["01", "10"], 0) == ["01", "10"]

    def test_count_grows_exponentially(self):
        result = extend_prefixes(["0", "1"], 3)
        assert len(result) == 2 * 2**3

    def test_negative_extra_bits_raise(self):
        with pytest.raises(ValueError):
            extend_prefixes(["0"], -1)


class TestLevelLengths:
    def test_paper_schedule(self):
        # m = 48, g = 24 gives step size 2 at every level (the paper default).
        lengths = level_lengths(48, 24)
        assert lengths[0] == 2
        assert lengths[-1] == 48
        assert all(b - a == 2 for a, b in zip(lengths, lengths[1:]))

    def test_last_level_is_full_width(self):
        for m, g in [(16, 8), (13, 6), (10, 3)]:
            assert level_lengths(m, g)[-1] == m

    def test_lengths_are_non_decreasing(self):
        lengths = level_lengths(13, 6)
        assert all(b >= a for a, b in zip(lengths, lengths[1:]))

    def test_granularity_larger_than_bits_raises(self):
        with pytest.raises(ValueError):
            level_lengths(4, 5)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            level_lengths(0, 1)
        with pytest.raises(ValueError):
            level_lengths(8, 0)


class TestPrefixesOfItems:
    def test_matches_manual_encoding(self):
        items = np.array([5, 12])
        assert prefixes_of_items(items, 4, 2) == ["01", "11"]

    def test_zero_length(self):
        assert prefixes_of_items(np.array([1, 2]), 4, 0) == ["", ""]

    def test_full_length(self):
        assert prefixes_of_items(np.array([5]), 4, 4) == ["0101"]

    def test_out_of_range_items_raise(self):
        with pytest.raises(ValueError):
            prefixes_of_items(np.array([16]), 4, 2)
