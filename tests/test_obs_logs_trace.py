"""Structured logging and span tracing: output contracts, propagation."""

from __future__ import annotations

import json

import pytest

from repro.obs.logs import configure_logging, get_logger
from repro.obs.trace import CONTEXT_SIZE, SpanContext, Tracer


@pytest.fixture(autouse=True)
def _reset_logging():
    yield
    configure_logging("info", json_mode=False)


class TestHumanMode:
    def test_info_prints_the_bare_message_to_stdout(self, capsys):
        """The compatibility contract: default logging is byte-identical
        to the ``print(msg, flush=True)`` calls it replaced."""
        configure_logging("info")
        get_logger("repro.test").info("gateway listening on 127.0.0.1:1234")
        captured = capsys.readouterr()
        assert captured.out == "gateway listening on 127.0.0.1:1234\n"
        assert captured.err == ""

    def test_warnings_and_errors_go_to_stderr(self, capsys):
        configure_logging("info")
        log = get_logger("repro.test")
        log.warning("shard 1 died")
        log.error("merge failed")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "shard 1 died\nmerge failed\n"

    def test_level_threshold_filters(self, capsys):
        configure_logging("warning")
        log = get_logger("repro.test")
        log.debug("noise")
        log.info("chatter")
        log.warning("signal")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "signal\n"

    def test_unknown_level_is_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")


class TestJsonMode:
    def test_records_are_canonical_json_lines_on_stderr(self, capsys):
        configure_logging("debug", json_mode=True, clock=lambda: 1700000000.25)
        get_logger("repro.test").info("round opened", round_id=7)
        captured = capsys.readouterr()
        assert captured.out == ""
        record = json.loads(captured.err)
        assert record == {
            "level": "info",
            "logger": "repro.test",
            "msg": "round opened",
            "round_id": 7,
            "ts": 1700000000.25,
        }

    def test_bound_context_rides_every_record(self, capsys):
        configure_logging("info", json_mode=True, clock=lambda: 0.0)
        log = get_logger("repro.cluster").bind(shard=2, address="h:1")
        log.warning("late", lag_ms=12)
        record = json.loads(capsys.readouterr().err)
        assert record["shard"] == 2
        assert record["address"] == "h:1"
        assert record["lag_ms"] == 12
        # bind() returns a child; the parent logger is untouched.
        get_logger("repro.cluster").info("clean")
        assert "shard" not in json.loads(capsys.readouterr().err)

    def test_non_json_values_stringify_instead_of_crashing(self, capsys):
        configure_logging("info", json_mode=True, clock=lambda: 0.0)
        get_logger("repro.test").info("odd", payload=object())
        record = json.loads(capsys.readouterr().err)
        assert isinstance(record["payload"], str)


class TestSpanContext:
    def test_round_trips_through_wire_bytes(self):
        context = SpanContext(trace_id=(1 << 127) + 5, span_id=(1 << 63) + 9)
        data = context.to_bytes()
        assert len(data) == CONTEXT_SIZE
        assert SpanContext.from_bytes(data) == context

    def test_wrong_size_is_rejected(self):
        with pytest.raises(ValueError, match="24 bytes"):
            SpanContext.from_bytes(b"\x00" * 23)


class TestTracer:
    def test_spans_link_parent_to_child(self):
        tracer = Tracer(seed=0)
        root = tracer.start_span("client.round", party="alpha")
        child = tracer.start_span("client.batch", parent=root, seq=0)
        child.finish(n=100)
        root.finish()
        spans = tracer.drain()
        assert [s["name"] for s in spans] == ["client.batch", "client.round"]
        batch, round_ = spans
        assert batch["trace_id"] == round_["trace_id"]
        assert batch["parent_id"] == round_["span_id"]
        assert round_["parent_id"] is None
        assert batch["n"] == 100 and batch["seq"] == 0
        assert batch["duration_ms"] >= 0.0

    def test_parent_accepts_a_wire_context(self):
        tracer = Tracer(seed=1)
        remote = SpanContext(trace_id=42, span_id=7)
        span = tracer.start_span("gateway.ingest", parent=remote)
        span.finish()
        (record,) = tracer.drain()
        assert record["trace_id"] == f"{42:032x}"
        assert record["parent_id"] == f"{7:016x}"

    def test_finish_is_idempotent_and_context_manager_records_errors(self):
        tracer = Tracer(seed=2)
        span = tracer.start_span("op")
        span.finish()
        span.finish(extra=1)  # ignored: already recorded
        assert len(tracer.drain()) == 1
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (record,) = tracer.drain()
        assert record["error"] == "RuntimeError: boom"

    def test_jsonl_file_sink(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with Tracer(path, seed=3) as tracer:
            tracer.start_span("a").finish()
            tracer.start_span("b").finish()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]
        # File-backed tracers keep nothing in memory.
        assert tracer.spans == []

    def test_seeded_tracers_never_touch_global_random_state(self):
        import random

        random.seed(1234)
        before = random.random()
        random.seed(1234)
        tracer = Tracer(seed=None)
        tracer.start_span("a").finish()
        assert random.random() == before
