"""Adversary scoring goldens and the robust-merge defense (ISSUE 8).

Every adversarial client model is scored with the PR-4 robustness
metrics (time-resolved F1, detection latency) on one shared workload and
pinned as exact goldens — the runs are pure functions of the seed, so
these are equality assertions, not tolerances.  The same goldens then
show the trimmed shard merge doing its job: measurably better F1 under
collusion and targeted promotion, at no cost to the honest baseline's
machinery.

Alongside the scores, the invariants that make adversaries *scorable*:

* ground truth stays honest — an attack distorts what the mechanism
  discovers, never what is true;
* the honest prefix of the arrival stream is bit-identical to the
  attack-free run (the adversary seam draws from the step generator only
  after honest sampling);
* same-seed runs persist byte-identical snapshot stores, defense on or
  off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.store import ScenarioSnapshotStore
from repro.scenarios.adversaries import (
    ADVERSARY_KINDS,
    ByzantineParties,
    ColludingParties,
    TargetedPromotion,
)
from repro.scenarios.effects import (
    EFFECT_KINDS,
    DriftSchedule,
    PoisonedReports,
    ScenarioError,
    effect_from_dict,
)
from repro.scenarios.harness import run_scenario
from repro.scenarios.scenario import BaseWorkload, Scenario

#: Shared workload: a 64-item zipf stream with one abrupt drift at step 4,
#: so the goldens exercise both the attack and the re-detection path.
BASE = BaseWorkload(kind="zipf", n_items=64, n_bits=8)
SEED = 7


def _scenario(adversary=None) -> Scenario:
    effects: tuple = (DriftSchedule(start=4),)
    if adversary is not None:
        effects = effects + (adversary,)
    return Scenario(base=BASE, effects=effects, n_steps=8, batch_size=400, k=4)


def _score(adversary=None, *, store=None, **kwargs):
    return run_scenario(
        _scenario(adversary),
        granularity=3,
        window_batches=3,
        seed=SEED,
        report_batch_size=32,
        store=store,
        **kwargs,
    )


def _f1(report) -> list[float]:
    return [record["f1"] for record in report.records]


def _latency(report) -> list:
    return [event["latency_steps"] for event in report.events]


#: kind → (adversary, pinned F1 per snapshot, pinned detection latency).
#: Derived once from the deterministic harness; any change to sampling,
#: estimation, or scoring that moves these is a visible diff, not drift.
GOLDENS = {
    "honest": (None, [1.0, 0.25, 0.5, 0.75, 0.75, 0.75], [1]),
    "collude": (
        ColludingParties(fraction=0.3, start=1),
        [0.25, 0.25, 0.25, 0.25, 0.25, 0.5],
        [4],
    ),
    "promote": (
        TargetedPromotion(fraction=0.3, start=1),
        [0.25, 0.5, 0.25, 0.25, 0.25, 0.5],
        [0],
    ),
    "byzantine": (
        ByzantineParties(fraction=0.3, start=1, mode="uniform"),
        [0.75, 0.25, 0.75, 0.75, 0.75, 0.75],
        [1],
    ),
    "poison": (
        PoisonedReports(fraction=0.3, start=1),
        [0.25, 0.25, 0.25, 0.25, 0.25, 0.25],
        [None],  # the drifted truth is never re-detected under poison
    ),
}

#: kind → pinned F1 with the trimmed shard merge enabled.
DEFENDED_GOLDENS = {
    "collude": [0.5, 0.25, 0.25, 0.75, 0.5, 0.75],
    "promote": [0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
}


class TestScoringGoldens:
    @pytest.mark.parametrize("kind", sorted(GOLDENS))
    def test_adversary_f1_and_detection_latency_are_pinned(self, kind):
        adversary, f1, latency = GOLDENS[kind]
        report = _score(adversary)
        assert _f1(report) == f1
        assert _latency(report) == latency

    def test_every_adversary_kind_has_a_golden(self):
        assert set(ADVERSARY_KINDS) <= set(GOLDENS)

    @pytest.mark.parametrize("kind", sorted(DEFENDED_GOLDENS))
    def test_trimmed_merge_goldens_are_pinned(self, kind):
        adversary = GOLDENS[kind][0]
        report = _score(adversary, defense="trimmed")
        assert _f1(report) == DEFENDED_GOLDENS[kind]

    @pytest.mark.parametrize("kind", sorted(DEFENDED_GOLDENS))
    def test_defense_measurably_improves_f1(self, kind):
        """The acceptance bar: at least one adversary (here: two) scores
        measurably better with the defense on, in the pinned goldens —
        no fresh runs needed, the inequality lives in the constants."""
        plain = GOLDENS[kind][1]
        defended = DEFENDED_GOLDENS[kind]
        assert sum(defended) / len(defended) > sum(plain) / len(plain)

    def test_defense_recovers_detection_latency_under_collusion(self):
        adversary = GOLDENS["collude"][0]
        defended = _score(adversary, defense="trimmed")
        assert _latency(defended) == [2]  # vs 4 undefended, 1 honest


class TestSnapshotStores:
    @pytest.mark.parametrize("defense", [None, "trimmed"])
    def test_same_seed_runs_persist_byte_identical_stores(self, tmp_path, defense):
        adversary = ColludingParties(fraction=0.3, start=1)
        kwargs = {} if defense is None else {"defense": defense}
        paths = []
        for run in ("a", "b"):
            path = tmp_path / f"run-{run}.jsonl"
            store = ScenarioSnapshotStore(path, fingerprint="golden")
            _score(adversary, store=store, **kwargs)
            paths.append(path)
        first, second = (path.read_bytes() for path in paths)
        assert first == second
        assert len(ScenarioSnapshotStore.load(paths[0])) == 6

    def test_store_records_match_the_report(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = ScenarioSnapshotStore(path, fingerprint="golden")
        report = _score(ByzantineParties(fraction=0.3, start=1))
        stored = None
        # Re-run into the store: same seed, so records must agree exactly.
        _score(ByzantineParties(fraction=0.3, start=1), store=store)
        stored = ScenarioSnapshotStore.load(path)
        assert stored == [dict(record) for record in report.records]


class TestGroundTruthStaysHonest:
    @pytest.mark.parametrize("kind", [k for k in sorted(GOLDENS) if GOLDENS[k][0]])
    def test_attacked_stream_keeps_the_honest_truth_and_prefix(self, kind):
        """The attacked stream's ground truth and honest prefix are
        bit-identical to the attack-free run — only the adversarial tail
        differs, and its size is exactly the declared coalition."""
        adversary = GOLDENS[kind][0]
        honest = list(_scenario().iter_batches(SEED))
        attacked = list(_scenario(adversary).iter_batches(SEED))
        assert len(honest) == len(attacked)
        for clean, dirty in zip(honest, attacked):
            assert dirty.true_top_k == clean.true_top_k
            assert dirty.truth_changed == clean.truth_changed
            expected = adversary.n_adversarial(dirty.step, len(dirty.items))
            assert dirty.n_poisoned == expected
            honest_prefix = len(dirty.items) - dirty.n_poisoned
            assert np.array_equal(
                dirty.items[:honest_prefix], clean.items[:honest_prefix]
            )

    def test_coalition_size_honours_start_and_fraction(self):
        adversary = ColludingParties(fraction=0.25, start=3)
        assert adversary.n_adversarial(2, 400) == 0
        assert adversary.n_adversarial(3, 400) == 100
        assert adversary.n_adversarial(8, 400) == 100

    def test_colluding_targets_rotate_per_step(self):
        adversary = ColludingParties(fraction=0.2, start=1, items=(5, 9))
        scenario = _scenario(adversary)
        steps = {
            batch.step: set(batch.items[-batch.n_poisoned :].tolist())
            for batch in scenario.iter_batches(SEED)
        }
        assert steps[1] == {5} and steps[2] == {9} and steps[3] == {5}

    def test_promotion_targets_runners_up_only(self):
        adversary = TargetedPromotion(fraction=0.2, start=1, width=3)
        scenario = _scenario(adversary)
        for batch in scenario.iter_batches(SEED):
            tail = set(batch.items[-batch.n_poisoned :].tolist())
            assert tail, "the coalition must inject every step"
            assert not tail & set(batch.true_top_k)  # boundary, never top-k


class TestValidation:
    def test_at_most_one_adversary_per_scenario(self):
        with pytest.raises(ScenarioError, match="at most one adversary"):
            Scenario(
                base=BASE,
                effects=(
                    ColludingParties(fraction=0.1),
                    ByzantineParties(fraction=0.1),
                ),
            )
        with pytest.raises(ScenarioError, match="at most one adversary"):
            Scenario(
                base=BASE,
                effects=(
                    ColludingParties(fraction=0.1),
                    TargetedPromotion(fraction=0.1),
                ),
            )

    @pytest.mark.parametrize(
        "build",
        [
            lambda: ColludingParties(fraction=0.0),
            lambda: ColludingParties(fraction=1.5),
            lambda: ColludingParties(fraction=0.1, start=0),
            lambda: ColludingParties(fraction=0.1, items=()),
            lambda: ColludingParties(fraction=0.1, items=(-1,)),
            lambda: TargetedPromotion(fraction=0.1, width=0),
            lambda: ByzantineParties(fraction=0.1, mode="chaotic-neutral"),
        ],
    )
    def test_invalid_adversaries_are_rejected(self, build):
        with pytest.raises((ScenarioError, ValueError)):
            build()

    def test_promotion_width_must_leave_runners_up(self):
        wide = TargetedPromotion(fraction=0.1, width=64)
        with pytest.raises(ScenarioError, match="runners-up"):
            Scenario(base=BASE, effects=(wide,), k=4)


class TestDocumentRoundTrip:
    def test_adversaries_are_registered_effects(self):
        for kind, cls in ADVERSARY_KINDS.items():
            assert EFFECT_KINDS[kind] is cls
            assert cls.is_adversary

    @pytest.mark.parametrize(
        "adversary",
        [
            ColludingParties(fraction=0.3, start=2, items=(4, 8)),
            TargetedPromotion(fraction=0.2, start=1, width=2),
            ByzantineParties(fraction=0.1, start=3, mode="reverse"),
        ],
        ids=lambda adversary: adversary.kind,
    )
    def test_dict_round_trip_through_the_effect_registry(self, adversary):
        document = adversary.to_dict()
        assert document["kind"] == adversary.kind
        assert effect_from_dict(document) == adversary
