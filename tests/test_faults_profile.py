"""Property tests for the declarative fault profiles (ISSUE 8 tentpole).

The two contracts that make chaos runs *testable*:

* **Seed determinism** — a profile's schedule is a pure function of its
  fields and the frame coordinates; equal profiles produce equal
  decisions, frame for frame, regardless of inspection order.
* **Associative composition** — chains are flat tuples of layers, so any
  parenthesisation of the same layer sequence is the *same* chain, hence
  the same schedule.

Both are pinned with hypothesis over the full parameter space, alongside
the document round-trip and the filter/validation surface.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.profile import (
    DIRECTIONS,
    FaultChain,
    FaultProfile,
    FaultSpecError,
    as_chain,
    compose,
    fault_profile_from_dict,
    load_fault_profile,
)
from repro.net.framing import FRAME_REPORT_BATCH, FRAME_ROUND_CONTROL

PROBABILITY = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

PROFILES = st.builds(
    FaultProfile,
    seed=st.integers(min_value=0, max_value=2**31),
    direction=st.sampled_from(DIRECTIONS),
    drop=PROBABILITY,
    duplicate=PROBABILITY,
    reorder=PROBABILITY,
    corrupt=PROBABILITY,
    truncate=PROBABILITY,
    disconnect=PROBABILITY,
    straggle=PROBABILITY,
    corrupt_window=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
    kinds=st.one_of(
        st.none(),
        st.lists(
            st.integers(min_value=1, max_value=6), min_size=1, max_size=3, unique=True
        ).map(tuple),
    ),
    max_faults=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
)

FRAME_COORDS = st.tuples(
    st.integers(min_value=0, max_value=1 << 20),  # connection
    st.integers(min_value=0, max_value=1 << 20),  # frame
    st.sampled_from(("up", "down")),
)


class TestSeedDeterminism:
    @given(profile=PROFILES, coords=FRAME_COORDS)
    @settings(max_examples=80, deadline=None)
    def test_equal_profiles_make_equal_decisions(self, profile, coords):
        """Schedule = f(fields, coordinates): a reconstructed equal profile
        replays the identical decision — the retry/replay contract."""
        connection, frame, direction = coords
        clone = FaultProfile(**{
            f.name: getattr(profile, f.name) for f in dataclasses.fields(profile)
        })
        assert clone == profile
        assert clone.decide(connection, frame, direction) == profile.decide(
            connection, frame, direction
        )
        # And the decision is stable under repeated inspection (hash, not
        # an RNG stream): asking twice cannot change the verdict.
        assert profile.decide(connection, frame, direction) == profile.decide(
            connection, frame, direction
        )

    @given(profile=PROFILES, coords=FRAME_COORDS, offset=st.integers(1, 1 << 16))
    @settings(max_examples=60, deadline=None)
    def test_shifted_profiles_change_only_the_seed(self, profile, coords, offset):
        shifted = profile.shifted(offset)
        assert shifted.seed == profile.seed + offset
        assert shifted.with_seed(profile.seed) == profile
        connection, frame, direction = coords
        # Zero shift is the identity on the schedule.
        assert profile.shifted(0).decide(connection, frame, direction) == (
            profile.decide(connection, frame, direction)
        )

    @given(coords=FRAME_COORDS)
    @settings(max_examples=40, deadline=None)
    def test_probability_endpoints_are_exact(self, coords):
        """p=0 never fires; p=1 always fires — no float edge can leak."""
        connection, frame, direction = coords
        never = FaultProfile(seed=1).decide(connection, frame, direction)
        assert not never.any_fault
        always = FaultProfile(
            seed=1, drop=1.0, duplicate=1.0, corrupt=1.0, straggle=1.0
        ).decide(connection, frame, direction)
        assert always.drop and always.duplicate and always.corrupt and always.straggle
        assert always.corrupt_xor >= 1  # a real bit flip, never a no-op XOR


class TestComposition:
    @given(a=PROFILES, b=PROFILES, c=PROFILES)
    @settings(max_examples=60, deadline=None)
    def test_compose_is_exactly_associative(self, a, b, c):
        left = compose(compose(a, b), c)
        right = compose(a, compose(b, c))
        assert left == right
        assert left.layers == (a, b, c)

    @given(profile=PROFILES)
    @settings(max_examples=30, deadline=None)
    def test_a_profile_is_its_own_one_layer_chain(self, profile):
        assert as_chain(profile).layers == (profile,)
        assert profile.layers == (profile,)
        assert compose(profile).layers == (profile,)

    @given(a=PROFILES, b=PROFILES, offset=st.integers(0, 1 << 10))
    @settings(max_examples=40, deadline=None)
    def test_shift_distributes_over_composition(self, a, b, offset):
        assert compose(a, b).shifted(offset) == compose(
            a.shifted(offset), b.shifted(offset)
        )

    def test_chain_rejects_non_profile_layers(self):
        with pytest.raises(FaultSpecError, match="FaultProfile"):
            FaultChain(("not a profile",))
        with pytest.raises(FaultSpecError, match="FaultProfile"):
            as_chain({"drop": 0.5})


class TestDocumentRoundTrip:
    @given(profile=PROFILES)
    @settings(max_examples=60, deadline=None)
    def test_profile_dict_round_trip(self, profile):
        assert FaultProfile.from_dict(profile.to_dict()) == profile

    @given(a=PROFILES, b=PROFILES)
    @settings(max_examples=40, deadline=None)
    def test_chain_dict_round_trip(self, a, b):
        chain = compose(a, b)
        assert FaultChain.from_dict(chain.to_dict()) == chain
        # The loader's three accepted shapes all land on the same object.
        assert fault_profile_from_dict(chain.to_dict()) == chain
        assert fault_profile_from_dict([a.to_dict(), b.to_dict()]) == chain
        assert fault_profile_from_dict(a.to_dict()) == a

    def test_file_loading_json_and_yaml(self, tmp_path):
        profile = FaultProfile(name="drop", seed=3, drop=0.25, max_faults=2)
        json_path = tmp_path / "faults.json"
        json_path.write_text(__import__("json").dumps(profile.to_dict()))
        assert load_fault_profile(json_path) == profile
        yaml_path = tmp_path / "faults.yaml"
        yaml_path.write_text("name: drop\nseed: 3\ndrop: 0.25\nmax_faults: 2\n")
        assert load_fault_profile(yaml_path) == profile
        with pytest.raises(FaultSpecError, match="does not exist"):
            load_fault_profile(tmp_path / "missing.yaml")

    def test_unknown_keys_are_named(self):
        with pytest.raises(FaultSpecError, match="dorp"):
            FaultProfile.from_dict({"dorp": 0.5})


class TestFiltersAndValidation:
    def test_direction_and_kind_and_op_filters(self):
        layer = FaultProfile(
            direction="down",
            kinds=(FRAME_ROUND_CONTROL,),
            ops=("batch_ack",),
        )
        assert layer.applies(
            direction="down", kind=FRAME_ROUND_CONTROL, op="batch_ack"
        )
        assert not layer.applies(
            direction="up", kind=FRAME_ROUND_CONTROL, op="batch_ack"
        )
        assert not layer.applies(
            direction="down", kind=FRAME_REPORT_BATCH, op="batch_ack"
        )
        assert not layer.applies(
            direction="down", kind=FRAME_ROUND_CONTROL, op="open_round"
        )
        unfiltered = FaultProfile()
        assert unfiltered.applies(direction="up", kind=FRAME_REPORT_BATCH)
        assert unfiltered.applies(direction="down", kind=None)

    @pytest.mark.parametrize(
        "bad",
        [
            {"direction": "sideways"},
            {"drop": 1.5},
            {"corrupt": -0.1},
            {"delay_ms": -1.0},
            {"bytes_per_sec": 0},
            {"corrupt_window": 0},
            {"kinds": ()},
            {"kinds": ("report",)},
            {"ops": ()},
            {"ops": ("",)},
            {"max_faults": -1},
            {"name": ""},
        ],
    )
    def test_invalid_profiles_are_rejected(self, bad):
        with pytest.raises((FaultSpecError, ValueError)):
            FaultProfile(**bad)
