"""Ingestion-throughput microbenchmark of the online aggregation service.

Streams a synthetic population through ``ClientPool`` → ``AggregationServer``
rounds at several batch sizes and records, per (oracle, batch size):

* ``reports_per_sec`` — end-to-end ingestion throughput (perturb + encode +
  wire decode + shard accumulate),
* ``peak_batch_bytes`` / ``accumulator_bytes`` — the service memory model:
  the report buffer is bounded by the batch, the server state by the domain,
* ``wire_bytes`` — exact bytes the stream put on the wire.

Results persist machine-readably to
``benchmarks/results/service_throughput.json`` for the performance
trajectory.  The OLH entries decode in candidate shards on the engine
backend selected by ``REPRO_BENCH_BACKEND`` / ``REPRO_BENCH_WORKERS``
(default: serial), mirroring the sweep benchmarks' knobs.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.engine import get_backend
from repro.ldp.registry import make_oracle
from repro.perf.gate import ARTIFACT_SCHEMAS
from repro.service.clients import ClientPool
from repro.service.protocol import encode_report_batch
from repro.service.server import AggregationServer
from repro.trie.candidate_domain import CandidateDomain

#: Population and domain of the synthetic ingestion workload.
N_USERS = 200_000
DOMAIN_BITS = 6  # 64 candidates + dummy

BATCH_SIZES = (2_048, 16_384, 65_536)

#: (oracle, population) pairs: OLH decoding is O(n·d), so it runs a smaller
#: stream to keep the quick profile in seconds.
WORKLOADS = (("krr", N_USERS), ("oue", 50_000), ("olh", 50_000))


def _bench_backend():
    spec = os.environ.get("REPRO_BENCH_BACKEND") or None
    workers = os.environ.get("REPRO_BENCH_WORKERS")
    return spec, get_backend(spec, int(workers) if workers else None)


def _batch_buffer_bytes(batch) -> int:
    """In-memory size of one batch's report buffer.

    Packed unary batches expose ``nbytes`` directly — going through
    ``np.asarray`` would inflate them to the dense matrix (and pay for
    the unpack inside the timed loop).
    """
    reports = batch.reports
    if isinstance(reports, tuple):
        return int(sum(np.asarray(part).nbytes for part in reports))
    nbytes = getattr(reports, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    return int(np.asarray(reports).nbytes)


def _run_stream(oracle_name: str, n_users: int, batch_size: int, backend):
    """One full ingestion stream; returns (result, peak_batch_bytes, server)."""
    oracle = make_oracle(oracle_name, epsilon=4.0)
    domain = CandidateDomain.full_domain(DOMAIN_BITS, include_dummy=True)
    items = np.random.default_rng(0).integers(0, 1 << DOMAIN_BITS, size=n_users)
    pool = ClientPool(items, name="bench", batch_size=batch_size)
    server = AggregationServer(decode_backend=backend if oracle_name == "olh" else None)

    round_id = server.open_round(party="bench", level=DOMAIN_BITS, oracle=oracle,
                                 domain=domain)
    peak_batch_bytes = 0
    for batch in pool.iter_report_batches(oracle, domain, DOMAIN_BITS, rng=1):
        peak_batch_bytes = max(peak_batch_bytes, _batch_buffer_bytes(batch))
        server.ingest(round_id, encode_report_batch(batch))
    result = server.finalize_round(round_id)
    return result, peak_batch_bytes, server


def _stream_once(oracle_name: str, n_users: int, batch_size: int, backend) -> dict:
    # Pass 1 (untimed) runs the identical stream under tracemalloc: it
    # records the true Python-level peak allocation of the configuration
    # AND doubles as the warmup for pass 2 — first-touch page faults and
    # allocator growth otherwise dominate single-batch timings.
    tracemalloc.start()
    _run_stream(oracle_name, n_users, batch_size, backend)
    tracemalloc_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    # Best-of-3 timing: a single stream is one scheduler hiccup away from
    # a misleading number, especially for the one-batch configurations.
    elapsed = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        result, peak_batch_bytes, server = _run_stream(
            oracle_name, n_users, batch_size, backend
        )
        elapsed = min(elapsed, time.perf_counter() - start)

    assert result.n_users == n_users
    return {
        "oracle": oracle_name,
        "n_users": n_users,
        "batch_size": batch_size,
        "n_batches": -(-n_users // batch_size),
        "seconds": round(elapsed, 4),
        "reports_per_sec": round(n_users / max(elapsed, 1e-9)),
        "peak_batch_bytes": peak_batch_bytes,
        "tracemalloc_peak_bytes": int(tracemalloc_peak),
        "accumulator_bytes": int(result.support_counts.nbytes),
        "wire_bytes": server.upload_bits() // 8,
    }


def test_service_ingestion_throughput(calibration):
    """Measure ingestion throughput vs batch size and persist the profile.

    Asserts the memory model rather than absolute speed (CI machines vary):
    the accumulator stays ``O(domain)`` and the report buffer scales with
    the batch, not the population.
    """
    backend_spec, backend = _bench_backend()
    entries = []
    with backend:
        for oracle_name, n_users in WORKLOADS:
            for batch_size in BATCH_SIZES:
                entries.append(_stream_once(oracle_name, n_users, batch_size, backend))

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / "service_throughput.json"
    # Warn-only calibrated trend vs the committed artifact (read before this
    # run overwrites it); enforcement belongs to `repro bench gate`.
    trend = ARTIFACT_SCHEMAS["service_throughput"].trend(
        entries, path, calibration=calibration
    )
    for warning in trend.warnings:
        print(f"\nWARNING (trend): {warning}")
    payload = {
        "backend": backend_spec or "serial",
        "max_workers": os.environ.get("REPRO_BENCH_WORKERS"),
        "domain_size": (1 << DOMAIN_BITS) + 1,
        "entries": entries,
        "trend": trend.to_dict(),
        "calibration": calibration.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n===== service_throughput =====\n{json.dumps(payload, indent=2)}\n")

    domain_size = (1 << DOMAIN_BITS) + 1
    for entry in entries:
        assert entry["reports_per_sec"] > 0
        # Server state is O(domain): one 64-bit counter per candidate.
        assert entry["accumulator_bytes"] == domain_size * 8
        # The report buffer never exceeds one batch of reports (OUE's bit
        # matrix is the widest: batch × domain booleans).
        assert entry["peak_batch_bytes"] <= entry["batch_size"] * (domain_size + 16)
    # Throughput profile exists for every configured workload.
    assert len(entries) == len(WORKLOADS) * len(BATCH_SIZES)
