"""Table 1 reproduction: asymptotic communication and computation costs.

Paper reference: GTF/FedPEM cost O(b·k·|P|) communication; TAPS adds a g*
factor from the pruning exchanges; direct OUE upload costs |U|·|X| bits and
both OUE and OLH need an O(|U|·|X|) decoding scan at the server.
"""

from __future__ import annotations

from repro.analysis.costs import CostModel, table1_costs


def test_table1_cost_formulas(benchmark, save_report):
    model = CostModel(
        pair_bits=64,
        k=10,
        n_parties=6,
        n_users=5_000_000,
        domain_size=2_000_000,
        pruning_levels=6,
    )
    table = benchmark.pedantic(table1_costs, args=(model,), rounds=1, iterations=1)
    save_report("table1_costs", table.render(title="Table 1"))

    rows = {row.mechanism: row for row in model.all_rows()}
    # Shape assertions mirroring the paper's ordering of magnitudes.
    assert rows["OUE"].communication_bits > rows["OLH"].communication_bits
    assert rows["OLH"].communication_bits > rows["TAPS"].communication_bits
    assert rows["TAPS"].communication_bits > rows["FedPEM"].communication_bits
    assert rows["FedPEM"].communication_bits == rows["GTF"].communication_bits
    assert rows["TAPS"].computation_ops == rows["FedPEM"].computation_ops
    assert rows["OUE"].computation_ops == rows["OLH"].computation_ops
