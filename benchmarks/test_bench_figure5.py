"""Figure 5 reproduction: NCR vs privacy budget ε for k ∈ {10, 20, 40}.

Paper reference: same qualitative ordering as Figure 4 under the
rank-weighted NCR metric; GTF recovers somewhat on SYN at k = 10 because a
few items are extremely frequent in individual parties.
"""

from __future__ import annotations

from repro.experiments.figures import figure5


def test_figure5_ncr_vs_epsilon(benchmark, settings, save_report):
    result = benchmark.pedantic(figure5, args=(settings,), rounds=1, iterations=1)
    save_report("figure5_ncr_vs_epsilon", result.text)
    assert result.records
    assert all(0.0 <= rec["ncr"] <= 1.0 for rec in result.records)
