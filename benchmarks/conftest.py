"""Shared configuration for the benchmark harness.

Every benchmark reproduces one table or figure of the paper's evaluation
section (the experiment index lives in each ``test_bench_*`` module's
docstring).  Two profiles are available, selected with the
``REPRO_BENCH_PROFILE`` environment variable:

* ``quick`` (default) — reduced repetitions at the ``small`` dataset scale;
  the full suite finishes in a few minutes on a laptop.
* ``full``  — more repetitions at the ``medium`` scale; closer to the
  paper's averaging but takes correspondingly longer.

Two further environment variables profile the execution engine (see
:mod:`repro.engine` and the README's "Running sweeps in parallel"):

* ``REPRO_BENCH_BACKEND`` — ``serial`` (default), ``thread`` or ``process``;
  how each benchmark's sweep cells execute.
* ``REPRO_BENCH_WORKERS`` — worker count for the parallel backends
  (default: the executor's own default, i.e. the core count).

Backends change wall-clock time only, never results: every benchmark
reproduces the same numbers under any backend for a fixed seed.

Each benchmark renders the same rows/series the paper reports, prints them,
and also writes them to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentSettings

RESULTS_DIR = Path(__file__).parent / "results"

_PROFILES = {
    "quick": ExperimentSettings(
        scale="small",
        repetitions=1,
        granularity=6,
        epsilons=(1.0, 2.0, 3.0, 4.0, 5.0),
        ks=(10, 20, 40),
        seed=2025,
    ),
    "full": ExperimentSettings(
        scale="medium",
        repetitions=3,
        granularity=6,
        epsilons=(1.0, 2.0, 3.0, 4.0, 5.0),
        ks=(10, 20, 40),
        seed=2025,
    ),
}


def active_profile() -> str:
    """Benchmark profile selected via REPRO_BENCH_PROFILE (default: quick)."""
    return os.environ.get("REPRO_BENCH_PROFILE", "quick")


def engine_overrides() -> dict:
    """Execution-engine knobs from REPRO_BENCH_BACKEND / REPRO_BENCH_WORKERS."""
    overrides: dict = {}
    backend = os.environ.get("REPRO_BENCH_BACKEND")
    if backend:
        overrides["backend"] = backend
    workers = os.environ.get("REPRO_BENCH_WORKERS")
    if workers:
        overrides["max_workers"] = int(workers)
    return overrides


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """The sweep settings for the selected profile and engine backend."""
    profile = active_profile()
    if profile not in _PROFILES:
        raise KeyError(f"unknown REPRO_BENCH_PROFILE {profile!r}; use quick or full")
    base = _PROFILES[profile]
    overrides = engine_overrides()
    return base.with_updates(**overrides) if overrides else base


@pytest.fixture(scope="session")
def calibration():
    """This machine's price tag, measured once per benchmark session.

    Every machine-readable perf artifact embeds it
    (:class:`repro.perf.MachineCalibration`), so entries can be compared
    across machines as work-normalized ratios — the contract the
    ``repro bench gate`` trend checks are built on.
    """
    from repro.perf import calibrate

    return calibrate()


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered report under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====\n{text}\n")

    return _save
