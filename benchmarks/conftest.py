"""Shared configuration for the benchmark harness.

Every benchmark reproduces one table or figure of the paper's evaluation
section (see DESIGN.md §3 for the experiment index).  Two profiles are
available, selected with the ``REPRO_BENCH_PROFILE`` environment variable:

* ``quick`` (default) — reduced repetitions at the ``small`` dataset scale;
  the full suite finishes in a few minutes on a laptop.
* ``full``  — more repetitions at the ``medium`` scale; closer to the
  paper's averaging but takes correspondingly longer.

Each benchmark renders the same rows/series the paper reports, prints them,
and also writes them to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentSettings

RESULTS_DIR = Path(__file__).parent / "results"

_PROFILES = {
    "quick": ExperimentSettings(
        scale="small",
        repetitions=1,
        granularity=6,
        epsilons=(1.0, 2.0, 3.0, 4.0, 5.0),
        ks=(10, 20, 40),
        seed=2025,
    ),
    "full": ExperimentSettings(
        scale="medium",
        repetitions=3,
        granularity=6,
        epsilons=(1.0, 2.0, 3.0, 4.0, 5.0),
        ks=(10, 20, 40),
        seed=2025,
    ),
}


def active_profile() -> str:
    """Benchmark profile selected via REPRO_BENCH_PROFILE (default: quick)."""
    return os.environ.get("REPRO_BENCH_PROFILE", "quick")


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """The sweep settings for the selected profile."""
    profile = active_profile()
    if profile not in _PROFILES:
        raise KeyError(f"unknown REPRO_BENCH_PROFILE {profile!r}; use quick or full")
    return _PROFILES[profile]


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered report under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====\n{text}\n")

    return _save
