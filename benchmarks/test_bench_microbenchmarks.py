"""Micro-benchmarks of the building blocks (true timing benchmarks).

Unlike the table/figure reproductions (which run once and report utility),
these measure wall-clock performance of the hot code paths with proper
repetition, using pytest-benchmark's default statistics:

* one frequency-oracle round per oracle,
* a full single-party PEM run,
* a full TAPS run on the RDB stand-in.

They back the running-time columns of Table 4 with per-component numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.pem import SinglePartyPEM
from repro.core.config import MechanismConfig
from repro.core.taps import TAPSMechanism
from repro.datasets.registry import load_dataset
from repro.ldp.registry import make_oracle


@pytest.fixture(scope="module")
def bench_dataset():
    return load_dataset("rdb", scale="tiny", seed=1)


@pytest.mark.parametrize("oracle_name", ["krr", "oue", "olh"])
def test_frequency_oracle_round(benchmark, oracle_name):
    """One estimation round: 5 000 users over a 64-candidate domain."""
    oracle = make_oracle(oracle_name, epsilon=4.0)
    values = np.random.default_rng(0).integers(0, 64, size=5_000)

    def run_round():
        return oracle.run(values, 64, rng=1, mode="aggregate")

    result = benchmark(run_round)
    assert result.n_users == 5_000


def test_single_party_pem_run(benchmark, bench_dataset):
    """A full PEM pipeline on the largest party of the tiny RDB stand-in."""
    party = bench_dataset.sorted_by_population()[0]
    pem = SinglePartyPEM(k=10, epsilon=4.0, n_bits=bench_dataset.n_bits, granularity=6)

    result = benchmark(lambda: pem.run(party, rng=0))
    assert len(result.heavy_hitters) <= 10


def test_taps_end_to_end_run(benchmark, bench_dataset):
    """A full TAPS run (both phases, all parties) on the tiny RDB stand-in."""
    config = MechanismConfig(
        k=10, epsilon=4.0, n_bits=bench_dataset.n_bits, granularity=6
    )
    mechanism = TAPSMechanism(config)

    result = benchmark(lambda: mechanism.run(bench_dataset, rng=0))
    assert len(result.heavy_hitters) == 10
