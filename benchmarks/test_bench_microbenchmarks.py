"""Micro-benchmarks of the building blocks (true timing benchmarks).

Unlike the table/figure reproductions (which run once and report utility),
these measure wall-clock performance of the hot code paths with proper
repetition, using pytest-benchmark's default statistics:

* one frequency-oracle round per oracle,
* a full single-party PEM run,
* a full TAPS run on the RDB stand-in,
* serial vs. parallel sweep throughput through the execution engine
  (persisted machine-readably to ``benchmarks/results/engine_speedup.json``
  for the performance trajectory).

They back the running-time columns of Table 4 with per-component numbers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.pem import SinglePartyPEM
from repro.core.config import MechanismConfig
from repro.core.taps import TAPSMechanism
from repro.datasets.registry import load_dataset
from repro.experiments.runner import ExperimentSettings, run_sweep
from repro.ldp.registry import make_oracle
from repro.perf.gate import ARTIFACT_SCHEMAS


@pytest.fixture(scope="module")
def bench_dataset():
    return load_dataset("rdb", scale="tiny", seed=1)


@pytest.mark.parametrize("oracle_name", ["krr", "oue", "olh"])
def test_frequency_oracle_round(benchmark, oracle_name):
    """One estimation round: 5 000 users over a 64-candidate domain."""
    oracle = make_oracle(oracle_name, epsilon=4.0)
    values = np.random.default_rng(0).integers(0, 64, size=5_000)

    def run_round():
        return oracle.run(values, 64, rng=1, mode="aggregate")

    result = benchmark(run_round)
    assert result.n_users == 5_000


def test_single_party_pem_run(benchmark, bench_dataset):
    """A full PEM pipeline on the largest party of the tiny RDB stand-in."""
    party = bench_dataset.sorted_by_population()[0]
    pem = SinglePartyPEM(k=10, epsilon=4.0, n_bits=bench_dataset.n_bits, granularity=6)

    result = benchmark(lambda: pem.run(party, rng=0))
    assert len(result.heavy_hitters) <= 10


def test_taps_end_to_end_run(benchmark, bench_dataset):
    """A full TAPS run (both phases, all parties) on the tiny RDB stand-in."""
    config = MechanismConfig(
        k=10, epsilon=4.0, n_bits=bench_dataset.n_bits, granularity=6
    )
    mechanism = TAPSMechanism(config)

    result = benchmark(lambda: mechanism.run(bench_dataset, rng=0))
    assert len(result.heavy_hitters) == 10


def _effective_cores() -> int:
    """Cores actually usable by this process (honours CPU affinity masks)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_engine_sweep_speedup(calibration):
    """Serial vs. parallel sweep throughput through the execution engine.

    Runs the same small sweep grid on the serial and the process backend,
    records both as entries of ``benchmarks/results/engine_speedup.json``
    (schema: ``docs/reproducing.md``), each with a **work-normalized cost
    ratio** — ``seconds x calibrated ops/sec / sweep cells`` — so the cost
    of a sweep cell is comparable across machines without any further
    normalization.  On machines with multiple usable cores the parallel
    run must be at least ``REPRO_BENCH_SPEEDUP_MIN`` (default 1.5) times
    faster; set it to ``0`` to record without asserting on
    constrained/noisy runners.

    On a single-core runner a "speedup" would only measure process-spawn
    overhead, so the parallel entry records an explicit ``skipped_reason``
    — but the serial entry still carries its calibrated cost ratio, so
    even a 1-core runner contributes a comparable measurement to the perf
    trajectory instead of a bare skip.
    """
    sweep_settings = ExperimentSettings(
        scale="small",
        repetitions=3,
        granularity=6,
        epsilons=(1.0, 4.0),
        ks=(10,),
        datasets=("rdb", "ycm"),
        mechanisms=("fedpem", "taps"),
        seed=2025,
    )
    parallel_workers = _effective_cores()

    start = time.perf_counter()
    serial = run_sweep(sweep_settings, backend="serial")
    serial_seconds = time.perf_counter() - start
    n_cells = len(serial.records)

    entries = [
        {
            "measure": "serial_sweep",
            "backend": "serial",
            "n_cells": n_cells,
            "seconds": round(serial_seconds, 4),
            "cost_ratio": round(
                calibration.normalized_cost(serial_seconds, n_cells), 4
            ),
        }
    ]

    speedup = records_identical = None
    if parallel_workers < 2:
        entries.append(
            {
                "measure": "parallel_sweep",
                "skipped_reason": (
                    f"speedup needs >=2 cores, runner has {parallel_workers}"
                ),
            }
        )
    else:
        start = time.perf_counter()
        parallel = run_sweep(
            sweep_settings, backend="process", max_workers=parallel_workers
        )
        parallel_seconds = time.perf_counter() - start

        def strip(records):
            return [
                {key: value for key, value in rec.items() if key != "runtime_seconds"}
                for rec in records
            ]

        records_identical = strip(serial.records) == strip(parallel.records)
        speedup = serial_seconds / max(parallel_seconds, 1e-9)
        entries.append(
            {
                "measure": "parallel_sweep",
                "backend": "process",
                "n_cells": n_cells,
                "seconds": round(parallel_seconds, 4),
                "cost_ratio": round(
                    calibration.normalized_cost(parallel_seconds, n_cells), 4
                ),
                "speedup": round(speedup, 4),
                "records_identical": records_identical,
            }
        )

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / "engine_speedup.json"
    # Warn-only trend vs the committed artifact; cost_ratio is already
    # work-normalized, so the policy compares it raw (normalize=False).
    trend = ARTIFACT_SCHEMAS["engine_speedup"].trend(
        entries, path, calibration=calibration
    )
    for warning in trend.warnings:
        print(f"\nWARNING (trend): {warning}")
    payload = {
        "cpu_count": os.cpu_count(),
        "effective_cores": parallel_workers,
        "entries": entries,
        "trend": trend.to_dict(),
        "calibration": calibration.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n===== engine_speedup =====\n{json.dumps(payload, indent=2)}\n")

    assert entries[0]["cost_ratio"] > 0
    if records_identical is not None:
        assert records_identical, "parallel sweep must reproduce the serial records"
        minimum = float(os.environ.get("REPRO_BENCH_SPEEDUP_MIN", "1.5"))
        if minimum > 0:
            assert speedup > minimum, (
                f"expected >{minimum}x speedup on multi-core, got {speedup:.2f}x"
            )
