"""Table 4 reproduction: scalability on UBA under varying user population.

Paper reference: F1 stays flat as the population is subsampled from 100%
down to 25%; communication of the prefix-tree mechanisms stays in the tens
of kilobits while direct OUE upload would need petabytes and direct OLH
would require an infeasible decoding scan; TAPS costs a little more than
GTF/FedPEM (pruning exchanges, sequential phase II) but stays practical.
"""

from __future__ import annotations

from repro.experiments.tables import table4


def test_table4_scalability_on_uba(benchmark, settings, save_report):
    result = benchmark.pedantic(
        table4,
        args=(settings,),
        kwargs={"user_fractions": (0.25, 0.5, 0.75, 1.0)},
        rounds=1,
        iterations=1,
    )
    save_report("table4_scalability", result.text)

    records = result.records
    assert {rec["user_fraction"] for rec in records} == {0.25, 0.5, 0.75, 1.0}
    # Shape assertions from the paper:
    for rec in records:
        # Direct upload is orders of magnitude more expensive than any
        # prefix-tree mechanism at every population size.
        assert rec["oue_communication_bits"] > 1000 * rec["communication_bits"]
    # TAPS ships more bits than FedPEM (pruning candidates) but stays small.
    taps_bits = [r["communication_bits"] for r in records if r["mechanism"] == "taps"]
    fedpem_bits = [r["communication_bits"] for r in records if r["mechanism"] == "fedpem"]
    assert sum(taps_bits) > sum(fedpem_bits)
