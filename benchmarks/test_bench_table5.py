"""Table 5 reproduction: fixed extension numbers vs the adaptive strategy.

Paper reference: the best fixed t varies per dataset (t=k on some, t=2k/3k
on others) while the adaptive rule matches or beats every fixed choice,
which is the argument for adapting t to the observed noisy distribution.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.tables import table5


def test_table5_fixed_vs_adaptive_extension(benchmark, settings, save_report):
    result = benchmark.pedantic(table5, args=(settings,), rounds=1, iterations=1)
    save_report("table5_extension_ablation", result.text)

    records = result.records
    assert {rec["variant"] for rec in records} == {"t=k/2", "t=k", "t=2k", "t=3k", "adaptive"}
    # Shape: averaged over datasets, the adaptive rule should be competitive
    # with the best fixed alternative (within a small tolerance, since the
    # quick profile averages few repetitions).
    by_variant = {
        variant: float(
            np.mean([r["f1"] for r in records if r["variant"] == variant])
        )
        for variant in ("t=k/2", "t=k", "t=2k", "t=3k", "adaptive")
    }
    best_fixed = max(v for name, v in by_variant.items() if name != "adaptive")
    assert by_variant["adaptive"] >= best_fixed - 0.15
