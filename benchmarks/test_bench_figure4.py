"""Figure 4 reproduction: F1 vs privacy budget ε for k ∈ {10, 20, 40}.

Paper reference: GTF < FedPEM < TAPS on every dataset, with F1 rising as ε
grows; TAPS's advantage is largest on the most heterogeneous datasets
(SYN, TYS).  This bench regenerates the same mechanism × ε series per
dataset/k panel.
"""

from __future__ import annotations

from repro.experiments.figures import figure4


def test_figure4_f1_vs_epsilon(benchmark, settings, save_report):
    result = benchmark.pedantic(figure4, args=(settings,), rounds=1, iterations=1)
    save_report("figure4_f1_vs_epsilon", result.text)
    assert result.records
    # Sanity of shape: every panel has all three mechanisms and every ε.
    for (dataset, k), series in result.panels.items():
        assert set(series) == {"gtf", "fedpem", "taps"}
        for mech_series in series.values():
            assert set(mech_series) == set(settings.epsilons)
