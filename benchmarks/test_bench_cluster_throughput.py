"""Cluster-throughput microbenchmark: shard scaling of the gateway tier.

Stands up in-process shard gateways (1 then 2 — the cheapest honest
scaling probe) and drives each topology with the same
:func:`~repro.net.loadgen.run_loadgen` workload through
:class:`~repro.cluster.coordinator.ClusterConnection` routing, recording
per shard count:

* ``reports_per_sec`` — end-to-end throughput (client perturb + encode +
  ring routing + TCP + shard decode + cross-shard merge barrier),
* ``p50/p95/p99`` batch latency in milliseconds (send→ack round trip),
* ``upload_bytes`` — exact bytes the run put on the wire (identical
  across shard counts: routing is transport).

Both tiers honour ``REPRO_BENCH_BACKEND`` / ``REPRO_BENCH_WORKERS``
(default: ``thread``).  Results persist machine-readably to
``benchmarks/results/cluster_throughput.json`` (schema:
``docs/reproducing.md``) with the repo-standard warn-only trend block vs
the last committed run.  Assertions pin well-formedness and the wire
invariant, not absolute speed; low-core runners skip with a reason (a
cluster benchmark on one core measures scheduling, not sharding).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.net.gateway import start_gateway
from repro.net.loadgen import run_loadgen

USERS_PER_ROUND = 10_000
ROUNDS = 2
BATCH_SIZE = 2_048
LEVEL = 6
CONNECTIONS = 2

SHARD_COUNTS = (1, 2)


def _bench_backend() -> tuple[str, int | None]:
    spec = os.environ.get("REPRO_BENCH_BACKEND") or "thread"
    workers = os.environ.get("REPRO_BENCH_WORKERS")
    return spec, (int(workers) if workers else None)


#: A new run is flagged (warn-only) when its throughput falls below this
#: fraction of the last committed run at the same shard count.
_TREND_WARN_RATIO = 0.5


def _trend_vs_previous(entries: list[dict], path: Path) -> dict:
    """Warn-only throughput comparison against the last committed results."""
    try:
        previous = json.loads(path.read_text())
    except (OSError, ValueError):
        return {"baseline": None, "comparisons": [], "warnings": []}
    baseline = {
        e["shards"]: e["reports_per_sec"]
        for e in previous.get("entries", [])
        if e.get("reports_per_sec")
    }
    comparisons, warnings = [], []
    for entry in entries:
        old = baseline.get(entry["shards"])
        if not old:
            continue
        ratio = entry["reports_per_sec"] / old
        comparisons.append(
            {
                "shards": entry["shards"],
                "previous_reports_per_sec": old,
                "ratio": round(ratio, 3),
            }
        )
        if ratio < _TREND_WARN_RATIO:
            warnings.append(
                f"{entry['shards']} shard(s): "
                f"{entry['reports_per_sec']:,} reports/s is {ratio:.2f}x the "
                f"last committed run ({old:,})"
            )
    return {"baseline": "committed", "comparisons": comparisons, "warnings": warnings}


def test_cluster_throughput_profile():
    """Measure reports/sec and latency percentiles vs shard count."""
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            f"cluster scaling needs >= 2 cores to mean anything, runner has {cores}"
        )
    backend, workers = _bench_backend()
    entries = []
    for n_shards in SHARD_COUNTS:
        handles = [
            start_gateway(decode_backend=backend, decode_workers=workers)
            for _ in range(n_shards)
        ]
        try:
            report = run_loadgen(
                ",".join(handle.address for handle in handles),
                dataset="rdb",
                scale="small",
                level=LEVEL,
                rounds=ROUNDS,
                batch_size=BATCH_SIZE,
                users_per_round=USERS_PER_ROUND,
                connections=CONNECTIONS,
                backend=backend,
                max_workers=workers,
                seed=0,
                include_gateway_stats=False,
            )
        finally:
            for handle in handles:
                handle.close()
        entries.append(
            {
                "shards": n_shards,
                "connections": CONNECTIONS,
                "rounds": ROUNDS,
                "n_reports": report.n_reports,
                "n_batches": report.n_batches,
                "seconds": report.elapsed_seconds,
                "reports_per_sec": round(report.reports_per_sec),
                "p50_ms": report.latency_ms["p50"],
                "p95_ms": report.latency_ms["p95"],
                "p99_ms": report.latency_ms["p99"],
                "upload_bytes": report.upload_bits // 8,
            }
        )

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / "cluster_throughput.json"
    trend = _trend_vs_previous(entries, path)
    for warning in trend["warnings"]:
        print(f"\nWARNING (trend): {warning}")
    payload = {
        "backend": backend,
        "max_workers": os.environ.get("REPRO_BENCH_WORKERS"),
        "level": LEVEL,
        "batch_size": BATCH_SIZE,
        "users_per_round": USERS_PER_ROUND,
        "connections": CONNECTIONS,
        "entries": entries,
        "trend": trend,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n===== cluster_throughput =====\n{json.dumps(payload, indent=2)}\n")

    assert len(entries) == len(SHARD_COUNTS)
    for entry in entries:
        assert entry["n_reports"] == CONNECTIONS * ROUNDS * USERS_PER_ROUND
        assert entry["reports_per_sec"] > 0
        assert 0 < entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
    # Routing is transport: the exact wire bytes must not depend on the
    # shard count (the cluster half of the bit-identity invariant).
    assert len({entry["upload_bytes"] for entry in entries}) == 1
