"""Cluster-throughput microbenchmark: shard scaling of the gateway tier.

Stands up in-process shard gateways (1 then 2 — the cheapest honest
scaling probe) and drives each topology with the same
:func:`~repro.net.loadgen.run_loadgen` workload through
:class:`~repro.cluster.coordinator.ClusterConnection` routing, recording
per shard count:

* ``reports_per_sec`` — end-to-end throughput (client perturb + encode +
  ring routing + TCP + shard decode + cross-shard merge barrier),
* ``p50/p95/p99`` batch latency in milliseconds (send→ack round trip),
* ``upload_bytes`` — exact bytes the run put on the wire (identical
  across shard counts: routing is transport).

Both tiers honour ``REPRO_BENCH_BACKEND`` / ``REPRO_BENCH_WORKERS``
(default: ``thread``).  Results persist machine-readably to
``benchmarks/results/cluster_throughput.json`` (schema:
``docs/reproducing.md``) with the shared calibrated trend block
(:mod:`repro.perf.trend`) vs the last committed run.  Assertions pin
well-formedness and the wire invariant, not absolute speed; on low-core
runners the multi-shard topologies record entry-level skips with a
reason (a cluster benchmark on one core measures scheduling, not
sharding) while the 1-shard topology still records a real calibrated
measurement.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.net.gateway import start_gateway
from repro.net.loadgen import run_loadgen
from repro.perf.calibrate import effective_cores
from repro.perf.gate import ARTIFACT_SCHEMAS

USERS_PER_ROUND = 10_000
ROUNDS = 2
BATCH_SIZE = 2_048
LEVEL = 6
CONNECTIONS = 2

SHARD_COUNTS = (1, 2)


def _bench_backend() -> tuple[str, int | None]:
    spec = os.environ.get("REPRO_BENCH_BACKEND") or "thread"
    workers = os.environ.get("REPRO_BENCH_WORKERS")
    return spec, (int(workers) if workers else None)


def test_cluster_throughput_profile(calibration):
    """Measure reports/sec and latency percentiles vs shard count.

    On a <2-core runner a multi-shard "scaling" number would only measure
    scheduling, so multi-shard topologies record an entry-level skip with
    the reason — but the 1-shard topology still runs and records a real,
    calibrated measurement instead of the whole benchmark bailing out.
    """
    cores = effective_cores()
    backend, workers = _bench_backend()
    entries = []
    for n_shards in SHARD_COUNTS:
        if n_shards > 1 and cores < 2:
            entries.append(
                {
                    "shards": n_shards,
                    "skipped_reason": (
                        f"cluster scaling needs >= 2 cores to mean anything, "
                        f"runner has {cores}"
                    ),
                }
            )
            continue
        handles = [
            start_gateway(decode_backend=backend, decode_workers=workers)
            for _ in range(n_shards)
        ]
        try:
            report = run_loadgen(
                ",".join(handle.address for handle in handles),
                dataset="rdb",
                scale="small",
                level=LEVEL,
                rounds=ROUNDS,
                batch_size=BATCH_SIZE,
                users_per_round=USERS_PER_ROUND,
                connections=CONNECTIONS,
                backend=backend,
                max_workers=workers,
                seed=0,
                include_gateway_stats=False,
            )
        finally:
            for handle in handles:
                handle.close()
        entries.append(
            {
                "shards": n_shards,
                "connections": CONNECTIONS,
                "rounds": ROUNDS,
                "n_reports": report.n_reports,
                "n_batches": report.n_batches,
                "seconds": report.elapsed_seconds,
                "reports_per_sec": round(report.reports_per_sec),
                "p50_ms": report.latency_ms["p50"],
                "p95_ms": report.latency_ms["p95"],
                "p99_ms": report.latency_ms["p99"],
                "upload_bytes": report.upload_bits // 8,
            }
        )

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / "cluster_throughput.json"
    # Warn-only calibrated trend vs the committed artifact (read before this
    # run overwrites it); enforcement belongs to `repro bench gate`.
    trend = ARTIFACT_SCHEMAS["cluster_throughput"].trend(
        entries, path, calibration=calibration
    )
    for warning in trend.warnings:
        print(f"\nWARNING (trend): {warning}")
    payload = {
        "backend": backend,
        "max_workers": os.environ.get("REPRO_BENCH_WORKERS"),
        "level": LEVEL,
        "batch_size": BATCH_SIZE,
        "users_per_round": USERS_PER_ROUND,
        "connections": CONNECTIONS,
        "entries": entries,
        "trend": trend.to_dict(),
        "calibration": calibration.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n===== cluster_throughput =====\n{json.dumps(payload, indent=2)}\n")

    assert len(entries) == len(SHARD_COUNTS)
    measured = [entry for entry in entries if "skipped_reason" not in entry]
    assert measured, "at least the 1-shard topology must run on any machine"
    for entry in measured:
        assert entry["n_reports"] == CONNECTIONS * ROUNDS * USERS_PER_ROUND
        assert entry["reports_per_sec"] > 0
        assert 0 < entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
    # Routing is transport: the exact wire bytes must not depend on the
    # shard count (the cluster half of the bit-identity invariant).  Only
    # checkable when more than one topology actually ran.
    if len(measured) > 1:
        assert len({entry["upload_bytes"] for entry in measured}) == 1
