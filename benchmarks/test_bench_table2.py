"""Table 2 reproduction: the federated dataset inventory.

Paper reference: five datasets (RDB, YCM, TYS, UBA, SYN) with 2–8 parties,
strongly unequal party sizes and partially overlapping item vocabularies.
The synthetic stand-ins keep the same party counts and relative sizes at a
laptop-friendly scale.
"""

from __future__ import annotations

from repro.datasets.registry import DATASET_NAMES, dataset_summary_table, load_dataset


def test_table2_dataset_inventory(benchmark, settings, save_report):
    table = benchmark.pedantic(
        dataset_summary_table,
        kwargs={"scale": settings.scale, "seed": settings.seed},
        rounds=1,
        iterations=1,
    )
    save_report("table2_datasets", table.render(title="Table 2"))

    expected_parties = {"rdb": 2, "ycm": 4, "tys": 6, "uba": 6, "syn": 8}
    for name in DATASET_NAMES:
        dataset = load_dataset(name, scale=settings.scale, seed=settings.seed)
        assert dataset.n_parties == expected_parties[name]
        assert dataset.n_common_items() > 0
        # Party sizes must be unequal (the heterogeneity Table 2 documents),
        # except for SYN where the two smallest parties are equal by design.
        sizes = sorted(p.n_users for p in dataset.parties)
        assert sizes[0] < sizes[-1]
