"""Table 8 reproduction: varying data heterogeneity (Dirichlet β) on SYN.

Paper reference: TAPS beats both baselines at every skew level; all
mechanisms degrade as β shrinks (more domain skew), but TAPS degrades the
least thanks to the alignment and pruning strategies.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.tables import table8


def test_table8_dirichlet_beta_sweep(benchmark, settings, save_report):
    result = benchmark.pedantic(
        table8, args=(settings,), kwargs={"betas": (0.2, 0.5, 0.8)}, rounds=1, iterations=1
    )
    save_report("table8_heterogeneity", result.text)

    records = result.records
    assert {rec["beta"] for rec in records} == {0.2, 0.5, 0.8}
    # Shape: TAPS at least matches GTF on average over skew levels.
    taps = np.mean([r["f1"] for r in records if r["mechanism"] == "taps"])
    gtf = np.mean([r["f1"] for r in records if r["mechanism"] == "gtf"])
    assert taps >= gtf - 0.05
