"""Network-runtime throughput microbenchmark: gateway + load generator.

Stands up an :class:`~repro.net.gateway.AggregationGateway` on an
ephemeral localhost port and drives it with
:func:`~repro.net.loadgen.run_loadgen` at several connection counts,
recording per connection count:

* ``reports_per_sec`` — end-to-end throughput (client perturb + encode +
  TCP + gateway decode + shard accumulate),
* ``p50/p95/p99`` batch latency in milliseconds (send→ack round trip),
* ``upload_bytes`` — exact bytes the run put on the wire.

The gateway's decode fan-out and the load generator's client pools both
honour ``REPRO_BENCH_BACKEND`` / ``REPRO_BENCH_WORKERS`` (default:
``thread`` — a serial loadgen would serialise the connections and measure
nothing).  Results persist machine-readably to
``benchmarks/results/net_throughput.json`` for the performance trajectory;
assertions pin well-formedness, not absolute speed (CI machines vary).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.net.gateway import start_gateway
from repro.net.loadgen import run_loadgen
from repro.perf.gate import ARTIFACT_SCHEMAS

#: Reports per (connection, round) and rounds per connection: sized so the
#: quick profile finishes in a few seconds while still crossing several
#: wire batches per round.
USERS_PER_ROUND = 20_000
ROUNDS = 2
BATCH_SIZE = 4_096
LEVEL = 6

CONNECTION_COUNTS = (1, 2, 4)


def _bench_backend() -> tuple[str, int | None]:
    spec = os.environ.get("REPRO_BENCH_BACKEND") or "thread"
    workers = os.environ.get("REPRO_BENCH_WORKERS")
    return spec, (int(workers) if workers else None)


def test_net_throughput_profile(calibration):
    """Measure reports/sec and latency percentiles vs connection count."""
    backend, workers = _bench_backend()
    entries = []
    with start_gateway(decode_backend=backend, decode_workers=workers) as handle:
        for connections in CONNECTION_COUNTS:
            report = run_loadgen(
                handle.address,
                dataset="rdb",
                scale="small",
                level=LEVEL,
                rounds=ROUNDS,
                batch_size=BATCH_SIZE,
                users_per_round=USERS_PER_ROUND,
                connections=connections,
                backend=backend,
                max_workers=workers,
                seed=0,
            )
            entries.append(
                {
                    "connections": connections,
                    "rounds": ROUNDS,
                    "n_reports": report.n_reports,
                    "n_batches": report.n_batches,
                    "seconds": report.elapsed_seconds,
                    "reports_per_sec": round(report.reports_per_sec),
                    "p50_ms": report.latency_ms["p50"],
                    "p95_ms": report.latency_ms["p95"],
                    "p99_ms": report.latency_ms["p99"],
                    "upload_bytes": report.upload_bits // 8,
                }
            )

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / "net_throughput.json"
    # Warn-only calibrated trend vs the committed artifact (read before this
    # run overwrites it); enforcement belongs to `repro bench gate`.
    trend = ARTIFACT_SCHEMAS["net_throughput"].trend(
        entries, path, calibration=calibration
    )
    for warning in trend.warnings:
        print(f"\nWARNING (trend): {warning}")
    payload = {
        "backend": backend,
        "max_workers": os.environ.get("REPRO_BENCH_WORKERS"),
        "level": LEVEL,
        "batch_size": BATCH_SIZE,
        "users_per_round": USERS_PER_ROUND,
        "entries": entries,
        "trend": trend.to_dict(),
        "calibration": calibration.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n===== net_throughput =====\n{json.dumps(payload, indent=2)}\n")

    assert len(entries) == len(CONNECTION_COUNTS)
    for entry in entries:
        # Every connection streams its full sampled population each round.
        assert entry["n_reports"] == entry["connections"] * ROUNDS * USERS_PER_ROUND
        assert entry["reports_per_sec"] > 0
        assert entry["upload_bytes"] > 0
        assert 0 < entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
