"""Table 6 reproduction: TAPS with vs without the shared shallow trie.

Paper reference: removing the shared shallow trie construction lowers F1 on
every dataset — the warm start is what aligns shallow-level extension
decisions with the global target.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.tables import table6


def test_table6_shared_trie_ablation(benchmark, settings, save_report):
    result = benchmark.pedantic(table6, args=(settings,), rounds=1, iterations=1)
    save_report("table6_shared_trie_ablation", result.text)

    records = result.records
    with_trie = np.mean([r["f1"] for r in records if r["shared_trie"]])
    without_trie = np.mean([r["f1"] for r in records if not r["shared_trie"]])
    # Averaged over datasets the shared trie should not hurt (paper: it helps
    # on every dataset; quick-profile noise gets a small tolerance).
    assert with_trie >= without_trie - 0.1
