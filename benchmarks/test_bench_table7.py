"""Table 7 reproduction: statistical heterogeneity (average local recall).

Paper reference: TAPS lifts the average per-party recall of the global
ground truths by 10–40% over the best baseline, because the shared trie and
pruning strategies align what each party surfaces locally with the global
target.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.tables import table7


def test_table7_average_local_recall(benchmark, settings, save_report):
    result = benchmark.pedantic(table7, args=(settings,), rounds=1, iterations=1)
    save_report("table7_local_recall", result.text)

    records = result.records
    assert len(records) == len(settings.datasets)
    for rec in records:
        for mech in ("gtf", "fedpem", "taps"):
            assert 0.0 <= rec[f"recall_{mech}"] <= 1.0
    # Averaged across datasets TAPS should at least match FedPEM, the
    # baseline that (like TAPS) lets every party estimate locally.  GTF's
    # per-level global filtering makes its "local" lists mirror the global
    # selection almost by construction, which at the reduced benchmark scale
    # can inflate its recall above the paper's values — see EXPERIMENTS.md.
    taps = np.mean([r["recall_taps"] for r in records])
    fedpem = np.mean([r["recall_fedpem"] for r in records])
    assert taps >= fedpem - 0.1
