"""Table 3 reproduction: F1 under varying step sizes ⌊m/g⌋ ∈ {2, 4, 6}.

Paper reference: TAPS achieves the best F1 at every step size (ε = 4,
k = 10); larger extension lengths amplify the benefit of pruning because
candidate domains grow as 2^step per level.
"""

from __future__ import annotations

from repro.experiments.tables import table3


def test_table3_step_size_sweep(benchmark, settings, save_report):
    result = benchmark.pedantic(
        table3, args=(settings,), kwargs={"step_sizes": (2, 4, 6)}, rounds=1, iterations=1
    )
    save_report("table3_step_sizes", result.text)
    assert {rec["step_size"] for rec in result.records} == {2, 4, 6}
    assert all(0.0 <= rec["f1"] <= 1.0 for rec in result.records)
