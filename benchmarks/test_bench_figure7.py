"""Figure 7 reproduction: TAPS vs TAP (consensus-pruning ablation).

Paper reference: TAPS consistently matches or outperforms TAP across
datasets and queries k; the gap is the contribution of the consensus-based
pruning strategy.
"""

from __future__ import annotations

from repro.experiments.figures import figure7


def test_figure7_taps_vs_tap(benchmark, settings, save_report):
    result = benchmark.pedantic(figure7, args=(settings,), rounds=1, iterations=1)
    save_report("figure7_taps_vs_tap", result.text)
    mechanisms = {rec["mechanism"] for rec in result.records}
    assert mechanisms == {"tap", "taps"}
