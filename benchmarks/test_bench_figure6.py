"""Figure 6 reproduction: F1 vs ε under the OUE and OLH frequency oracles (k=10).

Paper reference: the ordering of the mechanisms is unchanged when the FO is
swapped from k-RR to OUE or OLH, demonstrating that TAPS is FO-agnostic.
"""

from __future__ import annotations

from repro.experiments.figures import figure6


def test_figure6_f1_under_oue_and_olh(benchmark, settings, save_report):
    result = benchmark.pedantic(figure6, args=(settings,), rounds=1, iterations=1)
    save_report("figure6_f1_oue_olh", result.text)
    oracles = {rec["oracle"] for rec in result.records}
    assert oracles == {"oue", "olh"}
    assert all(rec["k"] == 10 for rec in result.records)
