"""repro — Federated heavy hitter analytics with local differential privacy.

A complete reproduction of "Federated Heavy Hitter Analytics with Local
Differential Privacy" (SIGMOD 2025): the TAP and TAPS mechanisms, every
substrate they rely on (ε-LDP frequency oracles, prefix-tree machinery, a
federated simulation), the paper's baselines (PEM, FedPEM, GTF), synthetic
stand-ins for the evaluation datasets, utility metrics, and an experiment
harness that regenerates every table and figure of the evaluation section.

Quickstart
----------
>>> from repro import load_dataset, TAPSMechanism, MechanismConfig, f1_score
>>> dataset = load_dataset("rdb", scale="tiny", seed=0)
>>> config = MechanismConfig(k=10, epsilon=4.0, n_bits=dataset.n_bits, granularity=8)
>>> result = TAPSMechanism(config).run(dataset, rng=0)
>>> truth = dataset.true_top_k(10)
>>> 0.0 <= f1_score(result.heavy_hitters, truth) <= 1.0
True
"""

from repro.core import (
    ExtensionStrategy,
    MechanismConfig,
    MechanismResult,
    TAPMechanism,
    TAPSMechanism,
)
from repro.baselines import (
    DirectUploadCostModel,
    FedPEMMechanism,
    GTFMechanism,
    SinglePartyPEM,
    TrieHHBaseline,
)
from repro.datasets import FederatedDataset, dataset_summary_table, load_dataset
from repro.engine import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from repro.ldp import (
    KRandomizedResponse,
    OptimizedLocalHashing,
    OptimizedUnaryEncoding,
    make_oracle,
)
from repro.metrics import average_local_recall, f1_score, ncr_score
from repro.federation import Party
from repro.scenarios import Scenario, ScenarioSpec, run_scenario
from repro.service import (
    AggregationServer,
    ClientPool,
    SlidingWindowDiscovery,
    run_in_service_mode,
)

__version__ = "1.0.0"

__all__ = [
    "ExtensionStrategy",
    "MechanismConfig",
    "MechanismResult",
    "TAPMechanism",
    "TAPSMechanism",
    "FedPEMMechanism",
    "GTFMechanism",
    "SinglePartyPEM",
    "TrieHHBaseline",
    "DirectUploadCostModel",
    "FederatedDataset",
    "load_dataset",
    "dataset_summary_table",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "get_backend",
    "KRandomizedResponse",
    "OptimizedUnaryEncoding",
    "OptimizedLocalHashing",
    "make_oracle",
    "f1_score",
    "ncr_score",
    "average_local_recall",
    "Party",
    "AggregationServer",
    "ClientPool",
    "Scenario",
    "ScenarioSpec",
    "SlidingWindowDiscovery",
    "run_in_service_mode",
    "run_scenario",
    "__version__",
]
