"""Cluster coordinator: consistent-hash routing and the round-close barrier.

Two layers, mirroring :mod:`repro.net.client`:

* :class:`ClusterConnection` — the :class:`~repro.net.client.GatewayConnection`
  of a *cluster*: one logical round fans out into a physical sub-round on
  every shard gateway, report batches route to the shard the
  :class:`~repro.cluster.ring.HashRing` assigns them, and
  :meth:`ClusterConnection.finalize` runs the round-close **barrier** —
  drain every shard, collect each shard's raw
  :class:`~repro.service.server.ExportedShardState`, merge the exact int64
  counts with the :class:`~repro.service.shards.LevelShard` algebra, and
  estimate **once** via the same
  :func:`~repro.service.server.finalize_estimate` the single server calls.
* :class:`ClusterCoordinator` — the
  :class:`~repro.net.client.RemoteAggregationServer` of a cluster: the
  same server protocol (``open_round`` / ``ingest_batch`` /
  ``finalize_round`` / ``drain_messages`` / ``shutdown``), so
  :class:`~repro.service.server.ServiceRoundRunner` and every mechanism
  run over an N-shard cluster unchanged.

**Bit-identity.**  The accounting is *logical*, exactly like PR 5 treated
frame headers as pure transport: the coordinator logs **one**
``service_round_open`` message at the canonical broadcast encoding's bits
even though N physical broadcasts go out (shard fan-out is transport, not
protocol), and every report batch is logged at its exact canonical wire
bits on whichever shard it lands.  Because the merge algebra is
associative/commutative and exact over int64 counts, and because the
estimate is produced by the same ``finalize_estimate`` call over the same
merged inputs, a fixed-seed cluster run is bit-identical — estimates,
transcripts, wire-bit totals — to the single-gateway and in-memory runs
(``tests/test_cluster_equivalence.py``).

**Failure taxonomy** (structured :class:`~repro.service.server.ServiceError`
codes, branchable like the PR 5 codes):

* ``shard_unavailable`` — a shard gateway died or stopped answering
  (socket timeouts bound every read: never a hang);
* ``ring_version_mismatch`` — the ring changed between round open and the
  barrier, so routing can no longer be trusted;
* ``shard_mismatch`` — a shard's exported state disagrees with the
  logical round (identity fields or accounting totals).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.ldp.base import EstimationResult
from repro.ldp.registry import make_oracle
from repro.net.client import GatewayConnection, RemoteAggregationServer, parse_address
from repro.obs.registry import METRICS_SCHEMA, MetricsRegistry
from repro.service.protocol import RoundBroadcast, encode_broadcast, wire_bits
from repro.service.server import ExportedShardState, ServiceError, finalize_estimate


def parse_cluster_addresses(addresses) -> list[str]:
    """Normalise a cluster address (comma-joined string or iterable).

    Every element must be ``HOST:PORT``; duplicates are rejected because
    opening the same gateway twice would double-count its sub-round.
    A single address is a valid (1-shard) cluster.
    """
    if isinstance(addresses, str):
        parts = [part.strip() for part in addresses.split(",")]
    else:
        parts = [str(part).strip() for part in addresses]
    if not parts or any(not part for part in parts):
        raise ValueError(
            f"cluster address must be a non-empty list of HOST:PORT, got {addresses!r}"
        )
    normalised = []
    for part in parts:
        host, port = parse_address(part)
        normalised.append(f"{host}:{port}")
    if len(set(normalised)) != len(normalised):
        raise ValueError(f"cluster address lists a shard twice: {normalised}")
    return normalised


@dataclass
class _ClusterRound:
    """Coordinator-side state of one logical round spanning every shard."""

    round_id: int
    party: str
    level: int
    oracle_name: str
    epsilon: float
    domain_size: int
    broadcast_bits: int
    ring_version: str
    shard_round_ids: list[int] = field(default_factory=list)
    next_seq: int = 0
    n_batches: int = 0
    upload_bits: int = 0
    is_open: bool = True


class ClusterConnection:
    """Synchronous client of an N-shard gateway cluster.

    The :class:`~repro.net.client.GatewayConnection` surface —
    ``open_round`` / ``send_batch`` / ``drain`` / ``finalize`` /
    ``stats`` / ``latencies`` — over a list of shard gateways, plus the
    cluster-only :meth:`shutdown_cluster`.

    Parameters
    ----------
    addresses:
        Comma-joined ``HOST:PORT`` string (or iterable of them), one per
        shard gateway.  Order defines shard indices on the ring.
    timeout:
        Socket timeout for every shard connection; a stuck shard
        surfaces as a ``shard_unavailable`` :class:`ServiceError`,
        never a hang.
    op_timeout:
        Per-operation deadline shared by all reads of one shard
        operation (see :class:`~repro.net.client.GatewayConnection`).
        Without it a *straggling* (not dead) shard that trickles one
        frame per ``timeout - ε`` stretches the finalize barrier by its
        full drain; with it the barrier raises ``shard_unavailable``
        after at most ``op_timeout`` per shard.
    ring_seed / n_vnodes:
        :class:`~repro.cluster.ring.HashRing` parameters.  Routing only
        affects *which* shard accumulates a batch, never the merged
        result — the merge algebra is partition-independent.
    telemetry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        coordinator's own counters (per-shard route counts, merge-barrier
        wait).  One is created when omitted; either way
        :meth:`metrics` returns it alongside every shard's scrape.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  Shard connections
        share it (client round/batch spans per shard), and the finalize
        barrier records a ``cluster.merge_barrier`` span.  Observe-only.
    """

    def __init__(
        self,
        addresses,
        *,
        timeout: float = 60.0,
        op_timeout: float | None = None,
        ring_seed: int = 0,
        n_vnodes: int | None = None,
        telemetry: MetricsRegistry | None = None,
        tracer=None,
    ):
        self.addresses = parse_cluster_addresses(addresses)
        self.n_shards = len(self.addresses)
        self.timeout = float(timeout)
        self.op_timeout = None if op_timeout is None else float(op_timeout)
        self.ring = HashRing(
            self.n_shards,
            seed=int(ring_seed),
            n_vnodes=int(n_vnodes) if n_vnodes else DEFAULT_VNODES,
        )
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self.tracer = tracer
        self._m_rounds_opened = self.telemetry.counter("cluster_rounds_opened_total")
        self._m_rounds_merged = self.telemetry.counter("cluster_rounds_merged_total")
        self._m_upload_bits = self.telemetry.counter("cluster_upload_bits_total")
        self._m_routed = [
            self.telemetry.counter("cluster_batches_routed_total", shard=shard)
            for shard in range(self.n_shards)
        ]
        self._m_barrier_ms = self.telemetry.histogram("cluster_merge_barrier_ms")
        self._connections: list[GatewayConnection] = []
        self._rounds: dict[int, _ClusterRound] = {}
        self._next_round_id = 0
        try:
            for shard, address in enumerate(self.addresses):
                try:
                    self._connections.append(
                        GatewayConnection(
                            address,
                            timeout=self.timeout,
                            op_timeout=self.op_timeout,
                            tracer=self.tracer,
                        )
                    )
                except (OSError, EOFError) as exc:
                    raise self._unavailable(shard, exc) from exc
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # Shard plumbing
    # ------------------------------------------------------------------ #
    def _unavailable(self, shard: int, exc: BaseException) -> ServiceError:
        return ServiceError(
            f"shard {shard} ({self.addresses[shard]}) is unavailable: {exc!r}",
            code="shard_unavailable",
        )

    def _on_shard(self, shard: int, fn, *args):
        """Run one shard operation, mapping transport death to the
        structured ``shard_unavailable`` code.  Service errors the shard
        itself raises (the error-frame path) pass through untouched."""
        try:
            return fn(*args)
        except (OSError, EOFError) as exc:
            raise self._unavailable(shard, exc) from exc

    def _round(self, round_id: int) -> _ClusterRound:
        round_ = self._rounds.get(int(round_id))
        if round_ is None:
            raise ServiceError(
                f"unknown cluster round id {round_id}", code="unknown_round"
            )
        if not round_.is_open:
            raise ServiceError(
                f"cluster round {round_id} is already finalized", code="round_closed"
            )
        return round_

    # ------------------------------------------------------------------ #
    # GatewayConnection surface
    # ------------------------------------------------------------------ #
    @property
    def latencies(self) -> list[float]:
        """Send→ack latencies across every shard connection."""
        return [lat for conn in self._connections for lat in conn.latencies]

    @property
    def outstanding(self) -> int:
        return sum(conn.outstanding for conn in self._connections)

    def open_round(self, broadcast: RoundBroadcast) -> tuple[int, int]:
        """Open one logical round: a physical sub-round on every shard.

        Returns ``(round_id, broadcast_bits)`` where the bits are the
        **canonical** broadcast encoding, counted once — the N physical
        broadcasts are shard fan-out, i.e. transport.  Every shard must
        account the broadcast at exactly the canonical size
        (``shard_mismatch`` otherwise: a disagreeing shard would poison
        bit-identity).
        """
        canonical_bits = wire_bits(encode_broadcast(broadcast))
        shard_round_ids: list[int] = []
        for shard, conn in enumerate(self._connections):
            shard_round_id, shard_bits = self._on_shard(
                shard, conn.open_round, broadcast
            )
            if shard_bits != canonical_bits:
                raise ServiceError(
                    f"shard {shard} ({self.addresses[shard]}) accounted the round "
                    f"broadcast at {shard_bits} bits, the canonical encoding is "
                    f"{canonical_bits} — bit-identity breach",
                    code="shard_mismatch",
                )
            shard_round_ids.append(shard_round_id)
        round_id = self._next_round_id
        self._next_round_id += 1
        self._rounds[round_id] = _ClusterRound(
            round_id=round_id,
            party=broadcast.party,
            level=int(broadcast.level),
            oracle_name=broadcast.oracle_name,
            epsilon=float(broadcast.epsilon),
            domain_size=int(broadcast.domain_size),
            broadcast_bits=canonical_bits,
            ring_version=self.ring.version,
            shard_round_ids=shard_round_ids,
        )
        self._m_rounds_opened.inc()
        return round_id, canonical_bits

    def send_batch(self, round_id: int, payload: bytes) -> int:
        """Route one encoded report batch to its owning shard.

        The routing key is ``(party:level:round, seq)`` — deterministic,
        so a fixed-seed replay routes identically — and the owning shard
        is the ring's assignment for the key's candidate slot.
        """
        round_ = self._round(round_id)
        seq = round_.next_seq
        round_.next_seq += 1
        shard = self.ring.route_batch(
            f"{round_.party}:{round_.level}:{round_.round_id}",
            seq,
            round_.domain_size,
        )
        try:
            self._on_shard(
                shard,
                self._connections[shard].send_batch,
                round_.shard_round_ids[shard],
                payload,
            )
        except BaseException:
            # A shard error mid-pipelined-upload can arrive as an error
            # frame interleaved with earlier batches' acks — by the time
            # it surfaces here, how many of this connection's in-flight
            # batches the shard ingested is unknowable, so the logical
            # round's accounting can no longer be validated.  Close the
            # round explicitly: a later finalize reports the structured
            # ``round_closed`` instead of a misleading ``shard_mismatch``
            # from totals this failure skewed.
            round_.is_open = False
            raise
        # Counters only move once the shard accepted the send: an
        # unsent batch must not inflate the totals the barrier validates.
        round_.n_batches += 1
        payload_bits = wire_bits(payload)
        round_.upload_bits += payload_bits
        self._m_routed[shard].inc()
        self._m_upload_bits.inc(payload_bits)
        return seq

    def drain(self) -> None:
        """Block until every shard has acknowledged every pipelined batch."""
        for shard, conn in enumerate(self._connections):
            self._on_shard(shard, conn.drain)

    def finalize(self, round_id: int) -> EstimationResult:
        """The round-close barrier: collect, validate, merge, estimate once.

        Drains and exports every shard's raw sub-round state, validates
        each against the logical round (identity fields *and* the exact
        batch/bit totals the coordinator accounted), merges the int64
        counts with the commutative shard algebra, and produces the
        estimate through :func:`~repro.service.server.finalize_estimate`
        — the same call, on the same inputs, as a single server ingesting
        the whole stream.
        """
        round_ = self._round(round_id)
        if self.ring.version != round_.ring_version:
            raise ServiceError(
                f"cluster round {round_id} was opened under ring version "
                f"{round_.ring_version}, the ring is now {self.ring.version} — "
                "routing can no longer be trusted",
                code="ring_version_mismatch",
            )
        # The barrier consumes the round: shard sub-rounds close as their
        # states export, so a half-failed barrier must not be retried
        # against already-released shards.
        round_.is_open = False
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "cluster.merge_barrier",
                round_id=round_.round_id,
                n_shards=self.n_shards,
            )
        barrier_start = time.perf_counter()
        try:
            states: list[ExportedShardState] = []
            for shard, conn in enumerate(self._connections):
                states.append(
                    self._on_shard(
                        shard, conn.export_shard, round_.shard_round_ids[shard]
                    )
                )
            self._validate_states(round_, states)
            oracle = make_oracle(round_.oracle_name, round_.epsilon)
            counts = np.zeros(round_.domain_size, dtype=np.int64)
            for state in states:
                counts = oracle.merge_counts(counts, state.counts)
            result = finalize_estimate(
                oracle,
                counts,
                sum(state.n_users for state in states),
                round_.domain_size,
                n_batches=round_.n_batches,
                upload_bits=round_.upload_bits,
                broadcast_bits=round_.broadcast_bits,
            )
        except BaseException as exc:
            if span is not None:
                span.finish(error=f"{type(exc).__name__}: {exc}")
            raise
        self._m_barrier_ms.observe((time.perf_counter() - barrier_start) * 1e3)
        self._m_rounds_merged.inc()
        if span is not None:
            span.finish(n_batches=round_.n_batches, n_users=result.n_users)
        return result

    def _validate_states(
        self, round_: _ClusterRound, states: list[ExportedShardState]
    ) -> None:
        for shard, state in enumerate(states):
            for field_name, expected, got in (
                ("party", round_.party, state.party),
                ("level", round_.level, state.level),
                ("oracle", round_.oracle_name, state.oracle_name),
                ("epsilon", round_.epsilon, state.epsilon),
                ("domain_size", round_.domain_size, state.domain_size),
            ):
                if got != expected:
                    raise ServiceError(
                        f"shard {shard} ({self.addresses[shard]}) exported "
                        f"{field_name}={got!r} for round {round_.round_id}, "
                        f"expected {expected!r}",
                        code="shard_mismatch",
                    )
        total_batches = sum(state.n_batches for state in states)
        if total_batches != round_.n_batches:
            raise ServiceError(
                f"shards ingested {total_batches} batches for round "
                f"{round_.round_id}, the coordinator routed {round_.n_batches}",
                code="shard_mismatch",
            )
        total_bits = sum(state.upload_bits for state in states)
        if total_bits != round_.upload_bits:
            raise ServiceError(
                f"shards accounted {total_bits} upload bits for round "
                f"{round_.round_id}, the coordinator sent {round_.upload_bits} "
                "— bit-identity breach",
                code="shard_mismatch",
            )

    # ------------------------------------------------------------------ #
    # Cluster management
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Aggregated accounting: summable counters plus per-shard detail.

        ``upload_bits`` sums to the logical total (each batch lands on
        exactly one shard); ``broadcast_bits`` is **physical** — every
        shard broadcasts every round — so it is N× the logical figure.
        """
        shards = [
            self._on_shard(shard, conn.stats)
            for shard, conn in enumerate(self._connections)
        ]
        summed = {
            key: sum(entry[key] for entry in shards)
            for key in (
                "upload_bits",
                "broadcast_bits",
                "rounds_opened",
                "open_rounds",
                "frames_rejected",
            )
            if all(key in entry for entry in shards)
        }
        return {"n_shards": self.n_shards, **summed, "shards": shards}

    def metrics(self) -> dict:
        """Cluster-wide metrics document: coordinator registry + shard scrapes.

        The coordinator's own snapshot rides under ``"metrics"`` (so the
        document validates like any other); each shard's full wire-scraped
        document is listed under ``"shards"`` in address order.
        """
        shards = [
            self._on_shard(shard, conn.metrics)
            for shard, conn in enumerate(self._connections)
        ]
        return {
            "schema": METRICS_SCHEMA,
            "source": "cluster",
            "metrics": self.telemetry.snapshot(),
            "shards": shards,
        }

    def shutdown_cluster(self) -> None:
        """Gracefully stop every shard gateway (already-dead shards are
        fine: shutting a cluster down twice should not fail)."""
        for shard, conn in enumerate(self._connections):
            try:
                self._on_shard(shard, conn.shutdown_gateway)
            except ServiceError as exc:
                if exc.code != "shard_unavailable":
                    raise

    def close(self) -> None:
        for conn in self._connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "ClusterConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ClusterCoordinator(RemoteAggregationServer):
    """An :class:`~repro.service.server.AggregationServer` backed by a cluster.

    The server-protocol face of :class:`ClusterConnection` — everything
    :class:`~repro.net.client.RemoteAggregationServer` does (client-side
    wire-bit message log, lazy connection so instances pickle into
    process-backend workers, canonical-bits verification at round open)
    with the single-gateway connection swapped for the cluster one.
    ``config.gateway`` holding a comma-separated shard list is what routes
    a mechanism here (:meth:`repro.core.base.FederatedMechanism.
    _make_round_runner`).
    """

    def __init__(
        self,
        addresses,
        *,
        timeout: float = 60.0,
        op_timeout: float | None = None,
        ring_seed: int = 0,
        n_vnodes: int | None = None,
        telemetry: MetricsRegistry | None = None,
        tracer=None,
    ):
        cluster = parse_cluster_addresses(addresses)
        super().__init__(",".join(cluster), timeout=timeout)
        self.shard_addresses = cluster
        self.op_timeout = None if op_timeout is None else float(op_timeout)
        self.ring_seed = int(ring_seed)
        self.n_vnodes = n_vnodes
        self.telemetry = telemetry
        self.tracer = tracer

    def _connect(self) -> ClusterConnection:
        return ClusterConnection(
            self.shard_addresses,
            timeout=self.timeout,
            op_timeout=self.op_timeout,
            ring_seed=self.ring_seed,
            n_vnodes=self.n_vnodes,
            telemetry=self.telemetry,
            tracer=self.tracer,
        )

    def __getstate__(self) -> dict:
        # Registries and tracers hold locks/file handles — they stay with
        # the process that created them; a worker that unpickles this
        # coordinator reconnects without telemetry.
        state = super().__getstate__()
        state["telemetry"] = None
        state["tracer"] = None
        return state

    def shutdown_cluster(self) -> None:
        """Gracefully stop every shard gateway, then drop the connection."""
        conn = self._conn()
        try:
            conn.shutdown_cluster()
        finally:
            self.shutdown()


def run_over_cluster(mechanism, dataset, addresses, rng=None):
    """Re-run a federated mechanism over an N-shard gateway cluster.

    The cluster twin of :func:`~repro.net.client.run_over_network` (which
    it delegates to — a comma-separated gateway address *is* cluster
    mode): for a fixed seed the result is bit-identical to single-gateway
    and in-memory service runs.
    """
    from repro.net.client import run_over_network

    return run_over_network(
        mechanism, dataset, ",".join(parse_cluster_addresses(addresses)), rng
    )
