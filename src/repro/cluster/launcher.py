"""Spawn and supervise N shard gateway processes.

:func:`launch_cluster` starts ``n_shards`` independent ``repro serve
--listen`` processes (each a real :class:`~repro.net.gateway.
AggregationGateway` on an ephemeral port), waits for every shard's
ready-file to announce its bound address, and returns a
:class:`ClusterHandle` — the supervisor: liveness checks, the
comma-joined cluster address every cluster entry point takes, and
graceful shutdown (protocol ``shutdown`` frames first, escalating to
``terminate``/``kill`` only for shards that stopped answering).

The shards are plain ``repro serve`` processes on purpose: a cluster is
N single gateways plus a coordinator, nothing more — every shard can be
driven, inspected, or shut down individually with the existing tools.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import repro


class LauncherError(RuntimeError):
    """A shard process failed to start, announce itself, or stop."""


def _tail(path: Path, n_lines: int = 12) -> str:
    try:
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError:
        return "<no log>"
    return "\n".join(lines[-n_lines:]) or "<empty log>"


@dataclass
class ShardProcess:
    """One supervised shard gateway."""

    index: int
    process: subprocess.Popen
    address: str
    log_path: Path


class ClusterHandle:
    """Supervisor for a launched shard cluster (context manager)."""

    def __init__(self, shards: list[ShardProcess], run_dir: Path):
        self.shards = shards
        self.run_dir = run_dir
        self._exit_codes: list[int] | None = None
        #: Per-shard structured teardown records, populated by
        #: :meth:`shutdown`: exit code, how the shard went down, and —
        #: for shards that died early or dirtily — the tail of their log.
        self.shutdown_record: list[dict] | None = None

    @property
    def addresses(self) -> list[str]:
        return [shard.address for shard in self.shards]

    @property
    def address(self) -> str:
        """The comma-joined cluster address (what ``--connect`` takes)."""
        return ",".join(self.addresses)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def alive(self) -> list[bool]:
        return [shard.process.poll() is None for shard in self.shards]

    def wait(self, timeout: float | None = None, poll: float = 0.2) -> list[int]:
        """Block until every shard exits (e.g. after a remote shutdown)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while any(self.alive()):
            if deadline is not None and time.monotonic() > deadline:
                raise LauncherError(
                    f"shards still running after {timeout}s: "
                    f"{[s.index for s in self.shards if s.process.poll() is None]}"
                )
            time.sleep(poll)
        return [shard.process.returncode for shard in self.shards]

    def shutdown(self, timeout: float = 10.0) -> list[int]:
        """Stop every shard, gracefully first; returns exit codes.

        Graceful means the wire protocol's ``shutdown`` op (the gateway
        answers ``bye``, drains, and exits 0); a shard that no longer
        answers is terminated, then killed.  Idempotent.

        Every shard's fate lands in :attr:`shutdown_record`: a shard that
        had *already* died is not silently reaped — its record says so
        (``"already_exited": true``) and carries the tail of its log, and
        a structured warning is emitted for it.
        """
        if self._exit_codes is not None:
            return self._exit_codes
        from repro.net.client import GatewayConnection
        from repro.obs.logs import get_logger

        log = get_logger("repro.cluster").bind(run_dir=str(self.run_dir))
        records = [
            {
                "shard": shard.index,
                "address": shard.address,
                "already_exited": shard.process.poll() is not None,
                "graceful": False,
                "escalation": "none",
            }
            for shard in self.shards
        ]
        for shard, record in zip(self.shards, records):
            if record["already_exited"]:
                continue
            try:
                with GatewayConnection(shard.address, timeout=timeout) as conn:
                    conn.shutdown_gateway()
                record["graceful"] = True
            except Exception:
                # Transport death or a refused shutdown: escalate below.
                pass
        deadline = time.monotonic() + timeout
        for shard, record in zip(self.shards, records):
            remaining = max(0.1, deadline - time.monotonic())
            try:
                shard.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                record["escalation"] = "terminate"
                shard.process.terminate()
                try:
                    shard.process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                    record["escalation"] = "kill"
                    shard.process.kill()
                    shard.process.wait()
        for shard, record in zip(self.shards, records):
            record["exit_code"] = shard.process.returncode
            # A shard that had already exited *cleanly* (a remote
            # ``shutdown`` op) is a normal teardown; only a non-zero code
            # marks a shard that died on us.
            if record["exit_code"] != 0:
                record["log_tail"] = _tail(shard.log_path)
                log.warning(
                    f"shard {shard.index} "
                    + ("died early" if record["already_exited"] else "exited dirty")
                    + f" (code {record['exit_code']}); log tail:\n"
                    + record["log_tail"],
                    shard=shard.index,
                    exit_code=record["exit_code"],
                    already_exited=record["already_exited"],
                )
            else:
                log.debug(
                    f"shard {shard.index} stopped cleanly",
                    shard=shard.index,
                    graceful=record["graceful"],
                )
        self.shutdown_record = records
        self._exit_codes = [record["exit_code"] for record in records]
        return self._exit_codes

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _shard_command(
    host: str,
    ready_file: Path,
    *,
    backend: str | None,
    workers: int | None,
    credits: int | None,
    max_inflight: int | None,
    max_frame_bytes: int | None,
    spec_path: str | None,
) -> list[str]:
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--listen",
        f"{host}:0",
        "--ready-file",
        str(ready_file),
    ]
    if spec_path is not None:
        command += ["--spec", str(spec_path)]
    if backend is not None:
        command += ["--backend", str(backend)]
    if workers is not None:
        command += ["--workers", str(workers)]
    if credits is not None:
        command += ["--credits", str(credits)]
    if max_inflight is not None:
        command += ["--max-inflight", str(max_inflight)]
    if max_frame_bytes is not None:
        command += ["--max-frame-bytes", str(max_frame_bytes)]
    return command


def launch_cluster(
    n_shards: int,
    *,
    host: str = "127.0.0.1",
    backend: str | None = None,
    workers: int | None = None,
    credits: int | None = None,
    max_inflight: int | None = None,
    max_frame_bytes: int | None = None,
    spec_path: str | None = None,
    run_dir: str | Path | None = None,
    ready_timeout: float = 60.0,
) -> ClusterHandle:
    """Start ``n_shards`` shard gateways; block until all announce ready.

    Each shard binds an ephemeral port and writes it to a per-shard
    ready-file under ``run_dir`` (a fresh temporary directory by
    default, which also collects per-shard logs).  On any failure —
    a shard dying before it binds, or the ready deadline passing —
    already-started shards are shut down before the
    :class:`LauncherError` propagates, so a failed launch never leaks
    processes.
    """
    if int(n_shards) < 1:
        raise LauncherError(f"n_shards must be >= 1, got {n_shards}")
    if run_dir is None:
        import tempfile

        run_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-"))
    else:
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)

    # Children must import repro even when the repo runs uninstalled
    # (PYTHONPATH=src): put this package's parent on their path.
    env = os.environ.copy()
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )

    shards: list[ShardProcess] = []
    logs: list = []
    handle = ClusterHandle(shards, run_dir)
    try:
        ready_files = []
        for index in range(int(n_shards)):
            ready = run_dir / f"shard-{index}.addr"
            ready.unlink(missing_ok=True)
            log_path = run_dir / f"shard-{index}.log"
            log = open(log_path, "w", encoding="utf-8")
            logs.append(log)
            process = subprocess.Popen(
                _shard_command(
                    host,
                    ready,
                    backend=backend,
                    workers=workers,
                    credits=credits,
                    max_inflight=max_inflight,
                    max_frame_bytes=max_frame_bytes,
                    spec_path=spec_path,
                ),
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )
            shards.append(
                ShardProcess(index=index, process=process, address="", log_path=log_path)
            )
            ready_files.append(ready)

        deadline = time.monotonic() + float(ready_timeout)
        while True:
            for shard, ready in zip(shards, ready_files):
                if shard.address:
                    continue
                if shard.process.poll() is not None:
                    raise LauncherError(
                        f"shard {shard.index} exited with code "
                        f"{shard.process.returncode} before binding; log tail:\n"
                        f"{_tail(shard.log_path)}"
                    )
                if ready.exists():
                    address = ready.read_text(encoding="utf-8").strip()
                    if address:
                        shard.address = address
            if all(shard.address for shard in shards):
                break
            if time.monotonic() > deadline:
                pending = [s.index for s in shards if not s.address]
                raise LauncherError(
                    f"shards {pending} not ready after {ready_timeout}s"
                )
            time.sleep(0.05)
    except BaseException:
        handle.shutdown()
        raise
    finally:
        for log in logs:
            log.close()
    return handle
