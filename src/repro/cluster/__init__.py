"""Sharded gateway cluster: N shard gateways behind one coordinator.

The horizontal-scale layer over the networked service (PR 5/6): the
:class:`~repro.cluster.ring.HashRing` deterministically assigns candidate
ranges and report batches to shards, the
:class:`~repro.cluster.coordinator.ClusterCoordinator` exposes the
aggregation-server protocol over N
:class:`~repro.net.client.GatewayConnection`\\ s and runs the round-close
barrier (collect every shard's raw state, merge with the
:class:`~repro.service.shards.LevelShard` algebra, estimate once), and
:func:`~repro.cluster.launcher.launch_cluster` spawns/supervises the
shard processes.  The subsystem's invariant: fixed-seed discovery over an
N-shard cluster is **bit-identical** — estimates, transcripts, exact
wire-bit totals — to single-gateway and in-memory service runs.
"""

from repro.cluster.coordinator import (
    ClusterConnection,
    ClusterCoordinator,
    parse_cluster_addresses,
    run_over_cluster,
)
from repro.cluster.launcher import ClusterHandle, LauncherError, launch_cluster
from repro.cluster.ring import DEFAULT_VNODES, HashRing

__all__ = [
    "ClusterConnection",
    "ClusterCoordinator",
    "ClusterHandle",
    "DEFAULT_VNODES",
    "HashRing",
    "LauncherError",
    "launch_cluster",
    "parse_cluster_addresses",
    "run_over_cluster",
]
