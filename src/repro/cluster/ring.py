"""Deterministic consistent-hash ring over the candidate domain.

The cluster coordinator (:mod:`repro.cluster.coordinator`) shards the
heavy-hitter service horizontally: each shard gateway owns a slice of the
candidate domain, and report batches route to the shard owning the slice
their routing key hashes into.  The ring is the assignment function, and
it carries three load-bearing properties the property tests pin
(``tests/test_cluster_ring.py``):

* **determinism** — the ring is a pure function of ``(n_shards, seed,
  n_vnodes)``: every process that builds it from the same parameters
  routes identically, so a coordinator restart (or an independent
  observer recomputing the routing) never disagrees with the original;
* **disjoint full cover** — :meth:`HashRing.candidate_ranges` partitions
  ``range(domain_size)`` exactly: every candidate has exactly one owner,
  for every shard count;
* **minimal movement** — growing ``N → N+1`` shards only *adds* virtual
  nodes, so a key either keeps its owner or moves to the **new** shard;
  no key moves between two old shards, and the expected fraction that
  moves is ``1/(N+1)``.

Correctness of the merged result does **not** depend on which shard a
batch lands on — the :class:`~repro.service.shards.LevelShard` algebra is
commutative and exact, so *any* partition of the report stream merges to
identical counts.  The ring buys balanced load and a stable ownership
story; the merge algebra buys bit-identity.
"""

from __future__ import annotations

import bisect
import hashlib
import json

from repro.utils.validation import check_positive

#: Virtual nodes per shard.  64 vnodes keep the max/mean ownership skew
#: within ~2x for small clusters while keeping ring construction and the
#: per-key bisect trivially cheap (the ring has ``n_shards * 64`` points).
DEFAULT_VNODES = 64


def _hash64(seed: int, key: str) -> int:
    """Stable 64-bit hash of ``key`` under ``seed`` (blake2b, not Python's
    per-process-salted ``hash``)."""
    digest = hashlib.blake2b(
        f"{seed}:{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash assignment of string keys to ``n_shards`` shards.

    Parameters
    ----------
    n_shards:
        Number of shards on the ring (>= 1).
    seed:
        Hash seed.  Two rings with the same ``(n_shards, seed, n_vnodes)``
        are identical; different seeds give independent assignments.
    n_vnodes:
        Virtual nodes per shard (>= 1); more vnodes, smoother balance.

    Examples
    --------
    >>> ring = HashRing(3, seed=0)
    >>> ring.owner_of_candidate(17) == HashRing(3, seed=0).owner_of_candidate(17)
    True
    >>> sorted({shard for _, _, shard in ring.candidate_ranges(64)}) == [0, 1, 2]
    True
    """

    def __init__(self, n_shards: int, *, seed: int = 0, n_vnodes: int = DEFAULT_VNODES):
        check_positive("n_shards", n_shards)
        check_positive("n_vnodes", n_vnodes)
        self.n_shards = int(n_shards)
        self.seed = int(seed)
        self.n_vnodes = int(n_vnodes)
        # Sorted by (hash, shard): on the vanishingly rare exact hash
        # collision the lower shard index wins deterministically, and —
        # because a grown ring only appends *higher* indices — a collision
        # can never flip ownership between two pre-existing shards.
        points = sorted(
            (_hash64(self.seed, f"vnode:{shard}:{replica}"), shard)
            for shard in range(self.n_shards)
            for replica in range(self.n_vnodes)
        )
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    # ------------------------------------------------------------------ #
    # Ownership
    # ------------------------------------------------------------------ #
    def owner(self, key: str) -> int:
        """The shard owning ``key``: the first vnode clockwise of its hash."""
        idx = bisect.bisect_right(self._hashes, _hash64(self.seed, str(key)))
        return self._shards[idx % len(self._shards)]

    def owner_of_candidate(self, candidate: int) -> int:
        """The shard owning candidate-domain slot ``candidate``."""
        return self.owner(f"candidate:{int(candidate)}")

    def route_batch(self, round_key: str, seq: int, domain_size: int) -> int:
        """The shard a report batch routes to.

        The batch key hashes onto a candidate-domain slot and the batch
        goes to that slot's owner — batch routing and candidate-range
        ownership are the same assignment.  Deterministic in
        ``(round_key, seq)``, so a replayed stream routes identically.
        """
        check_positive("domain_size", domain_size)
        slot = _hash64(self.seed, f"batch:{round_key}:{int(seq)}") % int(domain_size)
        return self.owner_of_candidate(slot)

    def candidate_ranges(self, domain_size: int) -> list[tuple[int, int, int]]:
        """Coalesced ``(start, stop, shard)`` runs covering ``range(domain_size)``.

        The runs are disjoint, ordered, and cover every candidate exactly
        once — the disjoint-full-cover property of the ring.
        """
        check_positive("domain_size", domain_size)
        ranges: list[tuple[int, int, int]] = []
        for candidate in range(int(domain_size)):
            shard = self.owner_of_candidate(candidate)
            if ranges and ranges[-1][2] == shard and ranges[-1][1] == candidate:
                start, _, _ = ranges[-1]
                ranges[-1] = (start, candidate + 1, shard)
            else:
                ranges.append((candidate, candidate + 1, shard))
        return ranges

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> str:
        """Stable fingerprint of the assignment function.

        Two rings route identically iff their versions match; the
        coordinator stamps each round with the ring version at open and
        refuses to finalize across a version change
        (``ring_version_mismatch``).
        """
        document = json.dumps(
            {"n_shards": self.n_shards, "seed": self.seed, "n_vnodes": self.n_vnodes},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(document.encode("utf-8")).hexdigest()[:16]

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"HashRing(n_shards={self.n_shards}, seed={self.seed}, "
            f"n_vnodes={self.n_vnodes}, version={self.version!r})"
        )
