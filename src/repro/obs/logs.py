"""Structured logging with bound context, behind a ``--log-level`` seam.

Two output modes, selected once per process by :func:`configure_logging`
(the ``--log-level`` / ``--log-json`` CLI flags):

* **human** (the default) — ``info`` records print their message to
  stdout (flushed, exactly the bytes the bare ``print`` calls they
  replaced produced — existing CI greps keep working), ``warning`` and
  above go to stderr.  Bound context is carried but not printed.
* **JSON** — every record is one canonical-JSON line on **stderr**
  (stdout stays reserved for reports and rendered tables), carrying the
  level, logger name, message, and every bound/field key::

      {"level":"info","logger":"repro.cli.serve","msg":"gateway listening
       on 127.0.0.1:4242","address":"127.0.0.1:4242","ts":1770000000.0}

:meth:`StructuredLogger.bind` derives a child logger with extra context
(connection id, round, shard, tenant label) attached to every record —
the pattern the gateway and cluster layers use to stamp their records.

Streams are resolved at emit time (``sys.stdout``/``sys.stderr``), so
pytest's capture and shell redirection both see every record.
"""

from __future__ import annotations

import json
import sys
import time

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: Process-wide logging state; mutated only by :func:`configure_logging`.
_STATE = {"threshold": _LEVELS["info"], "json": False, "clock": time.time}


def configure_logging(
    level: str = "info", *, json_mode: bool = False, clock=None
) -> None:
    """Set the process-wide log level and output mode (the CLI seam).

    ``level`` is one of ``debug/info/warning/error``; ``json_mode``
    switches every record to canonical-JSON lines on stderr; ``clock``
    overrides the timestamp source (tests pin it for byte-stable output).
    """
    name = str(level).lower()
    if name not in _LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; pick one of {'/'.join(_LEVELS)}"
        )
    _STATE["threshold"] = _LEVELS[name]
    _STATE["json"] = bool(json_mode)
    _STATE["clock"] = clock if clock is not None else time.time


class StructuredLogger:
    """A named logger with immutable bound context."""

    __slots__ = ("name", "context")

    def __init__(self, name: str, context: dict | None = None):
        self.name = str(name)
        self.context = dict(context or {})

    def bind(self, **context) -> "StructuredLogger":
        """A child logger whose records carry these extra keys."""
        merged = dict(self.context)
        merged.update(context)
        return StructuredLogger(self.name, merged)

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def _emit(self, level: str, message: str, fields: dict) -> None:
        if _LEVELS[level] < _STATE["threshold"]:
            return
        if _STATE["json"]:
            record = {"level": level, "logger": self.name, "msg": str(message)}
            record.update(self.context)
            record.update(fields)
            record["ts"] = round(float(_STATE["clock"]()), 6)
            line = json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
            print(line, file=sys.stderr, flush=True)
            return
        # Human mode is byte-identical to the bare prints it replaced:
        # the message alone, info to stdout (flushed), warnings up to
        # stderr.  Bound context stays machine-readable only.
        if _LEVELS[level] >= _LEVELS["warning"]:
            print(str(message), file=sys.stderr, flush=True)
        else:
            print(str(message), flush=True)

    def debug(self, message: str, **fields) -> None:
        self._emit("debug", message, fields)

    def info(self, message: str, **fields) -> None:
        self._emit("info", message, fields)

    def warning(self, message: str, **fields) -> None:
        self._emit("warning", message, fields)

    def error(self, message: str, **fields) -> None:
        self._emit("error", message, fields)


def get_logger(name: str) -> StructuredLogger:
    """The logger for ``name`` (stateless: loggers are cheap value objects)."""
    return StructuredLogger(name)
