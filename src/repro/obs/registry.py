"""A dependency-free, thread-safe metrics registry with mergeable snapshots.

Three instrument kinds, deliberately minimal:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Gauge` — a float that can move both ways (in-flight batches,
  live connections);
* :class:`Histogram` — fixed **log2 buckets**: an observation ``v`` lands
  in the bucket of exponent ``e`` with ``2^(e-1) <= v < 2^e``.  Bucket
  counts are exact integers, so two histograms merge with the *same
  algebra as shards*: bucket-wise integer addition, which is associative,
  commutative, and loss-free.  ``merge(observe(A), observe(B)) ==
  observe(A + B)`` exactly — the property
  ``tests/test_obs_registry.py`` pins with hypothesis.

Instruments are keyed by ``name{label=value,...}`` with sorted labels, so
:meth:`MetricsRegistry.snapshot` is deterministic: the same per-instrument
observation sequences — however updates interleave *across* instruments,
and in whatever order instruments were created — encode to byte-identical
:func:`encode_snapshot` output.  (Integer fields are interleaving-proof
outright; a histogram's float ``sum`` follows its own observation order.)

The registry is observe-only by design: nothing here reads a clock, an
RNG, or global state, so enabling telemetry cannot perturb a fixed-seed
run.  The percentile helpers at the bottom (:func:`quantiles`,
:func:`latency_summary`) are the one shared home of the p50/p95/p99 math
the load generator, the perf controller, and the throughput benchmarks
previously each carried privately.
"""

from __future__ import annotations

import json
import math
import threading

#: Schema tag every wire-scraped metrics document carries.
METRICS_SCHEMA = "repro.metrics/1"

#: Log2 bucket exponents are clamped to this closed range: the smallest
#: bucket covers values below 2^MIN_EXP (sub-millisecond when observing
#: milliseconds), the largest everything from 2^(MAX_EXP-1) up.
MIN_EXP = -10
MAX_EXP = 31

#: Bucket for observations <= 0 (and NaN): outside any log2 bucket but
#: still counted, so ``count == sum(buckets.values())`` always holds.
UNDERFLOW_EXP = MIN_EXP - 1


def bucket_exponent(value: float) -> int:
    """The log2 bucket exponent ``e`` of ``value``: ``2^(e-1) <= v < 2^e``.

    Non-positive and NaN observations land in :data:`UNDERFLOW_EXP`;
    exponents clamp to ``[MIN_EXP, MAX_EXP]`` so the bucket set is fixed
    and two histograms always share one bucket universe.
    """
    v = float(value)
    if not v > 0.0:  # catches <= 0 and NaN in one comparison
        return UNDERFLOW_EXP
    _, exp = math.frexp(v)  # v = m * 2^exp with 0.5 <= m < 1
    return min(max(exp, MIN_EXP), MAX_EXP)


def bucket_bounds(exponent: int) -> tuple[float, float]:
    """``(low, high)`` value range of a bucket, for quantile interpolation."""
    e = int(exponent)
    if e <= UNDERFLOW_EXP:
        return (0.0, 0.0)
    low = 0.0 if e == MIN_EXP else math.ldexp(1.0, e - 1)
    return (low, math.ldexp(1.0, e))


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += int(n)

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A float instrument that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += float(n)

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= float(n)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed log2-bucket histogram with exact, shard-style merge."""

    __slots__ = ("_lock", "count", "sum", "min", "max", "buckets")

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        v = float(value)
        e = bucket_exponent(v)
        with self._lock:
            self.count += 1
            self.sum += v
            if self.min is None or v < self.min:
                self.min = v
            if self.max is None or v > self.max:
                self.max = v
            self.buckets[e] = self.buckets.get(e, 0) + 1

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "buckets": {str(e): self.buckets[e] for e in sorted(self.buckets)},
            }


def _render_key(name: str, labels: dict) -> str:
    if not labels:
        return str(name)
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create instrument registry keyed by ``name{labels}``.

    Thread- and asyncio-safe: instrument creation takes the registry
    lock, each instrument serialises its own updates.  Instruments are
    cheap to pre-bind (``frames = registry.counter("frames_total",
    kind="report_batch")``) so hot paths pay one ``inc()`` — no dict
    lookup, no string rendering.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = _render_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
            return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = _render_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
            return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        key = _render_key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram()
            return instrument

    def snapshot(self) -> dict:
        """Deterministic, JSON-safe view of every instrument.

        Keys are sorted, histogram buckets are sorted by exponent; the
        same set of observations — in any thread interleaving — encodes
        to the same bytes under :func:`encode_snapshot`.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: counters[k].value for k in sorted(counters)},
            "gauges": {k: gauges[k].value for k in sorted(gauges)},
            "histograms": {k: histograms[k].to_dict() for k in sorted(histograms)},
        }


def encode_snapshot(snapshot: dict) -> bytes:
    """Canonical JSON bytes of a snapshot (byte-stable across processes)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":")).encode("utf-8")


def merge_snapshots(*snapshots: dict) -> dict:
    """Merge snapshots with the shard algebra: exact integer addition.

    Counters and histogram bucket counts add; gauges keep the last
    non-missing value (a merged gauge has no single truth — the per-shard
    values remain in the per-shard snapshots); histogram ``sum`` adds as
    floats, ``min``/``max`` combine.  ``merge(snap(A), snap(B))`` equals
    the snapshot of one registry that observed A then B, exactly for all
    integer fields.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            merged["counters"][key] = merged["counters"].get(key, 0) + int(value)
        for key, value in snapshot.get("gauges", {}).items():
            merged["gauges"][key] = float(value)
        for key, hist in snapshot.get("histograms", {}).items():
            base = merged["histograms"].get(key)
            if base is None:
                merged["histograms"][key] = {
                    "count": int(hist["count"]),
                    "sum": float(hist["sum"]),
                    "min": hist["min"],
                    "max": hist["max"],
                    "buckets": {str(e): int(n) for e, n in hist["buckets"].items()},
                }
                continue
            base["count"] += int(hist["count"])
            base["sum"] += float(hist["sum"])
            for bound, pick in (("min", min), ("max", max)):
                if hist[bound] is not None:
                    base[bound] = (
                        hist[bound]
                        if base[bound] is None
                        else pick(base[bound], hist[bound])
                    )
            for e, n in hist["buckets"].items():
                base["buckets"][str(e)] = base["buckets"].get(str(e), 0) + int(n)
    for hist in merged["histograms"].values():
        hist["buckets"] = {str(e): hist["buckets"][str(e)]
                           for e in sorted(int(k) for k in hist["buckets"])}
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["gauges"] = dict(sorted(merged["gauges"].items()))
    merged["histograms"] = dict(sorted(merged["histograms"].items()))
    return merged


def histogram_quantile(hist: dict, q: float) -> float:
    """Estimate the ``q``-quantile (0..1) from a histogram snapshot.

    Linear interpolation inside the target log2 bucket, clamped to the
    histogram's observed ``min``/``max`` — bucket-resolution accuracy, by
    construction within a factor of 2 of the true value.
    """
    count = int(hist.get("count", 0))
    if count == 0:
        return 0.0
    rank = max(0.0, min(1.0, float(q))) * count
    cumulative = 0
    exponents = sorted(int(e) for e in hist["buckets"])
    for e in exponents:
        n = int(hist["buckets"][str(e)])
        if cumulative + n >= rank and n > 0:
            low, high = bucket_bounds(e)
            fraction = (rank - cumulative) / n
            value = low + fraction * (high - low)
            break
        cumulative += n
    else:  # pragma: no cover - count always equals sum of buckets
        value = hist["max"] if hist["max"] is not None else 0.0
    if hist.get("min") is not None:
        value = max(value, float(hist["min"]))
    if hist.get("max") is not None:
        value = min(value, float(hist["max"]))
    return float(value)


def validate_metrics_document(document: dict) -> dict:
    """Schema-check one wire-scraped metrics document; returns it.

    A document is ``{"schema": repro.metrics/1, "source": ..., "metrics":
    <registry snapshot>}`` plus free-form extras (gateway stats, shard
    list).  Raises :class:`ValueError` naming the violation — the check
    ``repro stats`` and the CI scrape assertions run on every snapshot.
    """
    if not isinstance(document, dict):
        raise ValueError(f"metrics document must be a mapping, got {type(document).__name__}")
    schema = document.get("schema")
    if schema != METRICS_SCHEMA:
        raise ValueError(f"metrics schema is {schema!r}, expected {METRICS_SCHEMA!r}")
    if not document.get("source"):
        raise ValueError("metrics document misses its 'source'")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("metrics document misses its 'metrics' snapshot")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            raise ValueError(f"metrics snapshot misses its {section!r} section")
    for key, value in metrics["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"counter {key!r} must be an integer, got {value!r}")
    for key, hist in metrics["histograms"].items():
        for field in ("count", "sum", "min", "max", "buckets"):
            if field not in hist:
                raise ValueError(f"histogram {key!r} misses its {field!r} field")
        if not isinstance(hist["buckets"], dict):
            raise ValueError(f"histogram {key!r} buckets must be a mapping")
        if sum(int(n) for n in hist["buckets"].values()) != int(hist["count"]):
            raise ValueError(f"histogram {key!r} bucket counts do not sum to count")
    return document


# --------------------------------------------------------------------------- #
# Shared percentile helpers (the one home of the p50/p95/p99 math)
# --------------------------------------------------------------------------- #
def quantiles(values, percentiles) -> list[float]:
    """``np.percentile`` as plain floats — the shared percentile kernel.

    ``percentiles`` are in percent (50.0, 95.0, ...).  One call computes
    all of them, which is bit-identical to separate ``np.percentile``
    calls (same linear interpolation on the same sorted data).
    """
    import numpy as np

    result = np.percentile(np.asarray(values, dtype=np.float64), list(percentiles))
    return [float(v) for v in np.atleast_1d(result)]


def latency_summary(latencies_s) -> dict:
    """p50/p95/p99/mean/max of batch latencies (seconds in, ms out).

    The exact summary the load generator has always reported; moved here
    so the loadgen report, the throughput benchmarks, and the perf
    controller share one implementation.
    """
    if not latencies_s:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    import numpy as np

    ms = np.asarray(latencies_s, dtype=np.float64) * 1e3
    p50, p95, p99 = quantiles(ms, (50.0, 95.0, 99.0))
    return {
        "count": int(ms.size),
        "p50": round(p50, 3),
        "p95": round(p95, 3),
        "p99": round(p99, 3),
        "mean": round(float(ms.mean()), 3),
        "max": round(float(ms.max()), 3),
    }
