"""Lightweight span tracing with a 24-byte wire context.

A :class:`Tracer` hands out :class:`Span` objects; each span carries a
:class:`SpanContext` — a 128-bit ``trace_id`` shared by everything that
happened because of one root operation, plus a 64-bit ``span_id`` naming
this particular hop.  The context serialises to exactly
:data:`CONTEXT_SIZE` bytes, which is what rides the optional frame-header
extension (:data:`repro.net.framing.FRAME_FLAG_TRACE`): a client stamps
its batch frames, the gateway adopts the context for its decode/ingest
spans, and one ``trace_id`` then links client → gateway → shard
accumulate → cluster merge across processes in the exported JSONL log.

Finished spans are appended to a JSONL file (``path=``) or kept in
memory (:attr:`Tracer.spans`); one record per span::

    {"name":"gateway.ingest","trace_id":"6f…","span_id":"a1…",
     "parent_id":"42…","ts":1770000000.0,"duration_ms":1.25,
     "round_id":7,"n":100}

Tracing is observe-only: span ids come from the tracer's **own** RNG
(seeded from the OS, or a fixed ``seed`` in tests), never from the
global random state a fixed-seed run depends on, and nothing downstream
reads a span — bit-identity with tracing on is pinned by
``tests/test_obs_telemetry.py``.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass

#: Exact wire size of one serialised span context: 16-byte trace id +
#: 8-byte span id, both big-endian.
CONTEXT_SIZE = 24


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of one span."""

    trace_id: int
    span_id: int

    def to_bytes(self) -> bytes:
        return self.trace_id.to_bytes(16, "big") + self.span_id.to_bytes(8, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "SpanContext":
        if len(data) != CONTEXT_SIZE:
            raise ValueError(
                f"span context must be {CONTEXT_SIZE} bytes, got {len(data)}"
            )
        return cls(
            trace_id=int.from_bytes(data[:16], "big"),
            span_id=int.from_bytes(data[16:], "big"),
        )


class Span:
    """One timed operation; finish it (or use it as a context manager)."""

    __slots__ = ("tracer", "name", "context", "parent_id", "attrs", "_start", "_ts", "_done")

    def __init__(self, tracer: "Tracer", name: str, context: SpanContext,
                 parent_id: int | None, attrs: dict):
        self.tracer = tracer
        self.name = str(name)
        self.context = context
        self.parent_id = parent_id
        self.attrs = dict(attrs)
        self._ts = time.time()
        self._start = time.perf_counter()
        self._done = False

    def set(self, **attrs) -> None:
        """Attach attributes to the span record (e.g. ``round_id=7``)."""
        self.attrs.update(attrs)

    def finish(self, **attrs) -> None:
        """Close the span and write its record (idempotent)."""
        if self._done:
            return
        self._done = True
        self.attrs.update(attrs)
        record = {
            "name": self.name,
            "trace_id": f"{self.context.trace_id:032x}",
            "span_id": f"{self.context.span_id:016x}",
            "parent_id": None if self.parent_id is None else f"{self.parent_id:016x}",
            "ts": round(self._ts, 6),
            "duration_ms": round((time.perf_counter() - self._start) * 1e3, 3),
        }
        record.update(self.attrs)
        self.tracer._record(record)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        self.finish()


class Tracer:
    """Creates spans and collects their finished records.

    Parameters
    ----------
    path:
        Append finished spans to this JSONL file; ``None`` keeps them in
        memory (:attr:`spans`), which is what the load generator ships
        back from its worker pools.
    seed:
        Seed for the tracer's private id RNG (tests); the default draws
        entropy from the OS, never touching global random state.
    """

    def __init__(self, path=None, *, seed: int | None = None):
        self.path = None if path is None else str(path)
        self.spans: list[dict] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._fp = None
        if self.path is not None:
            self._fp = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # Span creation
    # ------------------------------------------------------------------ #
    def start_span(
        self,
        name: str,
        *,
        parent: "SpanContext | Span | None" = None,
        **attrs,
    ) -> Span:
        """A new span; with ``parent`` it joins that trace, else it roots one."""
        parent_context = parent.context if isinstance(parent, Span) else parent
        with self._lock:
            span_id = self._rng.getrandbits(64)
            trace_id = (
                parent_context.trace_id
                if parent_context is not None
                else self._rng.getrandbits(128)
            )
        return Span(
            self,
            name,
            SpanContext(trace_id=trace_id, span_id=span_id),
            None if parent_context is None else parent_context.span_id,
            attrs,
        )

    def span(self, name: str, *, parent=None, **attrs) -> Span:
        """Alias of :meth:`start_span` reading naturally as ``with tracer.span(...)``."""
        return self.start_span(name, parent=parent, **attrs)

    # ------------------------------------------------------------------ #
    # Record sink
    # ------------------------------------------------------------------ #
    def _record(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
        with self._lock:
            if self._fp is not None:
                self._fp.write(line + "\n")
                self._fp.flush()
            else:
                self.spans.append(record)

    def drain(self) -> list[dict]:
        """Hand over (and clear) the in-memory span records."""
        with self._lock:
            spans, self.spans = self.spans, []
        return spans

    def close(self) -> None:
        with self._lock:
            if self._fp is not None:
                self._fp.close()
                self._fp = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
