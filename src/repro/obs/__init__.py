"""Observability layer: metrics registry, structured logs, span tracing.

Three small, dependency-free building blocks the networked runtime wires
through every layer:

* :mod:`repro.obs.registry` — thread-safe Counter/Gauge/Histogram
  instruments with fixed log2 latency buckets, deterministic snapshots,
  and an exact merge algebra (histograms merge like shards: integer
  bucket counts add);
* :mod:`repro.obs.logs` — structured logging with bound context and a
  ``--log-level/--log-json`` CLI seam whose human mode is byte-identical
  to the bare prints it replaced;
* :mod:`repro.obs.trace` — lightweight span tracing whose 24-byte
  trace context rides an optional frame-header extension
  (:data:`repro.net.framing.FRAME_FLAG_TRACE`), so one report batch can
  be followed client → gateway decode → shard accumulate → cluster
  merge, exported as a JSONL span log.

The invariant every instrument obeys: telemetry is **observe-only**.
Fixed-seed discovery is bit-identical — estimates, transcripts, exact
wire bits — whether telemetry is enabled or not
(``tests/test_obs_telemetry.py`` pins this over a live gateway).
"""

from repro.obs.logs import configure_logging, get_logger
from repro.obs.registry import (
    METRICS_SCHEMA,
    MetricsRegistry,
    histogram_quantile,
    latency_summary,
    merge_snapshots,
    quantiles,
    validate_metrics_document,
)
from repro.obs.trace import SpanContext, Tracer

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "SpanContext",
    "Tracer",
    "configure_logging",
    "get_logger",
    "histogram_quantile",
    "latency_summary",
    "merge_snapshots",
    "quantiles",
    "validate_metrics_document",
]
