"""Optimised unary encoding (OUE).

The user's value is one-hot encoded into a length-``d`` bit vector; the
``1`` bit is kept with probability ``p = 1/2`` and every ``0`` bit is
flipped to ``1`` with probability ``q = 1/(e^ε + 1)``.  OUE has the lowest
estimation variance among unary encodings but each report costs ``d`` bits
of communication, which is exactly the cost trade-off Table 1 and Table 4 of
the paper quantify.

Report mechanics (sparse sampling, dense/packed forms, packed-domain
accumulation) are shared with SUE via
:class:`~repro.ldp.unary.UnaryEncodingOracle`.
"""

from __future__ import annotations

import numpy as np

from repro.ldp.unary import UnaryEncodingOracle


class OptimizedUnaryEncoding(UnaryEncodingOracle):
    """The OUE mechanism (one-hot encoding with asymmetric flipping)."""

    name = "oue"

    def support_probabilities(self, domain_size: int) -> tuple[float, float]:
        p = 0.5
        q = 1.0 / (np.exp(self.epsilon) + 1.0)
        return float(p), float(q)

    def variance(self, n_users: int, domain_size: int) -> float:
        """Var[f_hat] = 4 e^ε / ((e^ε - 1)^2 n)  (Wang et al. 2017)."""
        if n_users <= 0:
            return float("inf")
        e_eps = np.exp(self.epsilon)
        return float(4.0 * e_eps / ((e_eps - 1.0) ** 2 * n_users))

    def report_bits(self, domain_size: int) -> int:
        """Each OUE report is the full perturbed bit vector."""
        return int(domain_size)
