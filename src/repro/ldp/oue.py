"""Optimised unary encoding (OUE).

The user's value is one-hot encoded into a length-``d`` bit vector; the
``1`` bit is kept with probability ``p = 1/2`` and every ``0`` bit is
flipped to ``1`` with probability ``q = 1/(e^ε + 1)``.  OUE has the lowest
estimation variance among unary encodings but each report costs ``d`` bits
of communication, which is exactly the cost trade-off Table 1 and Table 4 of
the paper quantify.
"""

from __future__ import annotations

import numpy as np

from repro.ldp.base import FrequencyOracle
from repro.utils.rng import RandomState, as_generator


class OptimizedUnaryEncoding(FrequencyOracle):
    """The OUE mechanism (one-hot encoding with asymmetric flipping)."""

    name = "oue"

    def support_probabilities(self, domain_size: int) -> tuple[float, float]:
        p = 0.5
        q = 1.0 / (np.exp(self.epsilon) + 1.0)
        return float(p), float(q)

    def perturb(
        self, values: np.ndarray, domain_size: int, rng: RandomState = None
    ) -> np.ndarray:
        """Return an ``(n_users, domain_size)`` boolean report matrix."""
        gen = as_generator(rng)
        values = np.asarray(values, dtype=np.int64)
        n = values.size
        p, q = self.support_probabilities(domain_size)
        # Start from the "all zero bits" flip probability, then overwrite the
        # column of each user's true value with the keep probability.
        reports = gen.random((n, domain_size)) < q
        if n:
            keep_true = gen.random(n) < p
            reports[np.arange(n), values] = keep_true
        return reports

    def support_counts(self, reports: np.ndarray, domain_size: int) -> np.ndarray:
        reports = np.asarray(reports, dtype=bool)
        if reports.ndim != 2 or reports.shape[1] != domain_size:
            raise ValueError(
                f"expected an (n, {domain_size}) report matrix, got shape {reports.shape}"
            )
        return reports.sum(axis=0).astype(np.int64)

    def variance(self, n_users: int, domain_size: int) -> float:
        """Var[f_hat] = 4 e^ε / ((e^ε - 1)^2 n)  (Wang et al. 2017)."""
        if n_users <= 0:
            return float("inf")
        e_eps = np.exp(self.epsilon)
        return float(4.0 * e_eps / ((e_eps - 1.0) ** 2 * n_users))

    def report_bits(self, domain_size: int) -> int:
        """Each OUE report is the full perturbed bit vector."""
        return int(domain_size)
