"""Packed-bit unary report representation and its accumulation kernels.

The wire format of the unary oracles (OUE, SUE) has always been the
``numpy.packbits`` form of the ``(n_users, domain_size)`` bit matrix —
``ceil(d/8)`` bytes per user.  Historically the service *inflated* that
buffer back into the full boolean matrix before summing, an 8× blow-up
that made OUE ingestion memory-bound (and collapsed at large batch
sizes).  This module keeps reports **in the packed domain end to end**:

* :class:`PackedUnaryReports` — a read-only ``(n_users, row_bytes)``
  ``uint8`` view over the wire payload (zero-copy via
  :func:`numpy.frombuffer`), with the dense matrix available only as an
  explicit, lazy fallback (:meth:`PackedUnaryReports.unpack`);
* :func:`packed_column_counts` — per-candidate support counts straight
  off the packed bytes: a blocked ``np.bincount`` over byte values folded
  through a 256×8 bit-expansion table, touching ``d/8`` bytes per report
  instead of ``d`` booleans and never materialising the matrix;
* :func:`sample_unary_reports` — the shared perturbation sampler of the
  unary oracles.  Flipped bits are drawn sparsely (geometric gaps over
  the flattened ``n × d`` Bernoulli grid — the textbook inverse-CDF
  skip-sampling, exact in distribution) and scattered either into a
  dense matrix or directly into packed bytes.  Both output forms consume
  the generator identically, which is what keeps the in-memory path
  (dense) and the service path (packed) bit-identical for a fixed seed.

Correctness contract, pinned by ``tests/test_ldp_packed.py``: for every
packed buffer, ``packed_column_counts`` equals unpack-then-``sum`` bit for
bit, and for every seed ``sample_unary_reports(..., packed=True)`` holds
exactly ``numpy.packbits`` of the dense sample.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, as_generator

#: Bit-expansion lookup table: ``_BIT_TABLE[v, b]`` is bit ``b`` (MSB
#: first, matching ``numpy.packbits``'s default big-endian bit order) of
#: the byte value ``v``.  A byte-value histogram times this table yields
#: the per-column bit counts of a packed block in one tiny matmul.
_BIT_TABLE: np.ndarray = (
    (np.arange(256, dtype=np.int64)[:, None] >> np.arange(7, -1, -1)[None, :]) & 1
)

#: Elements per histogram block of :func:`packed_column_counts`; bounds the
#: kernel's scratch (the offset-shifted byte block) to stay cache-resident.
_KERNEL_BLOCK_ELEMENTS = 1 << 18

#: Largest ``n * d`` (in bits) for which the packed sampler scatters
#: through a transient boolean scratch before packing: at small batch
#: shapes the fixed per-op cost of run-length packing dominates, and a
#: scratch + one ``np.packbits`` is cheaper.  Above this the sampler
#: scatters straight into packed bytes so client memory stays bounded by
#: the wire size (``n × ceil(d/8)``), never the dense matrix.
_PACK_SCRATCH_MAX_BITS = 1 << 21

#: Cached ``arange(n) * row_bytes`` vectors keyed by ``(n, row_bytes)``:
#: the per-user byte-row offsets of the packed scatter.  Batch shapes
#: repeat for a whole stream, so the cache hits on every batch but the
#: ragged last one.  Bounded: stale shapes are evicted once it fills.
_ROW_OFFSET_CACHE: dict[tuple[int, int], np.ndarray] = {}
_ROW_OFFSET_CACHE_MAX = 8


def _row_offsets(n: int, row_bytes: int) -> np.ndarray:
    offsets = _ROW_OFFSET_CACHE.get((n, row_bytes))
    if offsets is None:
        if len(_ROW_OFFSET_CACHE) >= _ROW_OFFSET_CACHE_MAX:
            _ROW_OFFSET_CACHE.clear()
        offsets = np.arange(n, dtype=np.int64) * row_bytes
        offsets.flags.writeable = False
        _ROW_OFFSET_CACHE[(n, row_bytes)] = offsets
    return offsets


def packed_row_bytes(domain_size: int) -> int:
    """Bytes one user's packed bit vector occupies: ``ceil(d / 8)``."""
    return (int(domain_size) + 7) // 8


class PackedUnaryReports:
    """A batch of unary (bit-vector) reports kept in packed wire form.

    Parameters
    ----------
    data:
        ``(n_users, row_bytes)`` ``uint8`` array in ``numpy.packbits``
        layout (big-endian bits, rows padded with zero bits to a byte
        boundary).  The array is frozen read-only on construction: every
        consumer shares the one buffer, so nobody may scribble on it.
    n_users / domain_size:
        Logical shape of the batch; ``row_bytes`` must equal
        ``ceil(domain_size / 8)``.
    """

    __slots__ = ("data", "n_users", "domain_size")

    def __init__(self, data: np.ndarray, *, n_users: int, domain_size: int):
        n_users = int(n_users)
        domain_size = int(domain_size)
        if n_users < 0 or domain_size < 1:
            raise ValueError(
                f"invalid packed shape: n_users={n_users}, domain_size={domain_size}"
            )
        row_bytes = packed_row_bytes(domain_size)
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (n_users, row_bytes):
            raise ValueError(
                f"packed buffer has shape {data.shape}, expected "
                f"({n_users}, {row_bytes}) for domain size {domain_size}"
            )
        data.flags.writeable = False
        self.data = data
        self.n_users = n_users
        self.domain_size = domain_size

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_buffer(cls, buffer, *, n_users: int, domain_size: int) -> "PackedUnaryReports":
        """Zero-copy view over a wire payload (bytes/memoryview).

        The returned reports alias ``buffer`` — no byte is copied between
        the socket and the accumulation kernel.  Raises ``ValueError`` when
        the buffer size does not match the declared shape.
        """
        row_bytes = packed_row_bytes(domain_size)
        flat = np.frombuffer(buffer, dtype=np.uint8)
        expected = int(n_users) * row_bytes
        if flat.size != expected:
            raise ValueError(
                f"packed payload is {flat.size} bytes, expected {expected}"
            )
        return cls(
            flat.reshape(int(n_users), row_bytes),
            n_users=n_users,
            domain_size=domain_size,
        )

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "PackedUnaryReports":
        """Pack a dense ``(n, d)`` boolean report matrix."""
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError(f"expected an (n, d) matrix, got shape {matrix.shape}")
        n, d = matrix.shape
        if d < 1:
            raise ValueError("domain_size must be at least 1")
        return cls(np.packbits(matrix, axis=1), n_users=n, domain_size=d)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Size of the packed buffer (the batch's true memory footprint)."""
        return int(self.data.nbytes)

    def tobytes(self) -> bytes:
        """The canonical wire payload of the batch."""
        return self.data.tobytes()

    def unpack(self) -> np.ndarray:
        """Materialise the dense ``(n_users, domain_size)`` boolean matrix.

        The explicit fallback (and the correctness reference for the
        packed kernels) — the hot path never calls this.
        """
        if self.n_users == 0:
            return np.zeros((0, self.domain_size), dtype=bool)
        matrix = np.unpackbits(self.data, axis=1)[:, : self.domain_size]
        return matrix.astype(bool)

    def column_counts(self) -> np.ndarray:
        """Per-candidate support counts via the packed kernel."""
        return packed_column_counts(self.data, self.domain_size)

    def __len__(self) -> int:
        return self.n_users

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        # Compatibility escape hatch: ``np.asarray(reports)`` anywhere in
        # legacy code transparently yields the dense matrix.
        matrix = self.unpack()
        return matrix if dtype is None else matrix.astype(dtype)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PackedUnaryReports):
            return NotImplemented
        return (
            self.n_users == other.n_users
            and self.domain_size == other.domain_size
            and np.array_equal(self.data, other.data)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedUnaryReports(n_users={self.n_users}, "
            f"domain_size={self.domain_size}, nbytes={self.nbytes})"
        )


def packed_column_counts(data: np.ndarray, domain_size: int) -> np.ndarray:
    """Column (candidate) support counts straight off packed bytes.

    The blocked popcount/LUT kernel: per row block, every byte is shifted
    into its byte-column's 256-bin slot and histogrammed with one
    ``np.bincount``; the ``(row_bytes, 256)`` histogram then folds through
    the 256×8 bit-expansion table into per-column counts.  Work touched is
    ``n × ceil(d/8)`` bytes — the wire size — plus an ``O(256·d)`` matmul,
    and the scratch block stays cache-resident regardless of batch size.

    Bit-identical to ``unpack-then-sum``: padding bits beyond
    ``domain_size`` land in columns the final slice drops, exactly like
    the dense path's ``[:, :domain_size]``.
    """
    data = np.asarray(data, dtype=np.uint8)
    if data.ndim != 2:
        raise ValueError(f"expected an (n, row_bytes) byte array, got {data.shape}")
    domain_size = int(domain_size)
    n, row_bytes = data.shape
    if row_bytes != packed_row_bytes(domain_size):
        raise ValueError(
            f"row width {row_bytes} does not match domain size {domain_size}"
        )
    if n == 0:
        return np.zeros(domain_size, dtype=np.int64)
    # Each byte-column gets its own 256-bin slot: value v in column c
    # histograms into bin c*256 + v.  The offset add goes straight to
    # int64 so bincount consumes the block without an internal cast.
    offsets = (np.arange(row_bytes, dtype=np.int64) << 8)[None, :]
    block = max(1, _KERNEL_BLOCK_ELEMENTS // row_bytes)
    if n <= block:
        # One block: bincount straight into the histogram, no accumulator.
        hist = np.bincount((data + offsets).ravel(), minlength=row_bytes * 256)
    else:
        hist = np.zeros(row_bytes * 256, dtype=np.int64)
        for lo in range(0, n, block):
            chunk = data[lo : lo + block] + offsets
            hist += np.bincount(chunk.ravel(), minlength=row_bytes * 256)
    counts = hist.reshape(row_bytes, 256) @ _BIT_TABLE
    return counts.reshape(row_bytes * 8)[:domain_size]


# --------------------------------------------------------------------------- #
# Sparse unary perturbation
# --------------------------------------------------------------------------- #
def _bernoulli_positions(gen: np.random.Generator, total: int, q: float) -> np.ndarray:
    """Sorted positions of i.i.d. ``Bernoulli(q)`` successes in ``[0, total)``.

    Inverse-CDF geometric skip sampling: gaps between successes are drawn
    as ``floor(log(1-U) / log(1-q)) + 1``, which is exact for the
    geometric law, so the returned position *set* has exactly the
    distribution of thresholding ``total`` uniforms — while consuming
    ``~ total·q`` draws instead of ``total``.
    """
    if total <= 0 or q <= 0.0:
        return np.empty(0, dtype=np.int64)
    if q >= 1.0:
        return np.arange(total, dtype=np.int64)
    inv_log = 1.0 / np.log1p(-q)
    mean = total * q
    # One draw block almost always suffices (6σ headroom); the rare
    # shortfall tops up in smaller blocks, continuing the same stream.
    n_draw = int(mean + 6.0 * np.sqrt(mean + 1.0)) + 16
    chunks = []
    last = -1
    while last < total:
        u = gen.random(n_draw)
        np.negative(u, out=u)
        np.log1p(u, out=u)
        u *= inv_log
        gaps = u.astype(np.int64)
        gaps += 1
        positions = np.cumsum(gaps)
        positions += last
        chunks.append(positions)
        last = int(positions[-1])
        n_draw = max(16, n_draw // 4)
    positions = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
    return positions[: int(np.searchsorted(positions, total))]


def sample_unary_reports(
    values: np.ndarray,
    domain_size: int,
    rng: RandomState,
    p: float,
    q: float,
    *,
    packed: bool = False,
):
    """Sample one perturbed unary report per user, dense or packed.

    Every bit starts as ``Bernoulli(q)`` (drawn sparsely, see
    :func:`_bernoulli_positions`); each user's true-value bit is then
    overwritten with ``Bernoulli(p)``.  The generator is consumed
    identically for both output forms — flip positions first, then the
    ``n`` keep draws — so ``packed=True`` returns exactly
    ``numpy.packbits`` of the ``packed=False`` matrix for the same seed.
    """
    gen = as_generator(rng)
    values = np.asarray(values, dtype=np.int64)
    n = int(values.size)
    d = int(domain_size)
    positions = _bernoulli_positions(gen, n * d, q)
    keep_true = gen.random(n) < p

    if not packed:
        reports = np.zeros((n, d), dtype=bool)
        if positions.size:
            reports.ravel()[positions] = True
        if n:
            reports[np.arange(n), values] = keep_true
        return reports

    row_bytes = packed_row_bytes(d)
    if 0 < n * d <= _PACK_SCRATCH_MAX_BITS:
        # Small batches: scatter into a transient boolean scratch (dies on
        # return, ≤ 2 MiB) and pack once — fewer vector ops than the
        # run-length path, which is what matters when batches are small.
        scratch = np.zeros(n * d, dtype=bool)
        if positions.size:
            scratch[positions] = True
        scratch[_row_offsets(n, d) + values] = keep_true
        data = np.packbits(scratch.reshape(n, d), axis=1)
        return PackedUnaryReports(data, n_users=n, domain_size=d)
    data = np.zeros(n * row_bytes, dtype=np.uint8)
    if positions.size:
        rows, cols = np.divmod(positions, d)
        flat = rows * row_bytes + (cols >> 3)
        masks = (128 >> (cols & 7)).astype(np.uint8)
        # Positions are sorted, so flips landing in the same byte are
        # contiguous in ``flat``: one bitwise-or reduceat over each run
        # builds every touched byte, and the scatter only writes those.
        run_starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.flatnonzero(np.diff(flat)) + 1)
        )
        data[flat[run_starts]] = np.bitwise_or.reduceat(masks, run_starts)
    if n:
        # Overwrite each user's true-value bit with her keep draw (set or
        # *clear* — a background flip at that bit must not survive a
        # keep_true=False, exactly as the dense overwrite does it).
        flat_true = _row_offsets(n, row_bytes) + (values >> 3)
        masks = (128 >> (values & 7)).astype(np.uint8)
        current = data[flat_true]
        data[flat_true] = np.where(keep_true, current | masks, current & ~masks)
    return PackedUnaryReports(
        data.reshape(n, row_bytes), n_users=n, domain_size=d
    )
