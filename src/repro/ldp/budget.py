"""Privacy-budget accounting for the federated simulation.

Under ε-LDP the privacy guarantee is per *user*: each user's single report
must be produced by an ε-LDP mechanism, and a user must not report twice
(which would consume 2ε by sequential composition).  The mechanisms in this
repository divide users into disjoint groups and query each group exactly
once; :class:`PrivacyAccountant` records every report so tests (and callers
who care) can assert the "one report per user, full ε each" invariant that
Theorems 5.1 and 6.1 rely on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class ReportRecord:
    """A single user report event."""

    user_id: int
    party: str
    level: int
    epsilon: float
    oracle: str
    domain_size: int


@dataclass
class PrivacyAccountant:
    """Tracks per-user privacy expenditure across a mechanism run."""

    epsilon: float
    records: list[ReportRecord] = field(default_factory=list)
    _per_user: dict[tuple[str, int], float] = field(default_factory=lambda: defaultdict(float))

    def record(
        self,
        user_ids: Iterable[int],
        *,
        party: str,
        level: int,
        epsilon: float,
        oracle: str,
        domain_size: int,
    ) -> None:
        """Record that every user in ``user_ids`` made one report with ``epsilon``."""
        for uid in user_ids:
            rec = ReportRecord(
                user_id=int(uid),
                party=party,
                level=int(level),
                epsilon=float(epsilon),
                oracle=oracle,
                domain_size=int(domain_size),
            )
            self.records.append(rec)
            self._per_user[(party, int(uid))] += float(epsilon)

    def merge(self, other: "PrivacyAccountant") -> None:
        """Absorb another accountant's records (engine tasks account locally).

        The execution engine gives every party task its own accountant so
        concurrent tasks never contend on shared state; after the backend
        returns, the per-task accountants are merged — in deterministic
        party order — into the run-level one.
        """
        self.records.extend(other.records)
        for key, eps in other._per_user.items():
            self._per_user[key] += eps

    def spent(self, party: str, user_id: int) -> float:
        """Total budget consumed by ``user_id`` of ``party``."""
        return self._per_user.get((party, int(user_id)), 0.0)

    def max_spent(self) -> float:
        """Largest per-user budget across all users (0.0 when nothing recorded)."""
        if not self._per_user:
            return 0.0
        return max(self._per_user.values())

    def n_reports(self) -> int:
        """Total number of reports recorded."""
        return len(self.records)

    def users_reporting_more_than_once(self) -> list[tuple[str, int]]:
        """Users that reported multiple times (LDP violation under parallel composition)."""
        counts: dict[tuple[str, int], int] = defaultdict(int)
        for rec in self.records:
            counts[(rec.party, rec.user_id)] += 1
        return [key for key, c in counts.items() if c > 1]

    def satisfies_ldp(self) -> bool:
        """True iff no user exceeded the declared ε and nobody reported twice."""
        tolerance = 1e-12
        return (
            self.max_spent() <= self.epsilon + tolerance
            and not self.users_reporting_more_than_once()
        )
