"""Shared implementation of the unary-encoding oracles (OUE, SUE).

Both unary oracles one-hot encode the user's value into a length-``d``
bit vector and flip bits independently; they differ only in the keep/flip
probabilities ``(p, q)``.  Everything mechanical about unary reports —
sparse perturbation, dense and packed report forms, the packed-domain
accumulation kernel — lives here so the concrete oracles stay what they
are on paper: a pair of probabilities.
"""

from __future__ import annotations

import numpy as np

from repro.ldp.base import FrequencyOracle
from repro.ldp.packed import PackedUnaryReports, sample_unary_reports
from repro.utils.rng import RandomState


class UnaryEncodingOracle(FrequencyOracle):
    """Base class for unary (bit-vector) frequency oracles.

    Reports exist in two interchangeable forms with identical bits:

    * the dense ``(n_users, domain_size)`` boolean matrix (the historical
      representation, used by the in-memory simulation path), and
    * :class:`~repro.ldp.packed.PackedUnaryReports`, the packbits wire
      form the online service keeps end to end.

    Both :meth:`perturb` and :meth:`perturb_packed` consume the generator
    identically, so the two forms are bit-identical for a fixed seed.
    """

    def perturb(
        self, values: np.ndarray, domain_size: int, rng: RandomState = None
    ) -> np.ndarray:
        """Return an ``(n_users, domain_size)`` boolean report matrix."""
        p, q = self.support_probabilities(domain_size)
        return sample_unary_reports(values, domain_size, rng, p, q, packed=False)

    def perturb_packed(
        self, values: np.ndarray, domain_size: int, rng: RandomState = None
    ) -> PackedUnaryReports:
        """Perturb straight into packed wire form — the ``(n, d)`` matrix
        is never materialised.  Bit-identical to ``packbits(perturb(...))``
        for the same seed."""
        p, q = self.support_probabilities(domain_size)
        return sample_unary_reports(values, domain_size, rng, p, q, packed=True)

    def support_counts(self, reports, domain_size: int) -> np.ndarray:
        if isinstance(reports, PackedUnaryReports):
            if reports.domain_size != int(domain_size):
                raise ValueError(
                    f"packed reports cover domain size {reports.domain_size}, "
                    f"expected {domain_size}"
                )
            return reports.column_counts()
        reports = np.asarray(reports, dtype=bool)
        if reports.ndim != 2 or reports.shape[1] != domain_size:
            raise ValueError(
                f"expected an (n, {domain_size}) report matrix, got shape {reports.shape}"
            )
        return reports.sum(axis=0).astype(np.int64)

    def accumulate_packed(
        self, counts: np.ndarray, packed: PackedUnaryReports, domain_size: int
    ) -> np.ndarray:
        """Packed-domain accumulation: column counts straight off the bytes."""
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (int(domain_size),):
            raise ValueError(
                f"accumulator has shape {counts.shape}, expected ({domain_size},)"
            )
        return counts + self.support_counts(packed, domain_size)
