"""Optimised local hashing (OLH).

Each user hashes her value into a small domain ``[d']`` with a universal
hash function chosen uniformly at random (here: a seeded mixing hash), then
reports the hashed value through randomised response over ``[d']`` with
``d' = ceil(e^ε + 1)``.  A report ``(seed, y)`` *supports* candidate ``x``
iff ``H_seed(x) == y``; decoding therefore costs a full scan of the
candidate domain per report, which is why the paper flags OLH as the
computation-heavy option (Table 1, Table 4).
"""

from __future__ import annotations

import math

import numpy as np

from repro.ldp.base import FrequencyOracle
from repro.utils.rng import RandomState, as_generator

# 64-bit mixing constants (splitmix64-style) for the seeded universal hash.
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)

#: Cap on the number of (candidate, report) hash evaluations held in memory
#: at once while decoding: one (candidate-chunk × report-chunk) block of
#: uint64 scratch stays around 2 MiB — cache-resident — no matter how large
#: the candidate domain or the report batch grows.
_DECODE_BLOCK_ELEMENTS = 1 << 18

#: Reports per inner decode block; the candidate chunk is derived from it
#: so the block never exceeds :data:`_DECODE_BLOCK_ELEMENTS` elements.
_DECODE_REPORT_BLOCK = 1 << 14


def _mix(x: np.ndarray) -> np.ndarray:
    """The splitmix64-style avalanche shared by every hash evaluation."""
    x = (x ^ (x >> np.uint64(30))) * _MIX_1
    x = (x ^ (x >> np.uint64(27))) * _MIX_2
    return x ^ (x >> np.uint64(31))


def _universal_hash(seeds: np.ndarray, values: np.ndarray, n_buckets: int) -> np.ndarray:
    """Hash ``values`` with per-user ``seeds`` into ``[0, n_buckets)``.

    The function mimics drawing a hash function uniformly from a universal
    family: two users with different seeds hash the same value to
    (approximately) independent buckets.
    """
    x = (np.asarray(seeds, dtype=np.uint64) + _GOLDEN) ^ (
        np.asarray(values, dtype=np.uint64) * _GOLDEN
    )
    return (_mix(x) % np.uint64(n_buckets)).astype(np.int64)


class OptimizedLocalHashing(FrequencyOracle):
    """The OLH mechanism (hash + randomised response)."""

    name = "olh"

    def hash_domain_size(self) -> int:
        """The optimal hashed-domain size ``d' = ceil(e^ε + 1)`` (>= 2)."""
        return max(2, int(math.ceil(math.exp(self.epsilon) + 1.0)))

    def support_probabilities(self, domain_size: int) -> tuple[float, float]:
        d_prime = self.hash_domain_size()
        e_eps = math.exp(self.epsilon)
        p = e_eps / (d_prime - 1 + e_eps)
        q = 1.0 / d_prime
        return float(p), float(q)

    def perturb(
        self, values: np.ndarray, domain_size: int, rng: RandomState = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(seeds, reports)``: per-user hash seeds and perturbed buckets."""
        gen = as_generator(rng)
        values = np.asarray(values, dtype=np.int64)
        n = values.size
        d_prime = self.hash_domain_size()
        seeds = gen.integers(0, 2**63 - 1, size=n, dtype=np.int64)
        hashed = _universal_hash(seeds, values, d_prime)
        e_eps = math.exp(self.epsilon)
        p_report = e_eps / (d_prime - 1 + e_eps)
        keep = gen.random(n) < p_report
        others = gen.integers(0, d_prime - 1, size=n)
        others = others + (others >= hashed)
        reports = np.where(keep, hashed, others)
        return seeds, reports

    def support_counts(
        self, reports: tuple[np.ndarray, np.ndarray], domain_size: int
    ) -> np.ndarray:
        """Count, for every candidate, the reports whose hash matches the report.

        Decoding is still an exact full scan — O(n · d) hash evaluations, as
        in the paper's complexity analysis — but vectorised over candidate
        chunks: a ``(chunk, n)`` block is hashed in one NumPy call instead
        of one Python-level pass per candidate.
        """
        return self.support_counts_range(reports, 0, int(domain_size))

    def support_counts_range(
        self, reports: tuple[np.ndarray, np.ndarray], start: int, stop: int
    ) -> np.ndarray:
        """Exact support counts for the candidate range ``[start, stop)``.

        The unit of sharded decoding: ranges partitioning the domain decode
        independently (on any execution backend) and concatenate to exactly
        :meth:`support_counts` of the full domain.

        The scan is blocked over (candidate-chunk × report-chunk) so its
        uint64 scratch stays cache-resident for any batch size; integer
        partial sums make the blocking bit-identical to a flat scan.
        Wire-decoded report views (int64 seed view, small-uint bucket
        view) are consumed without copies.
        """
        seeds, ys = reports
        seeds = np.asarray(seeds)
        ys = np.asarray(ys)
        if not 0 <= start <= stop:
            raise ValueError(f"invalid candidate range [{start}, {stop})")
        d_prime = np.uint64(self.hash_domain_size())
        counts = np.zeros(stop - start, dtype=np.int64)
        n = int(seeds.size)
        if n == 0:
            return counts
        # Hoist the per-report halves of the hash out of both loops.
        seeds_mixed = seeds.astype(np.uint64, copy=False) + _GOLDEN
        ys_u64 = ys.astype(np.uint64, copy=False)
        r_block = min(n, _DECODE_REPORT_BLOCK)
        c_chunk = max(1, _DECODE_BLOCK_ELEMENTS // r_block)
        for lo in range(start, stop, c_chunk):
            hi = min(lo + c_chunk, stop)
            cand_mixed = (
                np.arange(lo, hi, dtype=np.uint64) * _GOLDEN
            )[:, np.newaxis]
            block_counts = np.zeros(hi - lo, dtype=np.int64)
            for rlo in range(0, n, r_block):
                rhi = min(rlo + r_block, n)
                hashed = _mix(seeds_mixed[np.newaxis, rlo:rhi] ^ cand_mixed) % d_prime
                block_counts += (hashed == ys_u64[rlo:rhi]).sum(axis=1)
            counts[lo - start : hi - start] = block_counts
        return counts

    def n_reports(self, reports: tuple[np.ndarray, np.ndarray]) -> int:
        """An OLH batch holds one (seed, bucket) pair per user."""
        seeds, _ = reports
        return int(np.asarray(seeds).shape[0])

    def report_value_domain(self, domain_size: int) -> int:
        """OLH bucket reports live in the hashed domain ``[0, d')``."""
        return self.hash_domain_size()

    def variance(self, n_users: int, domain_size: int) -> float:
        """Var[f_hat] = 4 e^ε / ((e^ε - 1)^2 n), same as OUE (Wang et al. 2017)."""
        if n_users <= 0:
            return float("inf")
        e_eps = math.exp(self.epsilon)
        return float(4.0 * e_eps / ((e_eps - 1.0) ** 2 * n_users))

    def report_bits(self, domain_size: int) -> int:
        """An OLH report is a hash seed plus a bucket index (≈ 64 + log2 d' bits)."""
        d_prime = self.hash_domain_size()
        return 64 + max(1, int(math.ceil(math.log2(d_prime))))
