"""Abstract frequency-oracle interface and estimation result container.

The heavy-hitter mechanisms only rely on this interface, which makes the FO
pluggable (Figure 6 of the paper swaps k-RR for OUE and OLH without touching
the trie logic).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive

SimulationMode = Literal["per_user", "aggregate"]


@dataclass(frozen=True)
class EstimationResult:
    """Output of a frequency-oracle round over a candidate domain.

    Attributes
    ----------
    support_counts:
        Raw number of reports supporting each candidate (length = domain size).
    estimated_counts:
        Unbiased estimates of the true counts, may be negative due to noise.
    estimated_frequencies:
        ``estimated_counts / n_users`` (zeros when no users participated).
    n_users:
        Number of users that reported in this round.
    domain_size:
        Size of the candidate domain the oracle operated on.
    oracle_name:
        Name of the FO that produced the estimates.
    epsilon:
        Privacy budget used by each report.
    """

    support_counts: np.ndarray
    estimated_counts: np.ndarray
    estimated_frequencies: np.ndarray
    n_users: int
    domain_size: int
    oracle_name: str
    epsilon: float
    metadata: dict = field(default_factory=dict)

    def top_indices(self, k: int) -> np.ndarray:
        """Indices of the ``k`` largest estimated counts, sorted descending."""
        if k <= 0:
            return np.array([], dtype=np.int64)
        k = min(k, self.estimated_counts.size)
        order = np.argsort(self.estimated_counts, kind="stable")[::-1]
        return order[:k]


class FrequencyOracle(abc.ABC):
    """Base class for ε-LDP frequency oracles over a finite candidate domain.

    Subclasses define how a report is produced (:meth:`perturb`), how reports
    are tallied into per-candidate support counts (:meth:`support_counts`),
    and the support probabilities ``(p, q)`` with which a report supports the
    user's true candidate vs. any other candidate.  Everything else (unbiased
    estimation, variance, the fast aggregate sampling path) is shared.
    """

    #: Short, stable identifier used by the registry and in benchmark output.
    name: str = "fo"

    def __init__(self, epsilon: float):
        check_positive("epsilon", epsilon)
        self.epsilon = float(epsilon)

    # ------------------------------------------------------------------ #
    # Core probabilities
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def support_probabilities(self, domain_size: int) -> tuple[float, float]:
        """Return ``(p, q)``: probability a report supports the true value / another value."""

    # ------------------------------------------------------------------ #
    # Per-user simulation path
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def perturb(
        self, values: np.ndarray, domain_size: int, rng: RandomState = None
    ) -> object:
        """Produce one sanitised report per user.

        ``values`` are candidate indices in ``[0, domain_size)``.  The report
        representation is oracle-specific (indices for k-RR, bit matrix for
        OUE, (seed, hashed report) pairs for OLH).
        """

    @abc.abstractmethod
    def support_counts(self, reports: object, domain_size: int) -> np.ndarray:
        """Tally reports into per-candidate support counts."""

    # ------------------------------------------------------------------ #
    # Chunked accumulation (the online-aggregation path)
    # ------------------------------------------------------------------ #
    def n_reports(self, reports: object) -> int:
        """Number of user reports contained in a report batch.

        Array-shaped reports (k-RR indices, OUE/SUE bit matrices) count
        their leading axis; oracles with structured reports (OLH's
        ``(seeds, buckets)`` pair) override.  Report containers that
        carry an ``n_users`` attribute (packed unary batches) answer from
        it directly, without materialising anything.
        """
        n_users = getattr(reports, "n_users", None)
        if n_users is not None:
            return int(n_users)
        return int(np.asarray(reports).shape[0])

    def report_value_domain(self, domain_size: int) -> int:
        """Size of the per-report value domain as shipped on the wire.

        Equals the candidate domain for most oracles; OLH overrides with the
        hashed domain ``d'`` its bucket reports live in.
        """
        return int(domain_size)

    def accumulate(
        self, counts: np.ndarray, reports: object, domain_size: int
    ) -> np.ndarray:
        """Add a report batch's support counts into an accumulator.

        The workhorse of the online aggregation service
        (:mod:`repro.service.shards`): ingesting a stream batch-by-batch
        never materialises more than one batch of reports, and the
        accumulator stays ``O(domain_size)``.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (int(domain_size),):
            raise ValueError(
                f"accumulator has shape {counts.shape}, expected ({domain_size},)"
            )
        return counts + self.support_counts(reports, domain_size)

    def accumulate_packed(
        self, counts: np.ndarray, packed, domain_size: int
    ) -> np.ndarray:
        """Add a packed-bit unary batch's support counts into an accumulator.

        Optional protocol method of the columnar hot path
        (:mod:`repro.service`): ``packed`` is a
        :class:`~repro.ldp.packed.PackedUnaryReports` aliasing the wire
        payload.  The base implementation is the bit-identical fallback —
        unpack to the dense matrix, then :meth:`accumulate` — so any
        oracle whose report representation is the ``(n, d)`` bit matrix
        works unchanged; the unary oracles override it with the packed
        popcount kernel that never materialises the matrix
        (:func:`repro.ldp.packed.packed_column_counts`).
        """
        return self.accumulate(counts, packed.unpack(), domain_size)

    def merge_counts(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Combine two support-count accumulators over the same domain.

        Integer addition — associative and commutative, so shards built from
        any partition of a report stream merge to the same totals in any
        order.
        """
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if left.shape != right.shape:
            raise ValueError(
                f"cannot merge accumulators of shapes {left.shape} and {right.shape}"
            )
        return left + right

    # ------------------------------------------------------------------ #
    # Aggregate (sampled) simulation path
    # ------------------------------------------------------------------ #
    def sample_support_counts(
        self, true_counts: np.ndarray, rng: RandomState = None
    ) -> np.ndarray:
        """Sample support counts directly from their exact distribution.

        For candidate ``j`` with ``n_j`` true holders out of ``n`` users, the
        number of supporting reports is ``Binomial(n_j, p) + Binomial(n - n_j, q)``
        with ``(p, q)`` the support probabilities.  Subclasses may override
        when supports are not independent across candidates (k-RR overrides
        to use a multinomial).
        """
        gen = as_generator(rng)
        true_counts = np.asarray(true_counts, dtype=np.int64)
        n = int(true_counts.sum())
        p, q = self.support_probabilities(true_counts.size)
        hits = gen.binomial(true_counts, p)
        misses = gen.binomial(n - true_counts, q)
        return (hits + misses).astype(np.int64)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def estimate_counts(
        self, support_counts: np.ndarray, n_users: int, domain_size: int
    ) -> np.ndarray:
        """Unbiased count estimates ``(c - n*q) / (p - q)``."""
        support_counts = np.asarray(support_counts, dtype=np.float64)
        if n_users == 0:
            return np.zeros_like(support_counts)
        p, q = self.support_probabilities(domain_size)
        return (support_counts - n_users * q) / (p - q)

    def variance(self, n_users: int, domain_size: int) -> float:
        """Variance of a single frequency estimate (``Var[f_hat_x]``)."""
        if n_users <= 0:
            return float("inf")
        p, q = self.support_probabilities(domain_size)
        return q * (1.0 - q) / (n_users * (p - q) ** 2)

    def std(self, n_users: int, domain_size: int) -> float:
        """Standard deviation of a single frequency estimate."""
        return float(np.sqrt(self.variance(n_users, domain_size)))

    # ------------------------------------------------------------------ #
    # Cost accounting
    # ------------------------------------------------------------------ #
    def report_bits(self, domain_size: int) -> int:
        """Number of bits a single user report occupies on the wire.

        Defaults to the bits needed to index the domain; OUE overrides with
        the full bit-vector length.
        """
        return max(1, int(np.ceil(np.log2(max(domain_size, 2)))))

    def decode_cost(self, n_users: int, domain_size: int) -> int:
        """Number of elementary operations the server spends decoding reports."""
        return int(n_users) * int(domain_size)

    # ------------------------------------------------------------------ #
    # Convenience end-to-end run
    # ------------------------------------------------------------------ #
    def run(
        self,
        values: np.ndarray,
        domain_size: int,
        rng: RandomState = None,
        *,
        mode: SimulationMode = "per_user",
        batch_size: int | None = None,
    ) -> EstimationResult:
        """Perturb ``values``, tally supports and estimate counts/frequencies.

        Parameters
        ----------
        values:
            Candidate indices in ``[0, domain_size)``, one per user.
        domain_size:
            Size of the candidate domain.
        rng:
            Seed or generator.
        mode:
            ``"per_user"`` materialises every report, ``"aggregate"`` samples
            the support counts from their exact distribution.
        batch_size:
            In ``"per_user"`` mode, perturb and accumulate at most this many
            reports at a time, bounding the report buffer at
            ``O(batch_size × domain_size)`` instead of
            ``O(n_users × domain_size)``.  Batching changes how the RNG
            stream is split across draws (the estimates stay identically
            distributed); for a fixed seed, results are bit-identical to the
            online aggregation service streaming the same batch size.
        """
        check_positive("domain_size", domain_size)
        if batch_size is not None:
            check_positive("batch_size", batch_size)
        gen = as_generator(rng)
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= domain_size):
            raise ValueError("values must be candidate indices within the domain")
        n = int(values.size)
        if mode == "aggregate":
            true_counts = np.bincount(values, minlength=domain_size)
            supports = self.sample_support_counts(true_counts, gen)
        elif mode == "per_user":
            if batch_size is None or batch_size >= n:
                reports = self.perturb(values, domain_size, gen)
                supports = self.support_counts(reports, domain_size)
            else:
                supports = np.zeros(domain_size, dtype=np.int64)
                for start in range(0, n, batch_size):
                    chunk = self.perturb(
                        values[start : start + batch_size], domain_size, gen
                    )
                    supports = self.accumulate(supports, chunk, domain_size)
        else:  # pragma: no cover - guarded by Literal typing in practice
            raise ValueError(f"unknown simulation mode {mode!r}")
        est_counts = self.estimate_counts(supports, n, domain_size)
        est_freqs = est_counts / n if n else np.zeros_like(est_counts)
        return EstimationResult(
            support_counts=np.asarray(supports, dtype=np.int64),
            estimated_counts=est_counts,
            estimated_frequencies=est_freqs,
            n_users=n,
            domain_size=int(domain_size),
            oracle_name=self.name,
            epsilon=self.epsilon,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(epsilon={self.epsilon})"
