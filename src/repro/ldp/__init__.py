"""Local differential privacy substrate: frequency oracles and budgeting.

A *frequency oracle* (FO) is an ε-LDP mechanism that lets each user report a
sanitised version of her value over a finite candidate domain and lets the
aggregator compute unbiased frequency estimates for every candidate.  The
paper treats the FO as a black box (Section 3.2); the heavy-hitter logic in
:mod:`repro.core` therefore only interacts with the :class:`FrequencyOracle`
interface defined here.

Implemented oracles (Wang et al., USENIX Security 2017 formulations):

* :class:`KRandomizedResponse` (``k-RR``) — direct randomised response,
* :class:`OptimizedUnaryEncoding` (``OUE``) — one-hot encoding with
  asymmetric bit flipping,
* :class:`OptimizedLocalHashing` (``OLH``) — hash to a small domain then
  randomised response.

Every oracle supports two simulation paths:

* ``per_user`` — each user's report is materialised (faithful simulation),
* ``aggregate`` — the per-candidate support counts are sampled from their
  exact sampling distribution (binomial/multinomial), which is statistically
  identical for estimation purposes and orders of magnitude faster.
"""

from repro.ldp.base import EstimationResult, FrequencyOracle
from repro.ldp.krr import KRandomizedResponse
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.ldp.olh import OptimizedLocalHashing
from repro.ldp.packed import PackedUnaryReports
from repro.ldp.budget import PrivacyAccountant, ReportRecord
from repro.ldp.registry import available_oracles, make_oracle

__all__ = [
    "EstimationResult",
    "FrequencyOracle",
    "KRandomizedResponse",
    "OptimizedUnaryEncoding",
    "OptimizedLocalHashing",
    "PackedUnaryReports",
    "PrivacyAccountant",
    "ReportRecord",
    "available_oracles",
    "make_oracle",
]
