"""Symmetric unary encoding (SUE, a.k.a. basic one-time RAPPOR).

SUE one-hot encodes the value like OUE but flips every bit symmetrically:
the true bit is kept with probability ``p = e^{ε/2} / (e^{ε/2} + 1)`` and a
zero bit is flipped with probability ``q = 1 - p``.  Its estimation variance
is strictly worse than OUE's (that is exactly the optimisation OUE makes),
so it is not used by the paper's experiments; it is included as an extension
to (a) demonstrate the FO interface is genuinely pluggable and (b) serve as
a worked example for adding new oracles.

Report mechanics (sparse sampling, dense/packed forms, packed-domain
accumulation) are shared with OUE via
:class:`~repro.ldp.unary.UnaryEncodingOracle`.
"""

from __future__ import annotations

import numpy as np

from repro.ldp.unary import UnaryEncodingOracle


class SymmetricUnaryEncoding(UnaryEncodingOracle):
    """The SUE / basic RAPPOR mechanism (symmetric bit flipping)."""

    name = "sue"

    def support_probabilities(self, domain_size: int) -> tuple[float, float]:
        half = np.exp(self.epsilon / 2.0)
        p = half / (half + 1.0)
        return float(p), float(1.0 - p)

    def variance(self, n_users: int, domain_size: int) -> float:
        """Var[f_hat] = q(1-q) / (n (p-q)^2) with the symmetric p, q."""
        if n_users <= 0:
            return float("inf")
        p, q = self.support_probabilities(domain_size)
        return float(q * (1.0 - q) / (n_users * (p - q) ** 2))

    def report_bits(self, domain_size: int) -> int:
        """Like OUE, a SUE report is the full perturbed bit vector."""
        return int(domain_size)
