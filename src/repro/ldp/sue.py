"""Symmetric unary encoding (SUE, a.k.a. basic one-time RAPPOR).

SUE one-hot encodes the value like OUE but flips every bit symmetrically:
the true bit is kept with probability ``p = e^{ε/2} / (e^{ε/2} + 1)`` and a
zero bit is flipped with probability ``q = 1 - p``.  Its estimation variance
is strictly worse than OUE's (that is exactly the optimisation OUE makes),
so it is not used by the paper's experiments; it is included as an extension
to (a) demonstrate the FO interface is genuinely pluggable and (b) serve as
a worked example for adding new oracles.
"""

from __future__ import annotations

import numpy as np

from repro.ldp.base import FrequencyOracle
from repro.utils.rng import RandomState, as_generator


class SymmetricUnaryEncoding(FrequencyOracle):
    """The SUE / basic RAPPOR mechanism (symmetric bit flipping)."""

    name = "sue"

    def support_probabilities(self, domain_size: int) -> tuple[float, float]:
        half = np.exp(self.epsilon / 2.0)
        p = half / (half + 1.0)
        return float(p), float(1.0 - p)

    def perturb(
        self, values: np.ndarray, domain_size: int, rng: RandomState = None
    ) -> np.ndarray:
        """Return an ``(n_users, domain_size)`` boolean report matrix."""
        gen = as_generator(rng)
        values = np.asarray(values, dtype=np.int64)
        n = values.size
        p, q = self.support_probabilities(domain_size)
        reports = gen.random((n, domain_size)) < q
        if n:
            keep_true = gen.random(n) < p
            reports[np.arange(n), values] = keep_true
        return reports

    def support_counts(self, reports: np.ndarray, domain_size: int) -> np.ndarray:
        reports = np.asarray(reports, dtype=bool)
        if reports.ndim != 2 or reports.shape[1] != domain_size:
            raise ValueError(
                f"expected an (n, {domain_size}) report matrix, got shape {reports.shape}"
            )
        return reports.sum(axis=0).astype(np.int64)

    def variance(self, n_users: int, domain_size: int) -> float:
        """Var[f_hat] = q(1-q) / (n (p-q)^2) with the symmetric p, q."""
        if n_users <= 0:
            return float("inf")
        p, q = self.support_probabilities(domain_size)
        return float(q * (1.0 - q) / (n_users * (p - q) ** 2))

    def report_bits(self, domain_size: int) -> int:
        """Like OUE, a SUE report is the full perturbed bit vector."""
        return int(domain_size)
