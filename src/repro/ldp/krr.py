"""k-ary randomised response (k-RR / GRR).

Given privacy budget ε and a candidate domain of size ``d``, a user holding
value ``x`` reports ``x`` with probability ``p = e^ε / (d - 1 + e^ε)`` and
each other value with probability ``q = 1 / (d - 1 + e^ε)``.  k-RR is the
paper's default FO (Section 7.1) because candidate domains stay small after
prefix pruning.
"""

from __future__ import annotations

import numpy as np

from repro.ldp.base import FrequencyOracle
from repro.utils.rng import RandomState, as_generator


class KRandomizedResponse(FrequencyOracle):
    """The k-RR mechanism (generalised randomised response)."""

    name = "krr"

    def support_probabilities(self, domain_size: int) -> tuple[float, float]:
        if domain_size < 2:
            # Degenerate single-candidate domain: the report is always the
            # candidate, which conveys nothing and costs no privacy in effect.
            return 1.0, 0.0
        e_eps = np.exp(self.epsilon)
        denom = domain_size - 1 + e_eps
        return float(e_eps / denom), float(1.0 / denom)

    def perturb(
        self, values: np.ndarray, domain_size: int, rng: RandomState = None
    ) -> np.ndarray:
        """Return one reported candidate index per user."""
        gen = as_generator(rng)
        values = np.asarray(values, dtype=np.int64)
        n = values.size
        if domain_size < 2 or n == 0:
            return values.copy()
        p, _ = self.support_probabilities(domain_size)
        keep = gen.random(n) < p
        # Sample a uniformly random *other* value by drawing from the
        # (d-1)-sized domain excluding the true value, then shifting.
        others = gen.integers(0, domain_size - 1, size=n)
        others = others + (others >= values)
        return np.where(keep, values, others)

    def support_counts(self, reports: np.ndarray, domain_size: int) -> np.ndarray:
        """A k-RR report supports exactly the value it names."""
        reports = np.asarray(reports)
        if not np.issubdtype(reports.dtype, np.integer):
            # Only copy on dtype mismatch: wire decodes arrive as the
            # smallest unsigned dtype and bincount takes them as-is.
            reports = reports.astype(np.int64)
        return np.bincount(reports, minlength=domain_size).astype(np.int64)

    def sample_support_counts(
        self, true_counts: np.ndarray, rng: RandomState = None
    ) -> np.ndarray:
        """Exact aggregate sampling for k-RR.

        Reports form a partition of the users (each report supports exactly
        one candidate), so supports follow a sum of multinomials rather than
        independent binomials.
        """
        gen = as_generator(rng)
        true_counts = np.asarray(true_counts, dtype=np.int64)
        d = true_counts.size
        if d < 2:
            return true_counts.copy()
        p, q = self.support_probabilities(d)
        supports = np.zeros(d, dtype=np.int64)
        for idx in np.flatnonzero(true_counts):
            probs = np.full(d, q)
            probs[idx] = p
            supports += gen.multinomial(int(true_counts[idx]), probs)
        return supports

    def variance(self, n_users: int, domain_size: int) -> float:
        """Var[f_hat] = (d - 2 + e^ε) / ((e^ε - 1)^2 n)  (Wang et al. 2017)."""
        if n_users <= 0:
            return float("inf")
        e_eps = np.exp(self.epsilon)
        return float((domain_size - 2 + e_eps) / ((e_eps - 1.0) ** 2 * n_users))
