"""Name-based construction of frequency oracles.

The experiment harness selects the FO by name (``"krr"``, ``"oue"``,
``"olh"``) because Figure 6 of the paper sweeps over oracles; keeping the
mapping here avoids scattering string comparisons through the benchmarks.
"""

from __future__ import annotations

from repro.ldp.base import FrequencyOracle
from repro.ldp.krr import KRandomizedResponse
from repro.ldp.olh import OptimizedLocalHashing
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.ldp.sue import SymmetricUnaryEncoding

_ORACLES: dict[str, type[FrequencyOracle]] = {
    KRandomizedResponse.name: KRandomizedResponse,
    OptimizedUnaryEncoding.name: OptimizedUnaryEncoding,
    OptimizedLocalHashing.name: OptimizedLocalHashing,
    SymmetricUnaryEncoding.name: SymmetricUnaryEncoding,
}


def available_oracles() -> list[str]:
    """Names of all registered frequency oracles."""
    return sorted(_ORACLES)


def make_oracle(name: str, epsilon: float) -> FrequencyOracle:
    """Instantiate the oracle registered under ``name`` with budget ``epsilon``."""
    key = name.lower()
    if key not in _ORACLES:
        raise KeyError(
            f"unknown frequency oracle {name!r}; available: {available_oracles()}"
        )
    return _ORACLES[key](epsilon)
