"""Item ↔ binary-prefix encoding.

The TAP/TAPS mechanisms operate on a binary prefix tree: every item of the
domain ``X`` is encoded as an ``m``-bit binary string and a level ``h`` of
the trie corresponds to prefixes of length ``l_h = ceil(h * m / g)``.  This
subpackage provides:

* :class:`BinaryEncoder` — integer item ids ↔ fixed-width bit strings,
* :class:`ItemDictionary` — arbitrary hashable items (e.g. words) ↔ ids,
* :mod:`repro.encoding.prefix` — prefix algebra (truncation, extension,
  containment checks) used by the trie machinery.
"""

from repro.encoding.binary import BinaryEncoder
from repro.encoding.dictionary import ItemDictionary
from repro.encoding.prefix import (
    extend_prefixes,
    is_prefix_of,
    level_lengths,
    prefix_of,
    prefixes_of_items,
    validate_prefix,
)

__all__ = [
    "BinaryEncoder",
    "ItemDictionary",
    "extend_prefixes",
    "is_prefix_of",
    "level_lengths",
    "prefix_of",
    "prefixes_of_items",
    "validate_prefix",
]
