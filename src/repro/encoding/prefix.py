"""Prefix algebra over bit strings.

These helpers implement the ``Construct`` primitive of Algorithm 2
(candidate-domain extension ``Λ_h = C_{h-1} × {0,1}^{l_h − l_{h-1}}``) and
the per-level prefix-length schedule ``l_h = ceil(h · m / g)``.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Iterable, Sequence

import numpy as np

_BIT_CHARS = frozenset("01")


def validate_prefix(prefix: str) -> str:
    """Return ``prefix`` unchanged if it is a (possibly empty) bit string."""
    if not isinstance(prefix, str):
        raise TypeError(f"prefix must be a string, got {type(prefix).__name__}")
    if set(prefix) - _BIT_CHARS:
        raise ValueError(f"prefix must contain only '0'/'1' characters, got {prefix!r}")
    return prefix


def prefix_of(bits: str, length: int) -> str:
    """Return the first ``length`` characters of ``bits``."""
    validate_prefix(bits)
    if not 0 <= length <= len(bits):
        raise ValueError(f"length must be in [0, {len(bits)}], got {length}")
    return bits[:length]


def is_prefix_of(prefix: str, bits: str) -> bool:
    """True if ``bits`` starts with ``prefix``."""
    validate_prefix(prefix)
    validate_prefix(bits)
    return bits.startswith(prefix)


def extend_prefixes(prefixes: Iterable[str], extra_bits: int) -> list[str]:
    """Extend every prefix with every combination of ``extra_bits`` new bits.

    This is the candidate-domain ``Construct`` step of Algorithm 2:
    ``Λ_h = C_{h-1} × {0,1}^{l_h − l_{h-1}}``.

    The output preserves the order of the input prefixes (suffixes are
    appended in lexicographic order within each parent) and is therefore
    deterministic.
    """
    if extra_bits < 0:
        raise ValueError(f"extra_bits must be >= 0, got {extra_bits}")
    parents = [validate_prefix(p) for p in prefixes]
    if extra_bits == 0:
        return list(parents)
    suffixes = ["".join(bits) for bits in product("01", repeat=extra_bits)]
    return [parent + suffix for parent in parents for suffix in suffixes]


def level_lengths(n_bits: int, granularity: int) -> list[int]:
    """Prefix lengths for levels ``1..granularity``: ``l_h = ceil(h*m/g)``.

    Parameters
    ----------
    n_bits:
        Maximum binary length ``m``.
    granularity:
        Number of levels/groups ``g``.
    """
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    if granularity > n_bits:
        raise ValueError(
            f"granularity ({granularity}) cannot exceed n_bits ({n_bits}); "
            "levels would repeat prefix lengths"
        )
    return [math.ceil(h * n_bits / granularity) for h in range(1, granularity + 1)]


def prefixes_of_items(
    items: Sequence[int] | np.ndarray, n_bits: int, length: int
) -> list[str]:
    """Length-``length`` prefixes of the ``n_bits``-wide encodings of ``items``."""
    if not 0 <= length <= n_bits:
        raise ValueError(f"length must be in [0, {n_bits}], got {length}")
    arr = np.asarray(items, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= (1 << n_bits)):
        raise ValueError("one or more items outside encodable range")
    shifted = arr >> (n_bits - length) if length < n_bits else arr
    if length == 0:
        return ["" for _ in range(arr.size)]
    return [format(int(x), f"0{length}b") for x in shifted]
