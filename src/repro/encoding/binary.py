"""Fixed-width binary encoding of integer item identifiers.

The paper encodes every item into an ``m``-bit string (``m = 48`` in the
experiments) and identifies heavy hitters by discovering popular prefixes of
increasing length.  :class:`BinaryEncoder` is the single place where the
item-id ↔ bit-string mapping lives, so changing the width or the bit order
does not ripple through the mechanism code.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class BinaryEncoder:
    """Encode non-negative integer item ids as fixed-width bit strings.

    Parameters
    ----------
    n_bits:
        Width ``m`` of the encoding.  Items must satisfy ``0 <= item < 2**m``.

    Examples
    --------
    >>> enc = BinaryEncoder(4)
    >>> enc.encode(5)
    '0101'
    >>> enc.decode('0101')
    5
    >>> enc.prefix(5, 2)
    '01'
    """

    def __init__(self, n_bits: int):
        check_positive("n_bits", n_bits)
        if n_bits > 63:
            raise ValueError(f"n_bits must be <= 63 to fit in int64, got {n_bits}")
        self.n_bits = int(n_bits)

    @property
    def domain_size(self) -> int:
        """Number of representable items, ``2**n_bits``."""
        return 1 << self.n_bits

    def _check_item(self, item: int) -> int:
        item = int(item)
        if not 0 <= item < self.domain_size:
            raise ValueError(
                f"item {item} outside encodable range [0, {self.domain_size})"
            )
        return item

    def encode(self, item: int) -> str:
        """Return the ``n_bits``-wide binary string for ``item``."""
        return format(self._check_item(item), f"0{self.n_bits}b")

    def decode(self, bits: str) -> int:
        """Return the item id encoded by the full-width bit string ``bits``."""
        if len(bits) != self.n_bits:
            raise ValueError(
                f"expected a {self.n_bits}-bit string, got {len(bits)} bits"
            )
        return int(bits, 2)

    def prefix(self, item: int, length: int) -> str:
        """Return the first ``length`` bits of the encoding of ``item``."""
        if not 0 <= length <= self.n_bits:
            raise ValueError(
                f"prefix length must be in [0, {self.n_bits}], got {length}"
            )
        return self.encode(item)[:length]

    def encode_many(self, items: np.ndarray) -> list[str]:
        """Vectorised :meth:`encode` for an array of item ids."""
        items = np.asarray(items, dtype=np.int64)
        if items.size and (items.min() < 0 or items.max() >= self.domain_size):
            raise ValueError("one or more items outside encodable range")
        width = self.n_bits
        return [format(int(x), f"0{width}b") for x in items]

    def prefix_ids(self, items: np.ndarray, length: int) -> np.ndarray:
        """Return integer ids of the length-``length`` prefixes of ``items``.

        A prefix of length ``l`` of an ``m``-bit item is obtained by a right
        shift of ``m - l`` bits; working with integer prefix ids keeps the
        hot perturbation loops purely in numpy.
        """
        if not 0 <= length <= self.n_bits:
            raise ValueError(
                f"prefix length must be in [0, {self.n_bits}], got {length}"
            )
        items = np.asarray(items, dtype=np.int64)
        if items.size and (items.min() < 0 or items.max() >= self.domain_size):
            raise ValueError("one or more items outside encodable range")
        return items >> (self.n_bits - length)

    def prefix_id_to_string(self, prefix_id: int, length: int) -> str:
        """Convert an integer prefix id back to its bit-string form."""
        if not 0 <= length <= self.n_bits:
            raise ValueError(
                f"prefix length must be in [0, {self.n_bits}], got {length}"
            )
        if length == 0:
            return ""
        if not 0 <= prefix_id < (1 << length):
            raise ValueError(
                f"prefix id {prefix_id} does not fit into {length} bits"
            )
        return format(int(prefix_id), f"0{length}b")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinaryEncoder(n_bits={self.n_bits})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BinaryEncoder) and other.n_bits == self.n_bits

    def __hash__(self) -> int:
        return hash(("BinaryEncoder", self.n_bits))
