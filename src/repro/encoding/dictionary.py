"""Mapping between arbitrary hashable items (words, product ids) and dense ids.

The federated datasets in the paper are word- and item-level corpora; the
mechanisms however operate on integer ids encoded as bit strings.
:class:`ItemDictionary` provides the stable bidirectional mapping and the
choice of the binary width ``m`` that can represent the vocabulary.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from repro.encoding.binary import BinaryEncoder


class ItemDictionary:
    """A frozen vocabulary assigning dense integer ids to items.

    Ids are assigned in first-seen order, which keeps dataset generation
    deterministic for a fixed input ordering.

    Examples
    --------
    >>> vocab = ItemDictionary(["apple", "pear", "plum"])
    >>> vocab.id_of("pear")
    1
    >>> vocab.item_of(2)
    'plum'
    >>> len(vocab)
    3
    """

    def __init__(self, items: Iterable[Hashable] = ()):
        self._item_to_id: dict[Hashable, int] = {}
        self._id_to_item: list[Hashable] = []
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> int:
        """Add ``item`` if unseen and return its id."""
        existing = self._item_to_id.get(item)
        if existing is not None:
            return existing
        new_id = len(self._id_to_item)
        self._item_to_id[item] = new_id
        self._id_to_item.append(item)
        return new_id

    def id_of(self, item: Hashable) -> int:
        """Return the id of ``item`` or raise ``KeyError``."""
        return self._item_to_id[item]

    def item_of(self, item_id: int) -> Hashable:
        """Return the item with id ``item_id`` or raise ``IndexError``."""
        if not 0 <= item_id < len(self._id_to_item):
            raise IndexError(f"item id {item_id} out of range")
        return self._id_to_item[item_id]

    def items_of(self, ids: Sequence[int]) -> list[Hashable]:
        """Vectorised :meth:`item_of`."""
        return [self.item_of(int(i)) for i in ids]

    def __contains__(self, item: Hashable) -> bool:
        return item in self._item_to_id

    def __len__(self) -> int:
        return len(self._id_to_item)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._id_to_item)

    def min_bits(self) -> int:
        """Smallest binary width able to represent every id in the vocabulary."""
        if not self._id_to_item:
            return 1
        return max(1, (len(self._id_to_item) - 1).bit_length())

    def encoder(self, n_bits: int | None = None) -> BinaryEncoder:
        """Build a :class:`BinaryEncoder` wide enough for this vocabulary.

        Parameters
        ----------
        n_bits:
            Explicit width.  Defaults to :meth:`min_bits`; a ``ValueError``
            is raised if the requested width cannot represent the vocabulary.
        """
        required = self.min_bits()
        if n_bits is None:
            n_bits = required
        if n_bits < required:
            raise ValueError(
                f"n_bits={n_bits} too small for a vocabulary of {len(self)} items"
            )
        return BinaryEncoder(n_bits)
