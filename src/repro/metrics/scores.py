"""Evaluation metrics: F1, NCR, and per-party recall.

All metrics take the *estimated* heavy-hitter list and the *true* top-k list
(ordered by descending true frequency) and return a value in [0, 1], larger
being better.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence


def precision_recall(
    estimated: Sequence[Hashable], truth: Sequence[Hashable]
) -> tuple[float, float]:
    """Precision and recall of ``estimated`` against ``truth`` as sets.

    Duplicates in either list are ignored (heavy-hitter lists are sets by
    construction).  An empty estimate has precision and recall 0 by
    convention (unless the truth is also empty, in which case both are 1).
    """
    est_set = set(estimated)
    truth_set = set(truth)
    if not truth_set and not est_set:
        return 1.0, 1.0
    if not est_set or not truth_set:
        return 0.0, 0.0
    hits = len(est_set & truth_set)
    return hits / len(est_set), hits / len(truth_set)


def f1_score(estimated: Sequence[Hashable], truth: Sequence[Hashable]) -> float:
    """F1 = 2pr / (p + r) of the estimated heavy hitters vs. the true top-k."""
    p, r = precision_recall(estimated, truth)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def ncr_score(estimated: Sequence[Hashable], truth_ranked: Sequence[Hashable]) -> float:
    """Normalised Cumulative Rank (Wang et al. 2019, used in Section 7.1).

    The quality of a true top-k value ``v`` is ``q(v) = k - rank(v)`` where
    ``rank(v)`` is its 0-based position in the descending ground-truth order
    (so the most frequent value is worth ``k``, the least worth ``1``).
    Estimated values outside the true top-k are worth 0.  The score is the
    total quality captured by the estimate divided by the maximum possible.

    Parameters
    ----------
    estimated:
        Estimated heavy hitters (order irrelevant).
    truth_ranked:
        True top-k values sorted by descending true frequency.
    """
    k = len(truth_ranked)
    if k == 0:
        return 1.0 if not estimated else 0.0
    quality: Mapping[Hashable, int] = {
        value: k - rank for rank, value in enumerate(truth_ranked)
    }
    max_quality = sum(quality.values())
    if max_quality == 0:
        return 0.0
    captured = sum(quality.get(value, 0) for value in set(estimated))
    return captured / max_quality


def average_local_recall(
    local_results: Mapping[str, Sequence[Hashable]], truth: Sequence[Hashable]
) -> float:
    """Average, over parties, of the recall of the global truth among local results.

    This is the statistical-heterogeneity metric of Table 7: how many of the
    global ground-truth heavy hitters does each party manage to surface as
    *local* heavy hitters, averaged across parties.
    """
    if not local_results:
        return 0.0
    truth_set = set(truth)
    if not truth_set:
        return 1.0
    recalls = []
    for _, local in local_results.items():
        hits = len(set(local) & truth_set)
        recalls.append(hits / len(truth_set))
    return float(sum(recalls) / len(recalls))
