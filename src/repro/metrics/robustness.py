"""Robustness metrics for continual tracking over a moving ground truth.

The batch metrics (:mod:`repro.metrics.scores`) grade one estimate against
one frozen truth.  Continual discovery produces a *sequence* of estimates
against a truth that moves; these helpers grade the sequence:

* :func:`score_series` — time-resolved precision/recall/F1, one record per
  snapshot, each scored against the truth *at that snapshot's step*;
* :func:`detection_latency` — how many arrival steps after a drift event
  the tracker's recall first recovers past a threshold.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.metrics.scores import f1_score, precision_recall


def score_series(
    estimates: Iterable[tuple[int, Sequence[Hashable]]],
    truth_by_step: dict[int, Sequence[Hashable]],
) -> list[dict]:
    """Time-resolved scores of an estimate sequence vs a moving truth.

    Parameters
    ----------
    estimates:
        ``(step, estimated_heavy_hitters)`` pairs, e.g. snapshot steps.
    truth_by_step:
        Step → true top-k at that step (a scenario's moving ground truth).

    Returns
    -------
    One ``{"step", "precision", "recall", "f1"}`` record per estimate,
    in input order.  A step with no recorded truth raises ``KeyError`` —
    silently scoring against a stale truth would fake robustness.
    """
    records = []
    for step, estimated in estimates:
        truth = truth_by_step[step]
        precision, recall = precision_recall(estimated, truth)
        records.append(
            {
                "step": int(step),
                "precision": precision,
                "recall": recall,
                "f1": f1_score(estimated, truth),
            }
        )
    return records


def detection_latency(
    event_step: int,
    scored_steps: Iterable[tuple[int, float]],
    *,
    threshold: float = 0.5,
) -> int | None:
    """Arrival steps from a drift event until tracking recovers.

    Parameters
    ----------
    event_step:
        The step at which the ground truth changed.
    scored_steps:
        ``(step, score)`` pairs in increasing step order — typically each
        snapshot's recall against the truth at its own step.
    threshold:
        Recovery bar: the first step at or after ``event_step`` whose
        score reaches it counts as detection.

    Returns
    -------
    ``step - event_step`` of the detecting snapshot, or ``None`` if the
    tracker never recovered within the scored sequence.
    """
    for step, score in scored_steps:
        if step >= event_step and score >= threshold:
            return int(step - event_step)
    return None
