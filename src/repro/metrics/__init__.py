"""Utility metrics used in the paper's evaluation (Section 7.1).

* :func:`f1_score` — harmonic mean of precision and recall of the estimated
  top-k set against the true top-k set,
* :func:`ncr_score` — Normalised Cumulative Rank, which penalises missing
  the most frequent values more heavily,
* :func:`average_local_recall` — average per-party recall of the global
  ground truths among locally identified heavy hitters (Table 7's
  statistical-heterogeneity metric).

Robustness metrics for continual tracking over a *moving* truth
(:mod:`repro.metrics.robustness`, used by the scenario lab):

* :func:`score_series` — time-resolved precision/recall/F1 of an estimate
  sequence,
* :func:`detection_latency` — arrival steps from a drift event until the
  tracker's recall recovers past a threshold.
"""

from repro.metrics.robustness import detection_latency, score_series
from repro.metrics.scores import (
    f1_score,
    ncr_score,
    precision_recall,
    average_local_recall,
)

__all__ = [
    "f1_score",
    "ncr_score",
    "precision_recall",
    "average_local_recall",
    "detection_latency",
    "score_series",
]
