"""Exact (non-private) ground-truth helpers for evaluation.

These functions compute the quantities the paper's metrics compare against:
the federated top-k (Definition 4.1), per-party local top-k lists, and exact
prefix frequencies at arbitrary trie levels (useful for debugging how much
of the error comes from LDP noise vs. from pruning decisions).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import FederatedDataset
from repro.encoding.prefix import prefixes_of_items


def federated_top_k(dataset: FederatedDataset, k: int) -> list[int]:
    """The exact federated top-k heavy hitters (delegates to the dataset)."""
    return dataset.true_top_k(k)


def party_local_top_k(dataset: FederatedDataset, k: int) -> dict[str, list[int]]:
    """Exact per-party local top-k items."""
    return {party.name: party.local_top_k(k) for party in dataset.parties}


def exact_prefix_frequencies(
    items: np.ndarray, n_bits: int, prefix_length: int
) -> dict[str, float]:
    """Exact frequencies of all length-``prefix_length`` prefixes of ``items``."""
    items = np.asarray(items, dtype=np.int64)
    if items.size == 0:
        return {}
    prefixes = prefixes_of_items(items, n_bits, prefix_length)
    counts: dict[str, int] = {}
    for prefix in prefixes:
        counts[prefix] = counts.get(prefix, 0) + 1
    total = items.size
    return {prefix: count / total for prefix, count in counts.items()}


def global_prefix_frequencies(
    dataset: FederatedDataset, prefix_length: int
) -> dict[str, float]:
    """Exact global frequencies of all prefixes at ``prefix_length``."""
    all_items = np.concatenate([party.items for party in dataset.parties])
    return exact_prefix_frequencies(all_items, dataset.n_bits, prefix_length)


def true_top_prefixes(
    dataset: FederatedDataset, prefix_length: int, k: int
) -> list[str]:
    """The exact top-k prefixes at a given length (ties broken lexicographically)."""
    freqs = global_prefix_frequencies(dataset, prefix_length)
    ranked = sorted(freqs.items(), key=lambda kv: (-kv[1], kv[0]))
    return [prefix for prefix, _ in ranked[:k]]
