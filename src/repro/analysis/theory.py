"""Theoretical utility results (Theorem 5.2 and FO variance curves).

Theorem 5.2 bounds the probability that the adaptive extension strategy is
useless — i.e. that it picks the *same* constant extension number at every
one of the ``g`` iterations.  The bound is

``Pr[A] <= (P_x)^g`` with ``P_x = Pr[Φ(−δ_f / (2σ)) > 2√π / (3k + 1)]``,

where ``δ_f`` is the largest gap between neighbouring frequencies among the
tail of the top ``2k`` prefixes and ``σ`` the FO's standard deviation.  With
the observed frequency gaps treated as fixed, ``P_x`` is the indicator of
that inequality, so the bound decays geometrically in ``g`` whenever the
inequality fails and is vacuous (1.0) otherwise — the module exposes both
the indicator form and the raw Gaussian tail value so callers can study the
regime boundary.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

from repro.utils.validation import check_positive


def constant_extension_probability(delta_f: float, sigma: float, k: int) -> float:
    """The per-iteration quantity ``P_x`` of Theorem 5.2.

    Returns 1.0 when ``Φ(−δ_f / (2σ)) > 2√π / (3k + 1)`` and 0.0 otherwise
    (the frequencies/σ are observed constants, so the inner event is
    deterministic).  A ``σ <= 0`` (noise-free) FO gives 0.0 whenever
    ``δ_f > 0``.
    """
    check_positive("k", k)
    if delta_f < 0:
        raise ValueError(f"delta_f must be >= 0, got {delta_f}")
    threshold = 2.0 * math.sqrt(math.pi) / (3.0 * k + 1.0)
    if sigma <= 0:
        tail = 0.5 if delta_f == 0 else 0.0
    else:
        tail = float(norm.cdf(-delta_f / (2.0 * sigma)))
    return 1.0 if tail > threshold else 0.0


def gaussian_tail(delta_f: float, sigma: float) -> float:
    """``Φ(−δ_f / (2σ))`` — the raw Gaussian tail used inside Theorem 5.2."""
    if sigma <= 0:
        return 0.5 if delta_f == 0 else 0.0
    return float(norm.cdf(-delta_f / (2.0 * sigma)))


def adaptive_extension_failure_bound(
    delta_f: float, sigma: float, k: int, granularity: int
) -> float:
    """Theorem 5.2: ``Pr[A] <= (P_x)^g`` over ``g`` iterations."""
    check_positive("granularity", granularity)
    p_x = constant_extension_probability(delta_f, sigma, k)
    return float(p_x**granularity)


def oracle_variance_curve(
    oracle_name: str,
    epsilon_values: np.ndarray,
    n_users: int,
    domain_size: int,
) -> np.ndarray:
    """Frequency-estimate variance of an FO across privacy budgets.

    Used to visualise the premise of Theorem 5.2 (smaller σ ⇒ smaller
    failure probability) and by the Figure 6 discussion of FO choice.
    """
    from repro.ldp.registry import make_oracle

    check_positive("n_users", n_users)
    check_positive("domain_size", domain_size)
    epsilon_values = np.asarray(epsilon_values, dtype=np.float64)
    if epsilon_values.size == 0:
        return np.zeros(0)
    variances = []
    for eps in epsilon_values:
        oracle = make_oracle(oracle_name, float(eps))
        variances.append(oracle.variance(n_users, domain_size))
    return np.asarray(variances, dtype=np.float64)
