"""Communication/computation cost formulas of Table 1.

The paper compares five strategies by the asymptotic size of what reaches
the central server and by how much work the server performs:

==========  ==========================  =====================
strategy    communication               computation
==========  ==========================  =====================
GTF         O(b · k · |P|)              O(k · |P|)
FedPEM      O(b · k · |P|)              O(k · |P|)
OUE         O(|U| · |X|)                O(|U| · |X|)
OLH         O(b · |U|)                  O(|U| · |X|)
TAPS        O(b · k · |P| · g*)         O(k · |P|)
==========  ==========================  =====================

``b`` is the wire cost of one (item, count) pair, ``|P|`` the number of
parties, ``|U|`` the user population, ``|X|`` the item-domain size and
``g*`` the number of levels at which TAPS applies the pruning strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.tables import TextTable
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MechanismCosts:
    """Numeric evaluation of one row of Table 1."""

    mechanism: str
    communication_bits: float
    computation_ops: float
    communication_formula: str
    computation_formula: str


@dataclass(frozen=True)
class CostModel:
    """Parameters of the cost comparison.

    Attributes
    ----------
    pair_bits:
        ``b`` — bits per (item/prefix, count) pair.
    k:
        Heavy-hitter query size.
    n_parties:
        ``|P|``.
    n_users:
        ``|U|`` — total user population.
    domain_size:
        ``|X|`` — global item-domain size.
    pruning_levels:
        ``g*`` — number of levels at which TAPS exchanges pruning candidates
        (the paper notes ``g* ≈ g/2`` is typical).
    olh_report_bits:
        Bits per OLH report (hash seed + bucket index).
    """

    pair_bits: int = 64
    k: int = 10
    n_parties: int = 2
    n_users: int = 1_000_000
    domain_size: int = 1_000_000
    pruning_levels: int = 6
    olh_report_bits: int = 72

    def __post_init__(self) -> None:
        for name in ("pair_bits", "k", "n_parties", "n_users", "domain_size", "pruning_levels"):
            check_positive(name, getattr(self, name))

    # ------------------------------------------------------------------ #
    # Per-mechanism rows
    # ------------------------------------------------------------------ #
    def gtf(self) -> MechanismCosts:
        return MechanismCosts(
            mechanism="GTF",
            communication_bits=self.pair_bits * self.k * self.n_parties,
            computation_ops=self.k * self.n_parties,
            communication_formula="O(b·k·|P|)",
            computation_formula="O(k·|P|)",
        )

    def fedpem(self) -> MechanismCosts:
        return MechanismCosts(
            mechanism="FedPEM",
            communication_bits=self.pair_bits * self.k * self.n_parties,
            computation_ops=self.k * self.n_parties,
            communication_formula="O(b·k·|P|)",
            computation_formula="O(k·|P|)",
        )

    def oue(self) -> MechanismCosts:
        return MechanismCosts(
            mechanism="OUE",
            communication_bits=float(self.n_users) * float(self.domain_size),
            computation_ops=float(self.n_users) * float(self.domain_size),
            communication_formula="O(|U|·|X|)",
            computation_formula="O(|U|·|X|)",
        )

    def olh(self) -> MechanismCosts:
        return MechanismCosts(
            mechanism="OLH",
            communication_bits=float(self.olh_report_bits) * float(self.n_users),
            computation_ops=float(self.n_users) * float(self.domain_size),
            communication_formula="O(b·|U|)",
            computation_formula="O(|U|·|X|)",
        )

    def taps(self) -> MechanismCosts:
        return MechanismCosts(
            mechanism="TAPS",
            communication_bits=self.pair_bits * self.k * self.n_parties * self.pruning_levels,
            computation_ops=self.k * self.n_parties,
            communication_formula="O(b·k·|P|·g*)",
            computation_formula="O(k·|P|)",
        )

    def all_rows(self) -> list[MechanismCosts]:
        """Every Table 1 row, in the paper's column order."""
        return [self.gtf(), self.fedpem(), self.oue(), self.olh(), self.taps()]


def table1_costs(model: CostModel | None = None) -> TextTable:
    """Render Table 1 (formulas plus numeric evaluation for the given model)."""
    model = model or CostModel()
    table = TextTable(
        ["mechanism", "communication", "computation", "comm (bits)", "compute (ops)"],
        float_format="{:.3e}",
    )
    for row in model.all_rows():
        table.add_row(
            [
                row.mechanism,
                row.communication_formula,
                row.computation_formula,
                float(row.communication_bits),
                float(row.computation_ops),
            ]
        )
    return table
