"""Analytic results from the paper: cost formulas and utility bounds.

* :mod:`repro.analysis.costs` — the asymptotic communication/computation
  cost formulas of Table 1, evaluated symbolically and numerically.
* :mod:`repro.analysis.theory` — the Theorem 5.2 upper bound on the
  probability that the adaptive extension degenerates to a constant, and
  the FO variance curves used in its premise.
"""

from repro.analysis.costs import CostModel, MechanismCosts, table1_costs
from repro.analysis.theory import (
    adaptive_extension_failure_bound,
    constant_extension_probability,
    oracle_variance_curve,
)

__all__ = [
    "CostModel",
    "MechanismCosts",
    "table1_costs",
    "adaptive_extension_failure_bound",
    "constant_extension_probability",
    "oracle_variance_curve",
]
