"""Robust shard aggregation: trimmed / norm-bounded merges of batch counts.

The aggregation service sums per-batch support counts — a linear merge a
single colluding coalition can dominate by concentrating its reports on a
target candidate.  :class:`RobustMergePolicy` replaces the plain sum with
one of the classic Byzantine-tolerant estimators over the round's *wire
batches* (each batch is one aggregation source):

* ``trimmed`` — per candidate, drop the sources with the highest and
  lowest support **rates** (count / batch size) before summing, the
  coordinate-wise trimmed mean rescaled back to the full population.
  An f-tolerant merge in the approximate-agreement sense: any coalition
  confined to at most a ``fraction`` of the sources is removed entirely.
* ``norm_bound`` — cap every source's per-candidate support rate at the
  coordinate-wise median rate across sources, scaled by ``1 +
  fraction`` — contributions consistent with the honest majority pass
  untouched, outliers are clipped to it.

Both are deterministic pure-numpy transforms of the ``(counts, n_users)``
pairs the shard already stores, so a defended merge is exactly
reproducible; and both return **integer** counts (floor), so the defended
path stays inside the exact int64 algebra the service accounts.

Deliberately import-light: the service shard layer consumes the policy
duck-typed (``repro.service.shards`` must not import the faults package —
the proxy half imports the net stack, which imports the service).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping, Sequence

import numpy as np

from repro.utils.validation import check_known_keys, check_positive, check_probability

#: Robust merge estimators a policy can name.
DEFENSE_KINDS: tuple[str, ...] = ("trimmed", "norm_bound")


@dataclass(frozen=True)
class RobustMergePolicy:
    """How a shard turns its per-batch counts into round counts.

    Parameters
    ----------
    kind:
        ``"trimmed"`` or ``"norm_bound"`` (see module docstring).
    fraction:
        Assumed corrupt fraction of sources: the trim share per tail, or
        the clipping headroom over the median rate.
    min_sources:
        Below this many sources the policy falls back to the plain sum —
        trimming two of three batches is not a defense, it is noise.
    """

    kind: str = "trimmed"
    fraction: float = 0.25
    min_sources: int = 4

    _FIELDS: ClassVar[tuple[str, ...]] = ("kind", "fraction", "min_sources")

    def __post_init__(self) -> None:
        if self.kind not in DEFENSE_KINDS:
            raise ValueError(
                f"unknown defense kind {self.kind!r}; available: {sorted(DEFENSE_KINDS)}"
            )
        check_probability("fraction", self.fraction)
        if self.fraction == 0.0:
            raise ValueError("fraction must be > 0 (a zero-trim defense is the plain sum)")
        if self.fraction >= 0.5:
            raise ValueError(
                f"fraction must be < 0.5 (cannot trim a majority), got {self.fraction}"
            )
        check_positive("min_sources", self.min_sources)

    # ------------------------------------------------------------------ #
    # The robust aggregation itself
    # ------------------------------------------------------------------ #
    def apply(
        self,
        batch_counts: Sequence[np.ndarray],
        batch_users: Sequence[int],
        domain_size: int,
    ) -> np.ndarray:
        """Robustly merge per-source support counts into int64 round counts.

        ``batch_counts[i]`` are source ``i``'s exact support counts over
        ``domain_size`` candidates; ``batch_users[i]`` its report count.
        Deterministic, and exactly the plain sum when there are fewer
        than ``min_sources`` sources or every source is empty.
        """
        if len(batch_counts) != len(batch_users):
            raise ValueError(
                f"{len(batch_counts)} count vectors vs {len(batch_users)} sizes"
            )
        if not batch_counts:
            return np.zeros(int(domain_size), dtype=np.int64)
        counts = np.vstack([np.asarray(c, dtype=np.int64) for c in batch_counts])
        users = np.asarray(batch_users, dtype=np.int64)
        if counts.shape[1] != int(domain_size):
            raise ValueError(
                f"count vectors have {counts.shape[1]} candidates, expected {domain_size}"
            )
        total_users = int(users.sum())
        plain = counts.sum(axis=0, dtype=np.int64)
        live = users > 0
        if int(live.sum()) < self.min_sources or total_users == 0:
            return plain
        rates = counts[live].astype(np.float64) / users[live, None].astype(np.float64)
        if self.kind == "trimmed":
            merged_rates = self._trimmed(rates)
        else:
            merged_rates = self._norm_bound(rates)
        # Rescale the robust mean rate back to the full population and
        # floor to stay in the integer algebra downstream estimation
        # expects.  (A defense is opt-in precisely because this departs
        # from the exact-sum bit-identity contract of the default path.)
        return np.floor(merged_rates * total_users).astype(np.int64)

    def _trimmed(self, rates: np.ndarray) -> np.ndarray:
        n_sources = rates.shape[0]
        n_trim = int(np.ceil(self.fraction * n_sources))
        n_trim = min(n_trim, (n_sources - 1) // 2)
        if n_trim == 0:
            return rates.mean(axis=0)
        ordered = np.sort(rates, axis=0)
        return ordered[n_trim : n_sources - n_trim].mean(axis=0)

    def _norm_bound(self, rates: np.ndarray) -> np.ndarray:
        bound = np.median(rates, axis=0) * (1.0 + self.fraction)
        return np.minimum(rates, bound[None, :]).mean(axis=0)

    # ------------------------------------------------------------------ #
    # Document round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, source: str = "<defense>"
    ) -> "RobustMergePolicy":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"{source}: a defense policy must be a mapping, got {type(data).__name__}"
            )
        check_known_keys(data, cls._FIELDS, where="defense", source=source)
        return cls(**dict(data))
