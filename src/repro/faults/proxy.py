"""Frame-aware chaos proxy applying a fault profile to a live byte stream.

:class:`FaultProxy` listens on an ephemeral port and forwards each accepted
connection to a single upstream target (a gateway or cluster shard),
re-framing the stream at the wire protocol's 5-byte headers so faults land
on whole frames: the proxy never corrupts a length prefix, because a
desynchronised stream is indistinguishable from arbitrary garbage and
therefore untestable — truncation and disconnects model torn streams
instead, explicitly.

All decisions come from the profile's deterministic schedule
(:meth:`repro.faults.profile.FaultProfile.decide`); the proxy's only state
is the per-layer ``max_faults`` budget and the fault counters it exposes
for assertions.  Layers apply in chain order with the first *terminal*
action winning (``disconnect`` > ``drop`` > ``truncate``); non-terminal
actions (corrupt, duplicate, reorder, straggle, delay, slow-loris)
accumulate across layers.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Iterable

from repro.faults.profile import FaultChain, FaultProfile, as_chain
from repro.net import framing
from repro.obs.registry import MetricsRegistry

__all__ = ["FaultProxy", "parse_proxy_target"]

#: Forwarding outcomes of one frame (module-private sentinels).
_FORWARDED = "forwarded"
_DROPPED = "dropped"
_CLOSED = "closed"

#: Chunk cadence for slow-loris writes.
_LORIS_TICK_S = 0.02


def parse_proxy_target(target) -> tuple[str, int]:
    """Normalise a ``"host:port"`` string or ``(host, port)`` pair."""
    if isinstance(target, str):
        host, sep, port = target.rpartition(":")
        if not sep or not host:
            raise ValueError(f"proxy target must look like 'host:port', got {target!r}")
        return host, int(port)
    host, port = target
    return str(host), int(port)


class _Budget:
    """A layer's remaining fault allowance, shared across pump threads."""

    def __init__(self, max_faults: int | None) -> None:
        self._remaining = max_faults
        self._lock = threading.Lock()

    def take(self) -> bool:
        if self._remaining is None:
            return True
        with self._lock:
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            return True


class FaultProxy:
    """A TCP proxy in front of ``target`` injecting ``profile``'s faults.

    Accepting starts immediately; connect clients to :attr:`address`.
    ``counters`` tallies injected fault events by action and
    :attr:`n_faults` sums them — a chaos test asserting "the fault really
    happened" reads these rather than inferring from symptoms.
    """

    def __init__(
        self,
        target,
        profile: FaultProfile | FaultChain,
        *,
        host: str = "127.0.0.1",
        max_frame_bytes: int = framing.DEFAULT_MAX_FRAME_BYTES,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        self.target = parse_proxy_target(target)
        self.chain = as_chain(profile)
        self.max_frame_bytes = int(max_frame_bytes)
        self._budgets = [_Budget(layer.max_faults) for layer in self.chain.layers]
        self._needs_ops = any(layer.ops is not None for layer in self.chain.layers)
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}
        #: Fault actions double as ``fault_actions_total{action=...}`` on
        #: this registry, so a scrape sees injected chaos next to the
        #: gateway counters it perturbed.
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self._closed = threading.Event()
        self._conn_sockets: set[socket.socket] = set()
        self._next_connection = 0
        self._listener = socket.create_server((host, 0))
        self._listener.settimeout(0.2)
        self._host = host
        self._port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"fault-proxy-{self._port}", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        return f"{self._host}:{self._port}"

    @property
    def n_faults(self) -> int:
        with self._lock:
            return sum(self.counters.values())

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            sockets = list(self._conn_sockets)
        for sock in sockets:
            _quiet_close(sock)
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "FaultProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Accept / pump loops
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.target, timeout=10.0)
            except OSError:
                _quiet_close(client)
                continue
            upstream.settimeout(None)
            client.settimeout(None)
            with self._lock:
                connection = self._next_connection
                self._next_connection += 1
                self._conn_sockets.update((client, upstream))
            for src, dst, direction in (
                (client, upstream, "up"),
                (upstream, client, "down"),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(src, dst, connection, direction),
                    name=f"fault-pump-{connection}-{direction}",
                    daemon=True,
                ).start()

    def _pump(
        self, src: socket.socket, dst: socket.socket, connection: int, direction: str
    ) -> None:
        frame = 0
        held: bytes | None = None
        try:
            while not self._closed.is_set():
                header = _read_exact(src, framing.FRAME_HEADER_SIZE)
                if header is None:
                    break
                length, raw_kind = framing.parse_frame_header(header)
                kind, has_trace = framing.split_frame_kind(raw_kind)
                framing.check_frame_header(
                    length, kind, max_frame_bytes=self.max_frame_bytes
                )
                if has_trace:
                    # The trace extension is transport, like the header
                    # itself: it rides in front of the body, untouched by
                    # faults (corrupt/truncate address body bytes only).
                    trace = _read_exact(src, framing.TRACE_CONTEXT_SIZE)
                    if trace is None:
                        break
                    header = header + trace
                body = _read_exact(src, length)
                if body is None:
                    break
                outcome, held = self._relay(
                    connection, frame, direction, kind, header, body, dst, held
                )
                frame += 1
                if outcome == _CLOSED:
                    return
            if held is not None:
                _send_all(dst, held)
        except (OSError, framing.FrameError):
            pass
        finally:
            _quiet_close(src)
            _quiet_close(dst)

    # ------------------------------------------------------------------ #
    # Per-frame fault application
    # ------------------------------------------------------------------ #
    def _relay(
        self,
        connection: int,
        frame: int,
        direction: str,
        kind: int,
        header: bytes,
        body: bytes,
        dst: socket.socket,
        held: bytes | None,
    ) -> tuple[str, bytes | None]:
        op = self._control_op(kind, body) if self._needs_ops else None
        duplicate = False
        reorder = False
        straggle_s = 0.0
        delay_s = 0.0
        loris_rate: int | None = None
        mutable: bytearray | None = None
        for layer, budget in zip(self.chain.layers, self._budgets):
            if not layer.applies(direction=direction, kind=kind, op=op):
                continue
            delay_s += layer.delay_ms / 1000.0
            if layer.bytes_per_sec is not None:
                loris_rate = (
                    layer.bytes_per_sec
                    if loris_rate is None
                    else min(loris_rate, layer.bytes_per_sec)
                )
            decision = layer.decide(connection, frame, direction)
            if not decision.any_fault:
                continue
            if decision.disconnect and budget.take():
                self._count("disconnect")
                if held is not None:
                    _send_all(dst, held)
                return _CLOSED, None
            if decision.drop and budget.take():
                self._count("drop")
                return _DROPPED, held
            if decision.truncate and budget.take():
                self._count("truncate")
                kept = int(decision.truncate_unit * len(body))
                _send_all(dst, header + bytes(body[:kept]))
                return _CLOSED, None
            if decision.corrupt and budget.take():
                self._count("corrupt")
                if mutable is None:
                    mutable = bytearray(body)
                span = len(mutable)
                if layer.corrupt_window is not None:
                    span = min(span, layer.corrupt_window)
                if span > 0:
                    at = min(int(decision.corrupt_unit * span), span - 1)
                    mutable[at] ^= decision.corrupt_xor
            if decision.duplicate and budget.take():
                self._count("duplicate")
                duplicate = True
            if decision.reorder and budget.take():
                self._count("reorder")
                reorder = True
            if decision.straggle and budget.take():
                self._count("straggle")
                straggle_s = max(straggle_s, layer.straggle_ms / 1000.0)
        wire = header + (bytes(mutable) if mutable is not None else body)
        total_delay = delay_s + straggle_s
        if total_delay > 0.0:
            self._sleep(total_delay)
        if reorder and held is None:
            # Hold this frame; it goes out after the next one (or at EOF).
            return _FORWARDED, wire
        self._write(dst, wire, loris_rate)
        if duplicate:
            self._write(dst, wire, loris_rate)
        if held is not None:
            _send_all(dst, held)
            held = None
        return _FORWARDED, held

    def _write(self, dst: socket.socket, data: bytes, loris_rate: int | None) -> None:
        if loris_rate is None:
            _send_all(dst, data)
            return
        chunk = max(1, int(loris_rate * _LORIS_TICK_S))
        for start in range(0, len(data), chunk):
            _send_all(dst, data[start : start + chunk])
            self._sleep(_LORIS_TICK_S)

    def _sleep(self, seconds: float) -> None:
        # Wait on the shutdown event so close() never blocks on a straggler.
        self._closed.wait(seconds)

    def _control_op(self, kind: int, body: bytes) -> str | None:
        if kind != framing.FRAME_ROUND_CONTROL:
            return None
        try:
            message = framing.decode_control(body)
        except framing.WireFormatError:
            return None
        op = message.get("op")
        return op if isinstance(op, str) else None

    def _count(self, action: str) -> None:
        with self._lock:
            self.counters[action] = self.counters.get(action, 0) + 1
        self.telemetry.counter("fault_actions_total", action=action).inc()


# ---------------------------------------------------------------------- #
# Socket plumbing
# ---------------------------------------------------------------------- #
def _read_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or ``None`` on a clean/torn EOF."""
    if n == 0:
        return b""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 16))
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_all(sock: socket.socket, data: bytes) -> None:
    try:
        sock.sendall(data)
    except OSError:
        pass


def _quiet_close(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
