"""Declarative, seed-deterministic fault profiles for the chaos proxy.

A :class:`FaultProfile` describes *which* transport faults hit *which*
frames — drops, duplicates, reorders, byte corruption, truncation,
mid-round disconnects, latency injection with stragglers, and slow-loris
trickle writes — as a pure function of ``(seed, connection, frame,
direction)``.  Nothing here touches a socket: the profile only *decides*
(:meth:`FaultProfile.decide`), and :class:`repro.faults.proxy.FaultProxy`
applies the decisions to a live byte stream.

Two properties make fault runs testable rather than merely destructive:

* **Seed determinism** — every decision comes from a keyed blake2b hash of
  the profile seed and the frame coordinates, so the same profile replays
  the same fault schedule frame for frame (``tests/test_faults_profile.py``
  pins this with hypothesis).
* **Exact composition** — profiles compose into a :class:`FaultChain`
  whose layers apply in order; :func:`compose` flattens nested chains, so
  composition is associative *as data*: ``compose(a, compose(b, c)) ==
  compose(compose(a, b), c)``, and therefore schedules compose
  associatively too.

``max_faults`` bounds how many fault events a profile may inject per proxy
lifetime, which is what lets the chaos matrix assert *bit-identical after
retry*: once the budget is spent the stream is clean, so a deterministic
client replay converges.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, ClassVar, Mapping

from repro.utils.validation import check_known_keys, check_positive, check_probability


class FaultSpecError(ValueError):
    """A fault profile description is malformed; the message names why."""


#: Frame directions a profile can restrict itself to.
DIRECTIONS: tuple[str, ...] = ("up", "down", "both")

#: The fault actions a profile schedules (order = application order).
FAULT_ACTIONS: tuple[str, ...] = (
    "disconnect",
    "drop",
    "truncate",
    "corrupt",
    "duplicate",
    "reorder",
    "straggle",
)


def _unit(seed: int, connection: int, frame: int, direction: str, action: str) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one (frame, action) cell.

    A keyed hash, not an RNG stream: decisions for frame ``t`` never depend
    on how many earlier frames were inspected, so the schedule is stable
    under retries, reconnects, and chain re-ordering of *other* actions.
    """
    key = f"{seed}:{connection}:{frame}:{direction}:{action}".encode("utf-8")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class FrameDecision:
    """What a profile wants done to one frame (before any budget check)."""

    drop: bool = False
    duplicate: bool = False
    reorder: bool = False
    corrupt: bool = False
    truncate: bool = False
    disconnect: bool = False
    straggle: bool = False
    #: Position of the corrupted byte as a fraction of the eligible span.
    corrupt_unit: float = 0.0
    #: XOR mask applied to the corrupted byte (never 0: always a real flip).
    corrupt_xor: int = 1
    #: Fraction of the body retained when truncating.
    truncate_unit: float = 0.0

    @property
    def any_fault(self) -> bool:
        return (
            self.drop
            or self.duplicate
            or self.reorder
            or self.corrupt
            or self.truncate
            or self.disconnect
            or self.straggle
        )


@dataclass(frozen=True)
class FaultProfile:
    """One declarative fault layer.

    Parameters
    ----------
    seed:
        Root of the deterministic fault schedule.
    direction:
        Which half of the duplex stream the layer touches: ``"up"``
        (client → gateway), ``"down"`` (gateway → client) or ``"both"``.
    drop / duplicate / reorder / corrupt / truncate / disconnect / straggle:
        Per-frame probabilities of each fault action.  ``corrupt`` flips
        one body byte (never the frame header — a corrupted length prefix
        would desynchronise the stream, which is a different fault:
        ``truncate``).  ``truncate`` forwards a partial body and closes
        the connection.  ``disconnect`` closes mid-stream without
        forwarding.  ``straggle`` sleeps ``straggle_ms`` before
        forwarding — the straggler model.
    delay_ms:
        Constant per-frame forwarding delay (plain latency injection;
        not counted against ``max_faults`` because it cannot change
        results, only timings).
    straggle_ms:
        Extra delay when a straggle event fires.
    bytes_per_sec:
        Slow-loris mode: forward matching frames in small chunks at this
        byte rate instead of one write.
    corrupt_window:
        Restrict the corrupted byte to the first ``corrupt_window`` body
        bytes (``None``: anywhere in the body).  Useful to target frame
        *routing* fields, whose corruption is always protocol-visible.
    kinds:
        Frame kinds the layer applies to (``None``: all).
    ops:
        For control frames only: restrict to these control ``op`` values
        (e.g. ``("batch_ack",)``).  Non-control frames don't match when
        ``ops`` is set unless their kind is also listed in ``kinds``.
    max_faults:
        Budget of fault events this layer may inject per proxy lifetime
        (``None``: unbounded).  Spent budgets make retried runs converge.
    """

    name: str = "faults"
    seed: int = 0
    direction: str = "both"
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    truncate: float = 0.0
    disconnect: float = 0.0
    straggle: float = 0.0
    delay_ms: float = 0.0
    straggle_ms: float = 1000.0
    bytes_per_sec: int | None = None
    corrupt_window: int | None = None
    kinds: tuple[int, ...] | None = None
    ops: tuple[str, ...] | None = None
    max_faults: int | None = None

    _PROBABILITIES: ClassVar[tuple[str, ...]] = (
        "drop",
        "duplicate",
        "reorder",
        "corrupt",
        "truncate",
        "disconnect",
        "straggle",
    )

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise FaultSpecError("profile name must be a non-empty string")
        if self.direction not in DIRECTIONS:
            raise FaultSpecError(
                f"unknown direction {self.direction!r}; available: {sorted(DIRECTIONS)}"
            )
        for field_name in self._PROBABILITIES:
            check_probability(field_name, getattr(self, field_name))
        check_positive("delay_ms", self.delay_ms, strict=False)
        check_positive("straggle_ms", self.straggle_ms, strict=False)
        if self.bytes_per_sec is not None:
            check_positive("bytes_per_sec", self.bytes_per_sec)
        if self.corrupt_window is not None:
            check_positive("corrupt_window", self.corrupt_window)
        if self.kinds is not None:
            if not self.kinds:
                raise FaultSpecError("kinds must be a non-empty list of frame kinds")
            for kind in self.kinds:
                if not isinstance(kind, int) or isinstance(kind, bool) or kind < 1:
                    raise FaultSpecError(f"frame kinds must be positive ints, got {kind!r}")
        if self.ops is not None:
            if not self.ops or any(not isinstance(op, str) or not op for op in self.ops):
                raise FaultSpecError("ops must be a non-empty list of control op names")
        if self.max_faults is not None:
            check_positive("max_faults", self.max_faults, strict=False)

    # ------------------------------------------------------------------ #
    # The deterministic schedule
    # ------------------------------------------------------------------ #
    def applies(self, *, direction: str, kind: int | None = None, op: str | None = None) -> bool:
        """Whether this layer touches a frame of ``kind``/``op`` going ``direction``."""
        if self.direction != "both" and direction != self.direction:
            return False
        if self.kinds is not None and (kind is None or int(kind) not in self.kinds):
            return False
        if self.ops is not None and op not in self.ops:
            return False
        return True

    def decide(self, connection: int, frame: int, direction: str) -> FrameDecision:
        """The profile's verdict on frame ``frame`` of ``connection``.

        Pure in its arguments and the profile fields — two equal profiles
        always return equal decisions (the seed-determinism contract).
        """

        def fires(action: str, probability: float) -> bool:
            if probability <= 0.0:
                return False
            return _unit(self.seed, connection, frame, direction, action) < probability

        corrupt = fires("corrupt", self.corrupt)
        truncate = fires("truncate", self.truncate)
        return FrameDecision(
            drop=fires("drop", self.drop),
            duplicate=fires("duplicate", self.duplicate),
            reorder=fires("reorder", self.reorder),
            corrupt=corrupt,
            truncate=truncate,
            disconnect=fires("disconnect", self.disconnect),
            straggle=fires("straggle", self.straggle),
            corrupt_unit=(
                _unit(self.seed, connection, frame, direction, "corrupt_at")
                if corrupt
                else 0.0
            ),
            corrupt_xor=(
                1
                + int(
                    _unit(self.seed, connection, frame, direction, "corrupt_xor") * 255
                )
                if corrupt
                else 1
            ),
            truncate_unit=(
                _unit(self.seed, connection, frame, direction, "truncate_at")
                if truncate
                else 0.0
            ),
        )

    # ------------------------------------------------------------------ #
    # Composition / reseeding
    # ------------------------------------------------------------------ #
    @property
    def layers(self) -> tuple["FaultProfile", ...]:
        """A profile is the one-layer chain of itself (duck-chain view)."""
        return (self,)

    def compose(self, other) -> "FaultChain":
        return compose(self, other)

    def with_seed(self, seed: int) -> "FaultProfile":
        return replace(self, seed=int(seed))

    def shifted(self, offset: int) -> "FaultProfile":
        """The same layer under an offset seed (per-shard decorrelation)."""
        return replace(self, seed=self.seed + int(offset))

    # ------------------------------------------------------------------ #
    # Document round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        out: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, source: str = "<faults>") -> "FaultProfile":
        if not isinstance(data, Mapping):
            raise FaultSpecError(
                f"{source}: a fault profile must be a mapping, got {type(data).__name__}"
            )
        allowed = tuple(f.name for f in dataclasses.fields(cls))
        check_known_keys(
            data, allowed, where="fault profile", source=source, error=FaultSpecError
        )
        kwargs = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in data.items()
        }
        try:
            return cls(**kwargs)
        except FaultSpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise FaultSpecError(f"{source}: invalid fault profile: {exc}") from exc


@dataclass(frozen=True)
class FaultChain:
    """An ordered composition of fault layers.

    The proxy applies layers in order per frame; each layer keeps its own
    seed, filters and ``max_faults`` budget.  Chains are always flat
    (:func:`compose` flattens nested chains), which is what makes
    composition exactly associative.
    """

    layers: tuple[FaultProfile, ...] = ()

    def __post_init__(self) -> None:
        for layer in self.layers:
            if not isinstance(layer, FaultProfile):
                raise FaultSpecError(
                    f"chain layers must be FaultProfile instances, got {layer!r}"
                )

    @property
    def name(self) -> str:
        return "+".join(layer.name for layer in self.layers) or "faults"

    def compose(self, other) -> "FaultChain":
        return compose(self, other)

    def shifted(self, offset: int) -> "FaultChain":
        return FaultChain(tuple(layer.shifted(offset) for layer in self.layers))

    def to_dict(self) -> dict:
        return {"layers": [layer.to_dict() for layer in self.layers]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, source: str = "<faults>") -> "FaultChain":
        if not isinstance(data, Mapping) or "layers" not in data:
            raise FaultSpecError(
                f"{source}: a fault chain must be a mapping with a 'layers' list"
            )
        check_known_keys(
            data, ("layers",), where="fault chain", source=source, error=FaultSpecError
        )
        layers = data["layers"]
        if not isinstance(layers, (list, tuple)):
            raise FaultSpecError(f"{source}: 'layers' must be a list of fault profiles")
        return cls(tuple(FaultProfile.from_dict(layer, source=source) for layer in layers))


def as_chain(profile) -> FaultChain:
    """Normalise a profile or chain into a :class:`FaultChain`."""
    if isinstance(profile, FaultChain):
        return profile
    if isinstance(profile, FaultProfile):
        return FaultChain((profile,))
    raise FaultSpecError(
        f"expected a FaultProfile or FaultChain, got {type(profile).__name__}"
    )


def compose(*profiles) -> FaultChain:
    """Compose profiles/chains left to right into one flat chain.

    Flattening is the associativity proof: any parenthesisation of the
    same layer sequence produces the same tuple, hence equal chains and
    equal schedules.
    """
    layers: list[FaultProfile] = []
    for profile in profiles:
        layers.extend(as_chain(profile).layers)
    return FaultChain(tuple(layers))


def fault_profile_from_dict(data, *, source: str = "<faults>"):
    """Build a profile or chain from its document form.

    Accepts the three shapes a ``faults:`` block may take: a profile
    mapping, a ``{"layers": [...]}`` chain mapping, or a bare list of
    profile mappings (sugar for a chain).
    """
    if isinstance(data, (list, tuple)):
        return FaultChain(
            tuple(FaultProfile.from_dict(layer, source=source) for layer in data)
        )
    if isinstance(data, Mapping) and "layers" in data:
        return FaultChain.from_dict(data, source=source)
    return FaultProfile.from_dict(data, source=source)


def load_fault_profile(path: str | Path):
    """Load a profile or chain from a YAML/JSON file (``--faults FILE``).

    Self-contained parsing (mirroring the spec loader's sniffing rules)
    so the faults package never depends on :mod:`repro.experiments`.
    """
    path = Path(path)
    if not path.exists():
        raise FaultSpecError(f"fault profile file {path} does not exist")
    text = path.read_text(encoding="utf-8")
    fmt = {".json": "json", ".yaml": "yaml", ".yml": "yaml"}.get(path.suffix.lower())
    stripped = text.lstrip()
    if fmt == "json" or (fmt is None and stripped.startswith(("{", "["))):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultSpecError(f"{path}: invalid JSON: {exc}") from exc
    else:
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - PyYAML is in the image
            raise FaultSpecError(
                f"{path}: parsing YAML requires PyYAML, which is not installed; "
                "write the profile as JSON instead"
            ) from exc
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise FaultSpecError(f"{path}: invalid YAML: {exc}") from exc
    return fault_profile_from_dict(data, source=str(path))
