"""Fault & adversary lab: chaos proxy, fault profiles, robust aggregation.

Three seams, one package:

* :mod:`repro.faults.profile` — declarative, seed-deterministic fault
  schedules (:class:`FaultProfile`) that compose associatively into
  :class:`FaultChain` layers.
* :mod:`repro.faults.proxy` — :class:`FaultProxy`, a frame-aware TCP
  proxy that applies a profile between any client and any gateway or
  cluster shard.
* :mod:`repro.faults.defense` — :class:`RobustMergePolicy`, the opt-in
  trimmed / norm-bounded shard merge scored against the adversarial
  client models in :mod:`repro.scenarios.adversaries`.
"""

from repro.faults.defense import DEFENSE_KINDS, RobustMergePolicy
from repro.faults.profile import (
    DIRECTIONS,
    FAULT_ACTIONS,
    FaultChain,
    FaultProfile,
    FaultSpecError,
    FrameDecision,
    as_chain,
    compose,
    fault_profile_from_dict,
    load_fault_profile,
)
from repro.faults.proxy import FaultProxy, parse_proxy_target

__all__ = [
    "DEFENSE_KINDS",
    "DIRECTIONS",
    "FAULT_ACTIONS",
    "FaultChain",
    "FaultProfile",
    "FaultProxy",
    "FaultSpecError",
    "FrameDecision",
    "RobustMergePolicy",
    "as_chain",
    "compose",
    "fault_profile_from_dict",
    "load_fault_profile",
    "parse_proxy_target",
]
