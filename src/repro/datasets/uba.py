"""Synthetic stand-in for the Alibaba user-behaviour (UBA) dataset.

Table 2 splits roughly 6.5 million shopping interactions across six parties
with strongly skewed party sizes and item-domain sizes (162k items for the
largest party, under 5k for the smallest).  The stand-in reproduces the
relative party sizes, a very heavy-tailed item popularity (shopping data has
a handful of blockbuster items) and the property that the small parties see
only a small slice of the item domain.
"""

from __future__ import annotations

from repro.datasets.base import FederatedDataset
from repro.datasets.textlike import (
    PartySpec,
    TextDatasetSpec,
    make_heterogeneous_text_dataset,
)
from repro.utils.rng import RandomState

#: Relative user-population weights from Table 2 (UBA 0 .. UBA 5).
UBA_PARTY_WEIGHTS = {
    "uba_0": 1_476_546,
    "uba_1": 1_263_768,
    "uba_2": 1_246_972,
    "uba_3": 1_117_376,
    "uba_4": 774_626,
    "uba_5": 604_082,
}


def make_uba(
    total_users: int = 42_000,
    n_common_items: int = 200,
    n_specific_items: int = 400,
    n_bits: int = 16,
    rng: RandomState = None,
) -> FederatedDataset:
    """UBA stand-in: 6 parties of shopping interactions.

    Compared to the text corpora, the common pool is more dominant (popular
    products are popular everywhere) and its Zipf law is steeper, which is
    why the paper's F1 scores on UBA are the highest of all datasets.
    """
    total_weight = sum(UBA_PARTY_WEIGHTS.values())
    sizes = {
        name: max(10, int(round(total_users * w / total_weight)))
        for name, w in UBA_PARTY_WEIGHTS.items()
    }
    # Smaller parties see proportionally smaller item domains (Table 2: the
    # last UBA parties have far fewer unique items), modelled by giving them
    # a larger common weight so their specific tail is thinner.
    common_weights = [0.72, 0.72, 0.72, 0.76, 0.8, 0.84]
    party_specs = tuple(
        PartySpec(
            name=name,
            n_users=n,
            zipf_exponent=1.3 + 0.05 * (i % 3),
            zipf_shift=12.0,
            common_weight=common_weights[i % len(common_weights)],
            rank_noise=0.02 + 0.01 * (i % 2),
        )
        for i, (name, n) in enumerate(sizes.items())
    )
    spec = TextDatasetSpec(
        name="uba",
        parties=party_specs,
        n_common_items=n_common_items,
        n_specific_items=n_specific_items,
        n_bits=n_bits,
        common_zipf_exponent=1.4,
        common_zipf_shift=8.0,
        extra_metadata={"table2_weights": dict(UBA_PARTY_WEIGHTS)},
    )
    return make_heterogeneous_text_dataset(spec, rng)
