"""The :class:`FederatedDataset` container and exact ground-truth queries."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.federation.party import Party
from repro.utils.validation import check_non_empty, check_positive


@dataclass
class FederatedDataset:
    """A multi-party dataset: disjoint user populations holding single items.

    Attributes
    ----------
    name:
        Dataset identifier (``"rdb"``, ``"syn"``, ...).
    parties:
        The parties, each with its own user population.
    n_bits:
        Binary width ``m`` used to encode item ids into the prefix tree.
    metadata:
        Generator parameters (useful for provenance in experiment output).
    """

    name: str
    parties: list[Party]
    n_bits: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_non_empty("parties", self.parties)
        check_positive("n_bits", self.n_bits)
        max_item = max(int(p.items.max()) for p in self.parties)
        if max_item >= (1 << self.n_bits):
            raise ValueError(
                f"n_bits={self.n_bits} cannot encode item id {max_item}; "
                f"need at least {max_item.bit_length()} bits"
            )
        names = [p.name for p in self.parties]
        if len(set(names)) != len(names):
            raise ValueError(f"party names must be unique, got {names}")

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def n_parties(self) -> int:
        return len(self.parties)

    @property
    def total_users(self) -> int:
        """Total user population across all parties."""
        return sum(p.n_users for p in self.parties)

    def party_sizes(self) -> dict[str, int]:
        """Party name → user count."""
        return {p.name: p.n_users for p in self.parties}

    def party(self, name: str) -> Party:
        """Return the party called ``name``."""
        for p in self.parties:
            if p.name == name:
                return p
        raise KeyError(f"no party named {name!r} in dataset {self.name!r}")

    # ------------------------------------------------------------------ #
    # Exact (non-private) statistics — ground truth for evaluation only
    # ------------------------------------------------------------------ #
    def global_counts(self) -> dict[int, int]:
        """Exact item → total count across all parties."""
        totals: dict[int, int] = {}
        for party in self.parties:
            for item, count in party.item_counts().items():
                totals[item] = totals.get(item, 0) + count
        return totals

    def global_frequencies(self) -> dict[int, float]:
        """Exact item → global frequency (Definition 4.1)."""
        n = self.total_users
        return {item: count / n for item, count in self.global_counts().items()}

    def true_top_k(self, k: int) -> list[int]:
        """The exact federated top-k heavy hitters (ties broken by item id)."""
        if k <= 0:
            return []
        counts = self.global_counts()
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [item for item, _ in ranked[:k]]

    def n_unique_items(self) -> int:
        """Number of distinct items across all parties."""
        return len(self.global_counts())

    def n_common_items(self) -> int:
        """Number of items present in *every* party (Table 2's "common items")."""
        supports = [set(p.unique_items().tolist()) for p in self.parties]
        common = set.intersection(*supports) if supports else set()
        return len(common)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def subsample_users(self, fraction: float, rng=None) -> "FederatedDataset":
        """Uniformly subsample each party's users (Table 4 scalability study)."""
        parties = [p.subsample(fraction, rng) for p in self.parties]
        return FederatedDataset(
            name=f"{self.name}",
            parties=parties,
            n_bits=self.n_bits,
            metadata=dict(self.metadata, user_fraction=fraction),
        )

    def sorted_by_population(self, descending: bool = True) -> list[Party]:
        """Parties sorted by population size (TAPS processes them in this order)."""
        return sorted(self.parties, key=lambda p: p.n_users, reverse=descending)

    def summary(self) -> dict:
        """Compact description used by the Table 2 reproduction."""
        return {
            "name": self.name,
            "n_parties": self.n_parties,
            "total_users": self.total_users,
            "party_sizes": self.party_sizes(),
            "n_unique_items": self.n_unique_items(),
            "n_common_items": self.n_common_items(),
            "n_bits": self.n_bits,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FederatedDataset(name={self.name!r}, parties={self.n_parties}, "
            f"users={self.total_users}, n_bits={self.n_bits})"
        )
