"""The SYN dataset: Dirichlet domain skew + Zipf/Poisson frequency laws.

This follows the paper's own construction (Section 7.1): the item domain is
split into ``N = 6`` groups; every party draws ``q ~ Dirichlet(β)`` and
receives a ``q_j`` proportion of group ``j``'s items as its local domain;
per-party frequencies then follow Zipf or Poisson laws with party-specific
parameters (Table 2 lists λ ∈ {10, 8, 6, 4} and α ∈ {1.1, 1.3, 1.5, 1.7}).
β controls the level of domain skew — Table 8 sweeps β ∈ {0.2, 0.5, 0.8}.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import FederatedDataset
from repro.datasets.distributions import (
    poisson_frequencies,
    sample_from_frequencies,
    scatter_item_ids,
    zipf_frequencies,
)
from repro.datasets.partition import dirichlet_domain_partition
from repro.federation.party import Party
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SynPartySpec:
    """Per-party recipe for the SYN dataset."""

    name: str
    n_users: int
    family: str  # "zipf" or "poisson"
    parameter: float


#: Party sizes and frequency laws from Table 2 (SYN 0 .. SYN 7), used as
#: relative weights when scaling the population down.
SYN_PARTY_TABLE: tuple[tuple[str, int, str, float], ...] = (
    ("syn_0", 220_000, "poisson", 10.0),
    ("syn_1", 170_000, "poisson", 8.0),
    ("syn_2", 120_000, "zipf", 1.1),
    ("syn_3", 80_000, "zipf", 1.3),
    ("syn_4", 70_000, "poisson", 6.0),
    ("syn_5", 60_000, "poisson", 4.0),
    ("syn_6", 30_000, "zipf", 1.5),
    ("syn_7", 30_000, "zipf", 1.7),
)


def _party_frequencies(family: str, parameter: float, n_items: int) -> np.ndarray:
    if family == "zipf":
        return zipf_frequencies(n_items, parameter)
    if family == "poisson":
        return poisson_frequencies(n_items, parameter)
    raise ValueError(f"unknown frequency family {family!r} (expected 'zipf' or 'poisson')")


def make_syn(
    total_users: int = 30_000,
    n_items: int = 2_000,
    n_groups: int = 6,
    dirichlet_beta: float = 0.5,
    n_bits: int = 16,
    rng: RandomState = None,
    *,
    global_anchor_weight: float = 0.35,
    n_anchor_items: int = 60,
) -> FederatedDataset:
    """Generate the SYN dataset.

    Parameters
    ----------
    total_users:
        Total population across the eight parties (scaled from Table 2).
    n_items:
        Size of the global item domain before partitioning.
    n_groups:
        Number of item groups for the Dirichlet partition (paper: 6).
    dirichlet_beta:
        Concentration β of the Dirichlet domain partition (Table 8 sweeps it).
    global_anchor_weight:
        Probability mass each party puts on a small shared "anchor" pool of
        globally popular items.  Without any shared mass the federated top-k
        would be essentially arbitrary; the anchor models the fact that even
        under domain skew some items are popular everywhere (the Tmall
        blockbusters the paper's SYN is sampled from).
    n_anchor_items:
        Size of that shared anchor pool.
    """
    check_positive("total_users", total_users)
    check_positive("n_items", n_items)
    gen = as_generator(rng)

    total_weight = sum(row[1] for row in SYN_PARTY_TABLE)
    specs = [
        SynPartySpec(
            name=name,
            n_users=max(10, int(round(total_users * weight / total_weight))),
            family=family,
            parameter=parameter,
        )
        for name, weight, family, parameter in SYN_PARTY_TABLE
    ]

    required_bits = max(1, (n_items - 1).bit_length() + 1)
    n_bits = max(n_bits, required_bits)

    # Partition dense ranks 0..n_items-1, then scatter them across the full
    # encodable domain so binary prefixes are informative.
    id_map = scatter_item_ids(n_items, n_bits, gen)
    domains = dirichlet_domain_partition(
        n_items, len(specs), n_groups, dirichlet_beta, gen
    )
    domains = [id_map[domain] for domain in domains]
    anchor_ranks = gen.choice(n_items, size=min(n_anchor_items, n_items), replace=False)
    anchor_ids = id_map[anchor_ranks]
    anchor_freqs = zipf_frequencies(anchor_ids.size, 1.2, shift=10.0)

    parties: list[Party] = []
    for spec, domain in zip(specs, domains):
        # Party-specific component: its own frequency law over a random
        # ordering of its Dirichlet-assigned domain.
        ordering = gen.permutation(domain)
        freqs = _party_frequencies(spec.family, spec.parameter, ordering.size)

        n_anchor_users = int(round(spec.n_users * global_anchor_weight))
        n_specific_users = spec.n_users - n_anchor_users
        items_specific = sample_from_frequencies(freqs, ordering, n_specific_users, gen)
        items_anchor = sample_from_frequencies(
            anchor_freqs, anchor_ids, n_anchor_users, gen
        )
        items = np.concatenate([items_specific, items_anchor])
        gen.shuffle(items)
        parties.append(
            Party(
                name=spec.name,
                items=items,
                metadata={
                    "family": spec.family,
                    "parameter": spec.parameter,
                    "domain_size": int(domain.size),
                },
            )
        )

    metadata = {
        "generator": "syn_dirichlet",
        "n_items": n_items,
        "n_groups": n_groups,
        "dirichlet_beta": dirichlet_beta,
        "global_anchor_weight": global_anchor_weight,
        "n_anchor_items": int(anchor_ids.size),
    }
    return FederatedDataset(name="syn", parties=parties, n_bits=n_bits, metadata=metadata)
