"""Dataset registry: build any of the five evaluation datasets by name.

The experiment harness and the benchmarks request datasets as
``load_dataset("rdb", scale="small", seed=7)``.  Scales trade fidelity for
runtime; ``"paper"`` approaches Table 2's population sizes and is only meant
for long offline runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.base import FederatedDataset
from repro.datasets.synthetic import make_syn
from repro.datasets.textlike import make_rdb, make_tys, make_ycm
from repro.datasets.uba import make_uba
from repro.utils.rng import RandomState
from repro.utils.tables import TextTable

#: Names of the five evaluation datasets, in the order the paper lists them.
DATASET_NAMES: tuple[str, ...] = ("rdb", "ycm", "tys", "uba", "syn")


@dataclass(frozen=True)
class ScalePreset:
    """Multiplier set applied to each generator's default sizes."""

    users_multiplier: float
    items_multiplier: float
    description: str


#: Named scale presets.  Multipliers apply to each generator's defaults.
SCALES: dict[str, ScalePreset] = {
    "tiny": ScalePreset(0.08, 0.3, "smoke-test scale (unit tests)"),
    "small": ScalePreset(1.0, 1.0, "benchmark default, runs in seconds"),
    "medium": ScalePreset(2.0, 1.2, "tighter estimates, still laptop-friendly"),
    "large": ScalePreset(6.0, 1.5, "longer runs, tighter estimates"),
    "paper": ScalePreset(40.0, 4.0, "approaches Table 2 population sizes"),
}


def _scaled(value: int, multiplier: float, minimum: int) -> int:
    return max(minimum, int(round(value * multiplier)))


def load_dataset(
    name: str,
    *,
    scale: str = "small",
    seed: RandomState = None,
    dirichlet_beta: float = 0.5,
    user_fraction: float = 1.0,
) -> FederatedDataset:
    """Build one of the five evaluation datasets.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    scale:
        One of :data:`SCALES`.
    seed:
        Seed or generator for reproducibility.
    dirichlet_beta:
        Only used for ``"syn"``: the Dirichlet domain-skew parameter β
        (Table 8 sweeps it).
    user_fraction:
        Subsample each party's users after generation (Table 4 scalability).
    """
    key = name.lower()
    if key not in DATASET_NAMES:
        raise KeyError(f"unknown dataset {name!r}; available: {list(DATASET_NAMES)}")
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; available: {list(SCALES)}")
    preset = SCALES[scale]
    um, im = preset.users_multiplier, preset.items_multiplier

    builders: dict[str, Callable[[], FederatedDataset]] = {
        "rdb": lambda: make_rdb(
            total_users=_scaled(20_000, um, 400),
            n_common_items=_scaled(300, im, 40),
            n_specific_items=_scaled(500, im, 40),
            n_bits=12,
            rng=seed,
        ),
        "ycm": lambda: make_ycm(
            total_users=_scaled(28_000, um, 600),
            n_common_items=_scaled(250, im, 40),
            n_specific_items=_scaled(500, im, 40),
            n_bits=12,
            rng=seed,
        ),
        "tys": lambda: make_tys(
            total_users=_scaled(36_000, um, 900),
            n_common_items=_scaled(200, im, 40),
            n_specific_items=_scaled(450, im, 40),
            n_bits=12,
            rng=seed,
        ),
        "uba": lambda: make_uba(
            total_users=_scaled(42_000, um, 900),
            n_common_items=_scaled(200, im, 40),
            n_specific_items=_scaled(400, im, 40),
            n_bits=12,
            rng=seed,
        ),
        "syn": lambda: make_syn(
            total_users=_scaled(30_000, um, 1200),
            n_items=_scaled(2_000, im, 150),
            dirichlet_beta=dirichlet_beta,
            n_bits=12,
            rng=seed,
        ),
    }
    dataset = builders[key]()
    if user_fraction < 1.0:
        dataset = dataset.subsample_users(user_fraction, rng=seed)
    dataset.metadata["scale"] = scale
    return dataset


def dataset_summary_table(
    *, scale: str = "small", seed: int = 0
) -> TextTable:
    """Reproduce the structure of Table 2 for the synthetic stand-ins."""
    table = TextTable(
        ["dataset", "# parties", "# total users", "# unique items", "# common items"]
    )
    for name in DATASET_NAMES:
        ds = load_dataset(name, scale=scale, seed=seed)
        summary = ds.summary()
        table.add_row(
            [
                name.upper(),
                summary["n_parties"],
                summary["total_users"],
                summary["n_unique_items"],
                summary["n_common_items"],
            ]
        )
    return table
