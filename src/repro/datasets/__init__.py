"""Federated dataset generators.

The paper evaluates on four real-world multi-party text/item corpora (RDB,
YCM, TYS, UBA) plus one synthetic dataset (SYN, Table 2).  The raw corpora
are not redistributable and are far beyond laptop scale, so this subpackage
generates *synthetic stand-ins* whose statistical shape matches Table 2:

* same number of parties and relative party sizes,
* heavy-tailed (Zipf / Poisson) per-party item frequencies,
* controlled overlap between party vocabularies ("common items"),
* non-IID per-party distributions (party-specific popular items that are
  globally rare, and globally popular items unevenly spread).

The SYN dataset follows the paper's own construction: the item domain is
split into groups, a Dirichlet(β) draw decides how much of each group a
party receives, and per-party frequencies follow Zipf/Poisson laws.

See ``DESIGN.md`` ("Substitutions") for why this preserves the behaviour the
evaluation measures.
"""

from repro.datasets.base import FederatedDataset
from repro.datasets.distributions import (
    poisson_frequencies,
    sample_from_frequencies,
    zipf_frequencies,
)
from repro.datasets.partition import dirichlet_domain_partition
from repro.datasets.synthetic import make_syn
from repro.datasets.textlike import make_rdb, make_tys, make_ycm
from repro.datasets.uba import make_uba
from repro.datasets.registry import (
    DATASET_NAMES,
    SCALES,
    dataset_summary_table,
    load_dataset,
)

__all__ = [
    "FederatedDataset",
    "zipf_frequencies",
    "poisson_frequencies",
    "sample_from_frequencies",
    "dirichlet_domain_partition",
    "make_syn",
    "make_rdb",
    "make_ycm",
    "make_tys",
    "make_uba",
    "DATASET_NAMES",
    "SCALES",
    "load_dataset",
    "dataset_summary_table",
]
