"""Dirichlet-based domain partitioning (the paper's SYN construction).

Following the non-IID federated-learning literature the paper cites
([33, 63]), the item domain is divided into ``n_groups`` groups and each
party draws ``q ~ Dirichlet(β)`` to decide which proportion of each group's
items enters its local domain.  Small β concentrates mass on few groups
(heavy domain skew); large β approaches an even split.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive


def dirichlet_domain_partition(
    n_items: int,
    n_parties: int,
    n_groups: int,
    beta: float,
    rng: RandomState = None,
    *,
    min_items_per_party: int = 8,
) -> list[np.ndarray]:
    """Assign each party a subset of the item domain via Dirichlet sampling.

    Parameters
    ----------
    n_items:
        Size of the global item domain (ids ``0..n_items-1``).
    n_parties:
        Number of parties.
    n_groups:
        Number of item groups the domain is divided into (paper: N = 6).
    beta:
        Dirichlet concentration; smaller values → more imbalanced domains.
    min_items_per_party:
        Safety floor so no party ends up with an unusably small domain.

    Returns
    -------
    list of arrays
        ``result[i]`` holds the item ids available to party ``i``.  Domains
        may (and generally do) overlap across parties because each party
        samples *which proportion* of a group it sees, independently.
    """
    check_positive("n_items", n_items)
    check_positive("n_parties", n_parties)
    check_positive("n_groups", n_groups)
    check_positive("beta", beta)
    gen = as_generator(rng)

    groups = np.array_split(gen.permutation(n_items), n_groups)
    domains: list[np.ndarray] = []
    for _ in range(n_parties):
        q = gen.dirichlet(np.full(n_groups, float(beta)))
        chosen: list[np.ndarray] = []
        for proportion, group in zip(q, groups):
            take = int(round(proportion * group.size))
            if take > 0:
                chosen.append(gen.choice(group, size=min(take, group.size), replace=False))
        if chosen:
            domain = np.unique(np.concatenate(chosen))
        else:
            domain = np.array([], dtype=np.int64)
        if domain.size < min_items_per_party:
            # Top up from the whole domain so the party remains usable.
            extra = gen.choice(n_items, size=min_items_per_party, replace=False)
            domain = np.unique(np.concatenate([domain, extra]))
        domains.append(domain.astype(np.int64))
    return domains
