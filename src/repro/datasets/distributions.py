"""Item-frequency laws used by the dataset generators.

The paper's synthetic SYN dataset draws per-party frequency distributions
from Zipf and Poisson families; the real-world corpora are word/item
frequency distributions which are themselves heavy-tailed.  These helpers
turn a distribution family + parameters into a normalised frequency vector
over ``n_items`` ranks, and sample user items from such a vector.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive


def zipf_frequencies(n_items: int, exponent: float, shift: float = 0.0) -> np.ndarray:
    """Normalised (shifted) Zipf frequencies ``f_r ∝ 1 / (r + shift)^exponent``.

    The ``shift`` flattens the head of the distribution: real large
    vocabularies (the paper's corpora have 30k–160k distinct items) have
    top-ranked items whose frequencies are close to each other rather than a
    single dominant item, and the shifted law reproduces that shape at the
    smaller vocabulary sizes used in laptop-scale runs.
    """
    check_positive("n_items", n_items)
    check_positive("exponent", exponent)
    if shift < 0:
        raise ValueError(f"shift must be >= 0, got {shift}")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = (ranks + float(shift)) ** (-float(exponent))
    return weights / weights.sum()


def poisson_frequencies(n_items: int, lam: float) -> np.ndarray:
    """Normalised Poisson-pmf frequencies over ranks 0..n-1.

    ``f_r ∝ Poisson(lam).pmf(r)``; the mode sits near ``lam`` which produces
    a "bump"-shaped popularity profile (the paper uses λ ∈ {4, 6, 8, 10}).
    Ranks far in the tail receive a tiny positive floor so every item of the
    domain remains observable.
    """
    check_positive("n_items", n_items)
    check_positive("lam", lam)
    ranks = np.arange(n_items, dtype=np.float64)
    weights = stats.poisson.pmf(ranks, mu=float(lam))
    weights = weights + 1e-12
    return weights / weights.sum()


def sample_from_frequencies(
    frequencies: np.ndarray,
    item_ids: np.ndarray,
    n_samples: int,
    rng: RandomState = None,
) -> np.ndarray:
    """Draw ``n_samples`` items (with replacement) according to ``frequencies``.

    Parameters
    ----------
    frequencies:
        Probability vector over the entries of ``item_ids``.
    item_ids:
        The item ids that the probability vector indexes.
    n_samples:
        Number of users to draw.
    """
    frequencies = np.asarray(frequencies, dtype=np.float64)
    item_ids = np.asarray(item_ids, dtype=np.int64)
    if frequencies.shape != item_ids.shape:
        raise ValueError(
            f"frequencies and item_ids must align, got {frequencies.shape} vs {item_ids.shape}"
        )
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples}")
    if frequencies.size == 0:
        raise ValueError("cannot sample from an empty frequency vector")
    total = frequencies.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError("frequencies must sum to a positive finite value")
    gen = as_generator(rng)
    probs = frequencies / total
    idx = gen.choice(item_ids.size, size=n_samples, replace=True, p=probs)
    return item_ids[idx]


def scatter_item_ids(
    n_items: int, n_bits: int, rng: RandomState = None
) -> np.ndarray:
    """Assign ``n_items`` distinct random ids within the ``2**n_bits`` code space.

    Real vocabularies occupy an arbitrary, sparse subset of the encodable
    domain (the paper encodes 30k–160k items into a 2^48 space).  Scattering
    ids uniformly keeps trie prefixes informative instead of concentrating
    every item under the all-zero shallow branch that dense ids would create.
    """
    check_positive("n_items", n_items)
    check_positive("n_bits", n_bits)
    capacity = 1 << n_bits
    if n_items > capacity:
        raise ValueError(
            f"cannot place {n_items} items into a {n_bits}-bit domain of size {capacity}"
        )
    gen = as_generator(rng)
    if n_items == capacity:
        return gen.permutation(capacity).astype(np.int64)
    # Rejection-free sampling of distinct ids: oversample, deduplicate, top up.
    ids: np.ndarray = np.unique(gen.integers(0, capacity, size=2 * n_items))
    while ids.size < n_items:
        extra = gen.integers(0, capacity, size=2 * n_items)
        ids = np.unique(np.concatenate([ids, extra]))
    chosen = gen.choice(ids, size=n_items, replace=False)
    return chosen.astype(np.int64)


def perturbed_ranking(
    n_items: int, noise_scale: float, rng: RandomState = None
) -> np.ndarray:
    """A permutation of ``range(n_items)`` that is a noisy version of identity.

    Used to give each party its own popularity ordering that correlates with
    the global ordering: item at global rank ``r`` lands near rank
    ``r + Normal(0, noise_scale * n_items)``.  ``noise_scale = 0`` returns the
    identity; large values approach a uniform permutation.
    """
    check_positive("n_items", n_items)
    if noise_scale < 0:
        raise ValueError(f"noise_scale must be >= 0, got {noise_scale}")
    gen = as_generator(rng)
    base = np.arange(n_items, dtype=np.float64)
    jitter = gen.normal(0.0, noise_scale * n_items, size=n_items)
    return np.argsort(base + jitter, kind="stable").astype(np.int64)
