"""Synthetic stand-ins for the paper's text corpora (RDB, YCM, TYS).

Each real corpus in Table 2 is a collection of parties with (i) very
different user populations, (ii) heavy-tailed word/item frequencies and
(iii) partially overlapping vocabularies — a set of "common items" shared by
every party plus large party-specific tails.  The generator below mirrors
exactly that structure:

* a *common pool* of items that exists in every party and whose popularity
  ordering is a noisy per-party perturbation of a shared global ordering
  (these are the items federated heavy hitters come from), and
* a *party-specific pool* per party: items popular inside one party but
  absent (or rare) elsewhere — the non-IID "local heavy hitters" that the
  paper identifies as the main source of false positives.

Every user holds exactly one item, matching the paper's data model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import FederatedDataset
from repro.datasets.distributions import (
    perturbed_ranking,
    sample_from_frequencies,
    scatter_item_ids,
    zipf_frequencies,
)
from repro.federation.party import Party
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class PartySpec:
    """Per-party generation parameters for a heterogeneous text-like dataset."""

    name: str
    n_users: int
    zipf_exponent: float = 1.3
    zipf_shift: float = 15.0
    common_weight: float = 0.65
    rank_noise: float = 0.05


@dataclass(frozen=True)
class TextDatasetSpec:
    """Full generation recipe for one heterogeneous multi-party dataset."""

    name: str
    parties: tuple[PartySpec, ...]
    n_common_items: int
    n_specific_items: int
    n_bits: int
    common_zipf_exponent: float = 1.2
    common_zipf_shift: float = 15.0
    extra_metadata: dict = field(default_factory=dict)


def make_heterogeneous_text_dataset(
    spec: TextDatasetSpec, rng: RandomState = None
) -> FederatedDataset:
    """Generate a federated dataset from a :class:`TextDatasetSpec`.

    Item-id layout: ids ``[0, n_common_items)`` are the common pool, and
    party ``i`` owns the specific block
    ``[n_common + i * n_specific, n_common + (i+1) * n_specific)``.
    """
    check_positive("n_common_items", spec.n_common_items)
    check_positive("n_specific_items", spec.n_specific_items)
    gen = as_generator(rng)

    n_common = spec.n_common_items
    n_specific = spec.n_specific_items
    total_items = n_common + n_specific * len(spec.parties)
    required_bits = max(1, (total_items - 1).bit_length() + 1)
    n_bits = max(spec.n_bits, required_bits)

    # Scatter the vocabulary across the full encodable domain so that binary
    # prefixes carry information (see scatter_item_ids).
    id_map = scatter_item_ids(total_items, n_bits, gen)
    common_ids = id_map[:n_common]
    base_common_freqs = zipf_frequencies(
        n_common, spec.common_zipf_exponent, spec.common_zipf_shift
    )

    parties: list[Party] = []
    for i, pspec in enumerate(spec.parties):
        check_positive(f"{pspec.name}.n_users", pspec.n_users)
        check_in_range(f"{pspec.name}.common_weight", pspec.common_weight, 0.0, 1.0)

        # Common pool: the party sees the global popularity ordering through
        # a noisy per-party lens (non-IID, but correlated with the truth).
        ranking = perturbed_ranking(n_common, pspec.rank_noise, gen)
        common_freqs = base_common_freqs[np.argsort(ranking, kind="stable")]

        # Party-specific pool: its own Zipf law over its own item block.
        specific_ids = id_map[n_common + i * n_specific : n_common + (i + 1) * n_specific]
        specific_freqs = zipf_frequencies(n_specific, pspec.zipf_exponent, pspec.zipf_shift)

        n_from_common = int(round(pspec.n_users * pspec.common_weight))
        n_from_specific = pspec.n_users - n_from_common
        items_common = sample_from_frequencies(
            common_freqs, common_ids, n_from_common, gen
        )
        items_specific = sample_from_frequencies(
            specific_freqs, specific_ids, n_from_specific, gen
        )
        items = np.concatenate([items_common, items_specific])
        gen.shuffle(items)
        parties.append(
            Party(
                name=pspec.name,
                items=items,
                metadata={
                    "zipf_exponent": pspec.zipf_exponent,
                    "common_weight": pspec.common_weight,
                    "rank_noise": pspec.rank_noise,
                },
            )
        )

    metadata = {
        "generator": "heterogeneous_text",
        "n_common_items": n_common,
        "n_specific_items_per_party": n_specific,
        "total_item_domain": total_items,
        **spec.extra_metadata,
    }
    return FederatedDataset(
        name=spec.name, parties=parties, n_bits=n_bits, metadata=metadata
    )


# --------------------------------------------------------------------------- #
# The three text-corpus stand-ins.  Relative party sizes follow Table 2.
# --------------------------------------------------------------------------- #

#: Relative user-population weights from Table 2 of the paper.
RDB_PARTY_WEIGHTS = {"reddit": 252_830, "imdb": 100_000}
YCM_PARTY_WEIGHTS = {
    "yahoo": 812_300,
    "cnn_dailymail": 287_113,
    "mind": 123_082,
    "swag": 113_553,
}
TYS_PARTY_WEIGHTS = {
    "twitter": 658_549,
    "yelp": 649_917,
    "scientific_papers": 349_119,
    "amazon_arts": 200_000,
    "squad": 142_192,
    "ag_news": 119_999,
}


def _scaled_sizes(weights: dict[str, int], total_users: int) -> dict[str, int]:
    """Scale Table 2's absolute party sizes down to ``total_users`` users."""
    check_positive("total_users", total_users)
    total_weight = sum(weights.values())
    sizes = {
        name: max(10, int(round(total_users * w / total_weight)))
        for name, w in weights.items()
    }
    return sizes


def _build_spec(
    name: str,
    weights: dict[str, int],
    total_users: int,
    n_common_items: int,
    n_specific_items: int,
    n_bits: int,
    zipf_exponents: list[float],
    common_weight: float,
    *,
    common_zipf_exponent: float = 1.2,
    common_zipf_shift: float = 15.0,
    specific_zipf_shift: float = 15.0,
) -> TextDatasetSpec:
    sizes = _scaled_sizes(weights, total_users)
    party_specs = tuple(
        PartySpec(
            name=pname,
            n_users=n,
            zipf_exponent=zipf_exponents[i % len(zipf_exponents)],
            zipf_shift=specific_zipf_shift,
            common_weight=common_weight,
            rank_noise=0.03 + 0.02 * (i % 3),
        )
        for i, (pname, n) in enumerate(sizes.items())
    )
    return TextDatasetSpec(
        name=name,
        parties=party_specs,
        n_common_items=n_common_items,
        n_specific_items=n_specific_items,
        n_bits=n_bits,
        common_zipf_exponent=common_zipf_exponent,
        common_zipf_shift=common_zipf_shift,
        extra_metadata={"table2_weights": dict(weights)},
    )


def make_rdb(
    total_users: int = 20_000,
    n_common_items: int = 300,
    n_specific_items: int = 500,
    n_bits: int = 16,
    rng: RandomState = None,
) -> FederatedDataset:
    """RDB stand-in: 2 parties (Reddit comments, IMDB reviews)."""
    spec = _build_spec(
        "rdb",
        RDB_PARTY_WEIGHTS,
        total_users,
        n_common_items,
        n_specific_items,
        n_bits,
        zipf_exponents=[1.2, 1.35],
        common_weight=0.65,
    )
    return make_heterogeneous_text_dataset(spec, rng)


def make_ycm(
    total_users: int = 28_000,
    n_common_items: int = 250,
    n_specific_items: int = 500,
    n_bits: int = 16,
    rng: RandomState = None,
) -> FederatedDataset:
    """YCM stand-in: 4 parties (Yahoo, CNN/DailyMail, Mind, SWAG)."""
    spec = _build_spec(
        "ycm",
        YCM_PARTY_WEIGHTS,
        total_users,
        n_common_items,
        n_specific_items,
        n_bits,
        zipf_exponents=[1.15, 1.25, 1.35, 1.2],
        common_weight=0.6,
    )
    return make_heterogeneous_text_dataset(spec, rng)


def make_tys(
    total_users: int = 36_000,
    n_common_items: int = 200,
    n_specific_items: int = 450,
    n_bits: int = 16,
    rng: RandomState = None,
) -> FederatedDataset:
    """TYS stand-in: 6 parties (Twitter, Yelp, Scientific Papers, Amazon Arts, SQuAD, AG News)."""
    spec = _build_spec(
        "tys",
        TYS_PARTY_WEIGHTS,
        total_users,
        n_common_items,
        n_specific_items,
        n_bits,
        zipf_exponents=[1.1, 1.2, 1.3, 1.25, 1.35, 1.15],
        common_weight=0.6,
    )
    return make_heterogeneous_text_dataset(spec, rng)
