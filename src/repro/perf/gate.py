"""The perf gate: schema + trend enforcement over committed artifacts.

``repro bench gate`` (and :func:`run_gate` behind it) loads every
``benchmarks/results/*.json``, validates each against its golden schema
(required keys, types, the calibration block, the trend-report shape),
**re-checks** every embedded trend comparison against the gate's own
tolerances, and fails — process exit non-zero — on any ``fail`` verdict
or schema drift.  This is what makes the repo's speed claims
load-bearing: a PR that halves decode throughput flips the committed
artifact's trend to ``fail`` the next time the benchmarks run, and the
gate turns that into a red CI job instead of a number nobody reads.

Nothing is skipped silently: every ``skip`` comparison carries its
reason into the gate report, and an artifact missing from the schema
registry is an error, not a shrug.

``--selftest`` proves the gate can actually catch a regression: for each
calibrated artifact it injects a synthetic 2× slowdown (half the
throughput, or twice the cost, same calibration) and asserts the trend
engine returns ``fail`` against the committed baseline.  A gate that
passes everything — including the injected regression — is a broken
gate, and the selftest makes that a test failure rather than a latent
hole.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.perf.calibrate import MachineCalibration
from repro.perf.trend import (
    VERDICTS,
    TrendPolicy,
    TrendReport,
    trend_vs_previous,
)

#: JSON scalar type groups the schema table speaks in.  ``bool`` is a
#: subclass of ``int`` in Python, so integer checks must exclude it.
_NUMBER = ("number",)
_INT = ("int",)
_STR = ("str",)
_OPT_STR = ("str", "null")


def _type_ok(value, kinds: tuple[str, ...]) -> bool:
    for kind in kinds:
        if kind == "null" and value is None:
            return True
        if kind == "int" and isinstance(value, int) and not isinstance(value, bool):
            return True
        if kind == "number" and isinstance(value, (int, float)) and not isinstance(value, bool):
            return True
        if kind == "str" and isinstance(value, str):
            return True
        if kind == "bool" and isinstance(value, bool):
            return True
        if kind == "list" and isinstance(value, list):
            return True
        if kind == "dict" and isinstance(value, Mapping):
            return True
    return False


@dataclass(frozen=True)
class ArtifactSchema:
    """The golden shape of one perf artifact plus its trend policy."""

    name: str
    key_fields: tuple[str, ...]
    entry_fields: Mapping[str, tuple[str, ...]]
    payload_fields: Mapping[str, tuple[str, ...]]
    policy: TrendPolicy
    #: Entries may omit measurement fields when they carry this marker
    #: (a skipped measurement recorded with its reason, never silently).
    skip_marker: str = "skipped_reason"

    def trend(
        self,
        entries: Sequence[Mapping],
        previous,
        *,
        calibration: MachineCalibration | None = None,
    ) -> TrendReport:
        """The shared trend engine bound to this artifact's keys/policy."""
        return trend_vs_previous(
            entries,
            previous,
            key_fields=self.key_fields,
            policy=self.policy,
            calibration=calibration,
        )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self, payload) -> list[str]:
        """Every way ``payload`` deviates from this schema (empty = valid)."""
        errors: list[str] = []
        if not isinstance(payload, Mapping):
            return [f"payload must be a mapping, got {type(payload).__name__}"]
        for name, kinds in self.payload_fields.items():
            if name not in payload:
                errors.append(f"missing top-level key {name!r}")
            elif not _type_ok(payload[name], kinds):
                errors.append(
                    f"top-level key {name!r} must be {'/'.join(kinds)}, "
                    f"got {type(payload[name]).__name__}"
                )
        errors.extend(self._validate_calibration(payload.get("calibration")))
        entries = payload.get("entries")
        if not isinstance(entries, list) or not entries:
            errors.append("'entries' must be a non-empty list")
        else:
            for index, entry in enumerate(entries):
                errors.extend(self._validate_entry(index, entry))
        errors.extend(self._validate_trend(payload.get("trend")))
        return errors

    def _validate_entry(self, index: int, entry) -> list[str]:
        where = f"entries[{index}]"
        if not isinstance(entry, Mapping):
            return [f"{where} must be a mapping, got {type(entry).__name__}"]
        errors = []
        for name in self.key_fields:
            if name not in entry:
                errors.append(f"{where} is missing key field {name!r}")
        if self.skip_marker in entry:
            # A skipped measurement: the key fields plus the reason is the
            # whole contract — measurement fields are legitimately absent.
            if not isinstance(entry[self.skip_marker], str) or not entry[self.skip_marker]:
                errors.append(f"{where}.{self.skip_marker} must be a non-empty string")
            return errors
        for name, kinds in self.entry_fields.items():
            if name not in entry:
                errors.append(f"{where} is missing field {name!r}")
            elif not _type_ok(entry[name], kinds):
                errors.append(
                    f"{where}.{name} must be {'/'.join(kinds)}, "
                    f"got {type(entry[name]).__name__}"
                )
        return errors

    def _validate_calibration(self, block) -> list[str]:
        if block is None:
            return ["missing 'calibration' block (artifact is uncalibrated)"]
        try:
            MachineCalibration.from_dict(block)
        except (ValueError, TypeError) as exc:
            return [f"invalid 'calibration' block: {exc}"]
        return []

    def _validate_trend(self, block) -> list[str]:
        if not isinstance(block, Mapping):
            return ["missing or non-mapping 'trend' block"]
        errors = []
        if block.get("baseline") not in (None, "committed"):
            errors.append("trend.baseline must be 'committed' or null")
        try:
            TrendPolicy.from_dict(block.get("policy") or {})
        except (KeyError, ValueError, TypeError) as exc:
            errors.append(f"trend.policy is malformed: {exc}")
        comparisons = block.get("comparisons")
        if not isinstance(comparisons, list):
            errors.append("trend.comparisons must be a list")
            comparisons = []
        for index, comparison in enumerate(comparisons):
            where = f"trend.comparisons[{index}]"
            if not isinstance(comparison, Mapping):
                errors.append(f"{where} must be a mapping")
                continue
            if not isinstance(comparison.get("key"), Mapping):
                errors.append(f"{where}.key must be a mapping")
            if comparison.get("verdict") not in VERDICTS:
                errors.append(
                    f"{where}.verdict must be one of {VERDICTS}, "
                    f"got {comparison.get('verdict')!r}"
                )
            ratio = comparison.get("ratio")
            if ratio is not None and not _type_ok(ratio, _NUMBER):
                errors.append(f"{where}.ratio must be a number")
        if block.get("verdict") not in VERDICTS:
            errors.append(f"trend.verdict must be one of {VERDICTS}")
        if not isinstance(block.get("warnings"), list):
            errors.append("trend.warnings must be a list")
        return errors


_THROUGHPUT_LATENCY_FIELDS = {
    "rounds": _INT,
    "n_reports": _INT,
    "n_batches": _INT,
    "seconds": _NUMBER,
    "reports_per_sec": _NUMBER,
    "p50_ms": _NUMBER,
    "p95_ms": _NUMBER,
    "p99_ms": _NUMBER,
    "upload_bytes": _INT,
}

#: The golden schemas, one per committed perf artifact (keyed by file stem).
ARTIFACT_SCHEMAS: dict[str, ArtifactSchema] = {
    schema.name: schema
    for schema in (
        ArtifactSchema(
            name="service_throughput",
            key_fields=("oracle", "batch_size"),
            entry_fields={
                "oracle": _STR,
                "batch_size": _INT,
                "n_users": _INT,
                "n_batches": _INT,
                "seconds": _NUMBER,
                "reports_per_sec": _NUMBER,
                "peak_batch_bytes": _INT,
                "tracemalloc_peak_bytes": _INT,
                "accumulator_bytes": _INT,
                "wire_bytes": _INT,
            },
            payload_fields={
                "backend": _STR,
                "max_workers": _OPT_STR,
                "domain_size": _INT,
                "entries": ("list",),
                "trend": ("dict",),
                "calibration": ("dict",),
            },
            policy=TrendPolicy(value="reports_per_sec", direction="higher"),
        ),
        ArtifactSchema(
            name="net_throughput",
            key_fields=("connections",),
            entry_fields={"connections": _INT, **_THROUGHPUT_LATENCY_FIELDS},
            payload_fields={
                "backend": _STR,
                "max_workers": _OPT_STR,
                "level": _INT,
                "batch_size": _INT,
                "users_per_round": _INT,
                "entries": ("list",),
                "trend": ("dict",),
                "calibration": ("dict",),
            },
            policy=TrendPolicy(value="reports_per_sec", direction="higher"),
        ),
        ArtifactSchema(
            name="cluster_throughput",
            key_fields=("shards",),
            entry_fields={
                "shards": _INT,
                "connections": _INT,
                **_THROUGHPUT_LATENCY_FIELDS,
            },
            payload_fields={
                "backend": _STR,
                "max_workers": _OPT_STR,
                "level": _INT,
                "batch_size": _INT,
                "users_per_round": _INT,
                "connections": _INT,
                "entries": ("list",),
                "trend": ("dict",),
                "calibration": ("dict",),
            },
            policy=TrendPolicy(value="reports_per_sec", direction="higher"),
        ),
        ArtifactSchema(
            name="engine_speedup",
            key_fields=("measure",),
            entry_fields={
                "measure": _STR,
                "backend": _STR,
                "n_cells": _INT,
                "seconds": _NUMBER,
                "cost_ratio": _NUMBER,
            },
            payload_fields={
                "cpu_count": _INT,
                "effective_cores": _INT,
                "entries": ("list",),
                "trend": ("dict",),
                "calibration": ("dict",),
            },
            # cost_ratio is already work-normalized (seconds × calibrated
            # ops / sweep cells), so the trend compares it raw: dividing
            # by ops_per_sec again would put the machine back in.
            policy=TrendPolicy(value="cost_ratio", direction="lower", normalize=False),
        ),
    )
}


# --------------------------------------------------------------------------- #
# Gate
# --------------------------------------------------------------------------- #
@dataclass
class GateArtifact:
    """One artifact's fate under the gate."""

    name: str
    path: str
    kind: str  # "perf" | "bench-records" | "unknown"
    errors: list[str] = field(default_factory=list)
    verdict: str = "pass"
    comparisons: list[dict] = field(default_factory=list)
    skips: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "kind": self.kind,
            "errors": list(self.errors),
            "verdict": self.verdict,
            "comparisons": list(self.comparisons),
            "skips": list(self.skips),
        }


@dataclass
class GateReport:
    """The full gate outcome; ``repro bench gate`` renders and emits this."""

    results_dir: str
    artifacts: list[GateArtifact] = field(default_factory=list)
    selftest: dict | None = None

    @property
    def verdict(self) -> str:
        if any(a.verdict == "fail" for a in self.artifacts):
            return "fail"
        if self.selftest is not None and not self.selftest.get("ok", False):
            return "fail"
        return "pass"

    @property
    def exit_code(self) -> int:
        return 0 if self.verdict == "pass" else 1

    def to_dict(self) -> dict:
        out = {
            "results_dir": self.results_dir,
            "verdict": self.verdict,
            "artifacts": [a.to_dict() for a in self.artifacts],
        }
        if self.selftest is not None:
            out["selftest"] = self.selftest
        return out

    def render(self) -> str:
        lines = [f"perf gate over {self.results_dir}: {self.verdict.upper()}"]
        for artifact in self.artifacts:
            lines.append(f"  {artifact.name}: {artifact.verdict} ({artifact.kind})")
            for error in artifact.errors:
                lines.append(f"    schema: {error}")
            for comparison in artifact.comparisons:
                key = " ".join(f"{k}={v}" for k, v in comparison["key"].items())
                ratio = comparison.get("ratio")
                detail = f"ratio {ratio:.2f}" if ratio is not None else \
                    comparison.get("reason", "")
                lines.append(f"    {key}: {comparison['verdict']} ({detail})")
            for skip in artifact.skips:
                lines.append(f"    skip: {skip}")
        if self.selftest is not None:
            status = "ok" if self.selftest.get("ok") else "FAILED"
            lines.append(f"  selftest (injected 2x slowdown): {status}")
            for entry in self.selftest.get("artifacts", []):
                lines.append(
                    f"    {entry['name']}: injected regression "
                    f"{'caught' if entry['caught'] else 'MISSED'} "
                    f"(verdict {entry['verdict']})"
                )
        return "\n".join(lines)


def _load_json(path: Path):
    return json.loads(path.read_text(encoding="utf-8"))


def _check_perf_artifact(path: Path, payload, schema: ArtifactSchema) -> GateArtifact:
    """Validate one perf artifact and re-check its embedded trend."""
    artifact = GateArtifact(name=schema.name, path=str(path), kind="perf")
    artifact.errors = schema.validate(payload)
    if artifact.errors:
        artifact.verdict = "fail"
        return artifact
    # Re-check: recompute each comparison's verdict from its recorded
    # ratio under the *gate's* policy — tolerances can tighten without
    # regenerating artifacts, and a hand-edited verdict cannot sneak by.
    worst = "pass"
    severity = {"pass": 0, "new": 0, "skip": 0, "warn": 1, "fail": 2}
    for comparison in payload["trend"]["comparisons"]:
        ratio = comparison.get("ratio")
        recorded = comparison["verdict"]
        if ratio is not None and recorded in ("pass", "warn", "fail"):
            verdict = schema.policy.verdict_for(float(ratio))
        else:
            verdict = recorded
        rechecked = dict(comparison, verdict=verdict)
        artifact.comparisons.append(rechecked)
        if verdict == "skip":
            key = " ".join(f"{k}={v}" for k, v in comparison["key"].items())
            artifact.skips.append(f"{key}: {comparison.get('reason', 'no reason')}")
        if severity[verdict] > severity[worst]:
            worst = verdict
    for entry in payload["entries"]:
        if schema.skip_marker in entry:
            key = " ".join(f"{k}={entry.get(k)}" for k in schema.key_fields)
            artifact.skips.append(f"{key}: {entry[schema.skip_marker]}")
    artifact.verdict = worst
    return artifact


def _check_records_artifact(path: Path, payload) -> GateArtifact:
    """Loosely validate a ``repro bench -o`` records document."""
    artifact = GateArtifact(name=path.stem, path=str(path), kind="bench-records")
    if not isinstance(payload.get("records"), list):
        artifact.errors.append("'records' must be a list")
    if not isinstance(payload.get("settings"), Mapping):
        artifact.errors.append("'settings' must be a mapping")
    if artifact.errors:
        artifact.verdict = "fail"
    return artifact


def run_gate(results_dir: str | Path) -> GateReport:
    """Validate and trend-check every ``*.json`` under ``results_dir``."""
    results_dir = Path(results_dir)
    report = GateReport(results_dir=str(results_dir))
    if not results_dir.is_dir():
        report.artifacts.append(
            GateArtifact(
                name=str(results_dir), path=str(results_dir), kind="unknown",
                errors=["results directory does not exist"], verdict="fail",
            )
        )
        return report
    for path in sorted(results_dir.glob("*.json")):
        try:
            payload = _load_json(path)
        except ValueError as exc:
            report.artifacts.append(
                GateArtifact(
                    name=path.stem, path=str(path), kind="unknown",
                    errors=[f"invalid JSON: {exc}"], verdict="fail",
                )
            )
            continue
        schema = ARTIFACT_SCHEMAS.get(path.stem)
        if schema is not None:
            report.artifacts.append(_check_perf_artifact(path, payload, schema))
        elif isinstance(payload, Mapping) and "target" in payload:
            report.artifacts.append(_check_records_artifact(path, payload))
        else:
            report.artifacts.append(
                GateArtifact(
                    name=path.stem, path=str(path), kind="unknown",
                    errors=["no golden schema registered for this artifact"],
                    verdict="fail",
                )
            )
    return report


# --------------------------------------------------------------------------- #
# Selftest: inject a synthetic 2× slowdown, the gate must catch it
# --------------------------------------------------------------------------- #
def inject_slowdown(entries: Sequence[Mapping], schema: ArtifactSchema, factor: float = 2.0) -> list[dict]:
    """Entries as if the machine ran ``factor``× slower on the same work."""
    degraded = []
    for entry in entries:
        value = entry.get(schema.policy.value)
        if value is None:
            degraded.append(dict(entry))
            continue
        if schema.policy.direction == "higher":
            degraded.append(dict(entry, **{schema.policy.value: float(value) / factor}))
        else:
            degraded.append(dict(entry, **{schema.policy.value: float(value) * factor}))
    return degraded


def run_selftest(results_dir: str | Path, *, factor: float = 2.0) -> dict:
    """Prove the gate catches a ``factor``× regression on every artifact.

    For each committed perf artifact that carries a calibration and at
    least one measured entry, degrade the entries by ``factor`` and run
    the shared trend engine against the committed payload itself (same
    calibration on both sides — a pure code slowdown, no machine excuse).
    The selftest is ``ok`` only if *every* eligible artifact yields a
    ``fail`` verdict and at least one artifact was eligible.
    """
    results_dir = Path(results_dir)
    outcomes = []
    for name, schema in sorted(ARTIFACT_SCHEMAS.items()):
        path = results_dir / f"{name}.json"
        if not path.exists():
            continue
        try:
            payload = _load_json(path)
        except ValueError:
            continue
        if schema.validate(payload):
            continue  # schema failures already fail the main gate
        calibration = MachineCalibration.from_dict(payload["calibration"])
        entries = [e for e in payload["entries"] if schema.policy.value in e]
        if not entries:
            continue
        injected = inject_slowdown(entries, schema, factor)
        trend = schema.trend(injected, payload, calibration=calibration)
        outcomes.append(
            {
                "name": name,
                "factor": factor,
                "verdict": trend.verdict,
                "caught": trend.verdict == "fail",
            }
        )
    return {
        "factor": factor,
        "artifacts": outcomes,
        "ok": bool(outcomes) and all(o["caught"] for o in outcomes),
    }
