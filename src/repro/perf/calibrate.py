"""Machine calibration: a fixed reference kernel that prices this machine.

Absolute benchmark numbers (reports/sec, seconds) are meaningless across
machines — a laptop, a shared CI runner, and a throttled container can
differ by an order of magnitude on identical code.  The perf gate instead
expresses every measurement as a **work-normalized cost ratio**::

    cost_ratio = seconds × calibration.ops_per_sec / work_units

i.e. "how many reference byte-ops this machine *could* have executed in
the time one unit of work actually took".  Both factors scale identically
with machine speed (a 2× slower machine halves ``ops_per_sec`` and
doubles ``seconds``), so the ratio is a property of the *code*, not the
*hardware* — which is what makes trend comparisons against a committed
artifact from a different machine honest.

The reference kernel is deliberately the same arithmetic as the columnar
hot path (:func:`repro.ldp.packed.packed_column_counts`: a blocked
``np.bincount`` over byte values folded through the 256×8 popcount LUT),
so the calibration exercises the memory and integer-histogram behaviour
the gated benchmarks actually depend on.  Nothing runs at import time:
:func:`calibrate` times the kernel when called, with an injectable clock
so tests can pin the arithmetic without real timing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.ldp.packed import packed_column_counts

#: Version tag of the reference kernel.  Bump when the kernel's work per
#: repetition changes — cost ratios are only comparable within one tag.
KERNEL_NAME = "packed-bincount-lut-v1"

#: Shape of the fixed reference buffer: 4096 packed unary reports over a
#: 256-candidate domain (32 bytes/row) — large enough to stream through
#: the blocked kernel, small enough that one pass takes well under a
#: millisecond on any machine this repo targets.
_REFERENCE_SHAPE = (4096, 32)
_REFERENCE_DOMAIN = _REFERENCE_SHAPE[1] * 8

_REFERENCE_BUFFER: np.ndarray | None = None


def _reference_buffer() -> np.ndarray:
    """The fixed pseudorandom byte buffer every calibration runs over."""
    global _REFERENCE_BUFFER
    if _REFERENCE_BUFFER is None:
        data = np.random.default_rng(20250808).integers(
            0, 256, size=_REFERENCE_SHAPE, dtype=np.uint8
        )
        data.flags.writeable = False
        _REFERENCE_BUFFER = data
    return _REFERENCE_BUFFER


def effective_cores() -> int:
    """Cores actually usable by this process (honours CPU affinity masks)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class MachineCalibration:
    """One machine's price tag: reference-kernel throughput plus topology.

    ``ops_per_sec`` counts *bytes the reference kernel touched per
    second* — the unit every work-normalized cost ratio is denominated
    in.  ``cpu_count``/``effective_cores`` travel with it so artifacts
    record the topology that produced them (a speedup claim without a
    core count is not a claim).
    """

    ops_per_sec: float
    elapsed_seconds: float
    work_units: int
    repetitions: int
    cpu_count: int
    effective_cores: int
    kernel: str = KERNEL_NAME

    def __post_init__(self):
        if self.ops_per_sec <= 0:
            raise ValueError(f"ops_per_sec must be positive, got {self.ops_per_sec}")
        if self.repetitions < 1 or self.work_units < 1:
            raise ValueError("calibration must have run at least one repetition")

    # ------------------------------------------------------------------ #
    # Normalization
    # ------------------------------------------------------------------ #
    def normalized_cost(self, seconds: float, work_units: float) -> float:
        """Work-normalized cost ratio: reference ops per unit of work.

        Dimensionless and machine-invariant (see the module docstring);
        *lower* is better.
        """
        if work_units <= 0:
            raise ValueError(f"work_units must be positive, got {work_units}")
        return float(seconds) * self.ops_per_sec / float(work_units)

    def normalized_rate(self, per_second: float) -> float:
        """A throughput expressed as a fraction of the reference kernel's.

        Machine-invariant for the same reason as :meth:`normalized_cost`;
        *higher* is better.  This is the form the trend engine compares
        ``reports_per_sec`` in.
        """
        return float(per_second) / self.ops_per_sec

    # ------------------------------------------------------------------ #
    # Document form
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "ops_per_sec": round(float(self.ops_per_sec), 1),
            "elapsed_seconds": round(float(self.elapsed_seconds), 6),
            "work_units": int(self.work_units),
            "repetitions": int(self.repetitions),
            "cpu_count": int(self.cpu_count),
            "effective_cores": int(self.effective_cores),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MachineCalibration":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a calibration must be a mapping, got {type(data).__name__}"
            )
        try:
            return cls(
                ops_per_sec=float(data["ops_per_sec"]),
                elapsed_seconds=float(data["elapsed_seconds"]),
                work_units=int(data["work_units"]),
                repetitions=int(data["repetitions"]),
                cpu_count=int(data["cpu_count"]),
                effective_cores=int(data["effective_cores"]),
                kernel=str(data.get("kernel", KERNEL_NAME)),
            )
        except KeyError as exc:
            raise ValueError(f"calibration document is missing key {exc}") from exc


def calibrate(
    *,
    min_seconds: float = 0.1,
    clock: Callable[[], float] = time.perf_counter,
) -> MachineCalibration:
    """Time the reference kernel on this machine, right now.

    Runs one untimed warmup pass (first-touch faults and the LUT cache
    line otherwise pollute the first repetition), then repeats the kernel
    until ``min_seconds`` of clock time have elapsed.  ``clock`` is
    injectable: tests pass a deterministic fake and the returned
    ``ops_per_sec`` becomes exact arithmetic over the fake's ticks.
    """
    if min_seconds <= 0:
        raise ValueError(f"min_seconds must be positive, got {min_seconds}")
    data = _reference_buffer()
    packed_column_counts(data, _REFERENCE_DOMAIN)  # warmup, untimed

    bytes_per_pass = int(data.size)
    repetitions = 0
    start = clock()
    elapsed = 0.0
    while elapsed < min_seconds:
        packed_column_counts(data, _REFERENCE_DOMAIN)
        repetitions += 1
        elapsed = clock() - start
    work_units = repetitions * bytes_per_pass
    return MachineCalibration(
        ops_per_sec=work_units / max(elapsed, 1e-9),
        elapsed_seconds=elapsed,
        work_units=work_units,
        repetitions=repetitions,
        cpu_count=os.cpu_count() or 1,
        effective_cores=effective_cores(),
    )
