"""Adaptive load control: pick batch size/credits/workers from latency.

The load generator's knobs (``batch_size``, pipelining ``credits``,
``max_workers``) have always been constants chosen by whoever wrote the
spec.  :class:`AdaptiveController` replaces the constants with a
deterministic feedback loop over *observed* batch latency: feed it every
send→ack latency of a round, call :meth:`end_round`, and it returns a
:class:`ControllerDecision` for the next round.

The batch-size search is a bracketing doubling search, chosen over plain
AIMD because it provably terminates instead of oscillating:

* while no batch has ever breached the p95 target, double (bounded by
  ``max_batch_size``);
* a breach records the smallest known-bad batch and halves (bounded by
  ``min_batch_size``);
* a good round records the largest known-good batch and only grows while
  ``2×good`` stays strictly below the known-bad bracket — once the
  bracket closes, the controller reports ``converged`` and holds.

Under any latency model that is monotone in batch size this converges to
the largest power-of-two multiple of the floor that meets the target,
and the decision sequence is a pure function of the observed latencies —
no wall clock in the logic.  The injectable ``clock`` only timestamps
decisions for the trace; tests pass a counting fake and assert the whole
trace, stamp for stamp.

Credits are sized so the pipeline can cover the p95 round trip at the
observed p50 (``p95/p50`` outstanding batches, clamped), and the worker
recommendation is simply the effective core count clamped to the
configured cap — honest defaults, recorded per decision so the trace
explains every knob it picked.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.obs.registry import quantiles
from repro.perf.calibrate import effective_cores
from repro.utils.validation import check_known_keys


@dataclass(frozen=True)
class ControllerConfig:
    """The controller's envelope: the target and the bounds it moves in."""

    target_p95_ms: float = 50.0
    min_batch_size: int = 256
    max_batch_size: int = 65536
    min_credits: int = 1
    max_credits: int = 8
    max_workers_cap: int = 8

    def __post_init__(self):
        if self.target_p95_ms <= 0:
            raise ValueError(f"target_p95_ms must be positive, got {self.target_p95_ms}")
        if not (1 <= self.min_batch_size <= self.max_batch_size):
            raise ValueError(
                "batch bounds must satisfy 1 <= min_batch_size <= max_batch_size, "
                f"got [{self.min_batch_size}, {self.max_batch_size}]"
            )
        if not (1 <= self.min_credits <= self.max_credits):
            raise ValueError(
                "credit bounds must satisfy 1 <= min_credits <= max_credits, "
                f"got [{self.min_credits}, {self.max_credits}]"
            )
        if self.max_workers_cap < 1:
            raise ValueError(f"max_workers_cap must be >= 1, got {self.max_workers_cap}")

    def to_dict(self) -> dict:
        return {
            "target_p95_ms": self.target_p95_ms,
            "min_batch_size": self.min_batch_size,
            "max_batch_size": self.max_batch_size,
            "min_credits": self.min_credits,
            "max_credits": self.max_credits,
            "max_workers_cap": self.max_workers_cap,
        }

    @classmethod
    def from_dict(cls, data: Mapping, *, source: str = "<controller>") -> "ControllerConfig":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"{source}: a controller config must be a mapping, "
                f"got {type(data).__name__}"
            )
        check_known_keys(
            data,
            tuple(cls.__dataclass_fields__),
            where="adaptive",
            source=source,
            error=ValueError,
        )
        return cls(**dict(data))


@dataclass(frozen=True)
class ControllerDecision:
    """One round's outcome and the knobs chosen for the next round."""

    round_index: int
    batch_size: int
    credits: int
    max_workers: int
    p50_ms: float
    p95_ms: float
    action: str  # "probe" | "increase" | "decrease" | "hold" | "converged"
    at: float

    def to_dict(self) -> dict:
        return {
            "round_index": self.round_index,
            "batch_size": self.batch_size,
            "credits": self.credits,
            "max_workers": self.max_workers,
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "action": self.action,
            "at": round(self.at, 6),
        }


@dataclass
class AdaptiveController:
    """Deterministic latency-driven knob picker (see the module docstring).

    Drive it round by round::

        controller = AdaptiveController(ControllerConfig(target_p95_ms=10))
        for _ in range(rounds):
            run_round(batch_size=controller.batch_size)   # observe() each batch
            decision = controller.end_round()             # knobs for next round

    The decision sequence (``decisions``) is a pure function of the
    observed latency sequence; two runs fed identical latencies produce
    identical traces.
    """

    config: ControllerConfig = field(default_factory=ControllerConfig)
    initial_batch_size: int | None = None
    cores: int | None = None
    clock: Callable[[], float] = time.perf_counter

    def __post_init__(self):
        if self.cores is None:
            self.cores = effective_cores()
        start = (
            self.config.min_batch_size
            if self.initial_batch_size is None
            else int(self.initial_batch_size)
        )
        self._batch = self._clamp_batch(start)
        self._credits = self.config.min_credits
        self._good: int | None = None  # largest batch that met the target
        self._bad: int | None = None   # smallest batch that breached it
        self._window: list[float] = []
        self._round = 0
        self.decisions: list[ControllerDecision] = []

    # ------------------------------------------------------------------ #
    # Current knobs
    # ------------------------------------------------------------------ #
    @property
    def batch_size(self) -> int:
        return self._batch

    @property
    def credits(self) -> int:
        return self._credits

    @property
    def max_workers(self) -> int:
        return max(1, min(int(self.cores), self.config.max_workers_cap))

    @property
    def converged(self) -> bool:
        """True once the good/bad bracket leaves no room to move."""
        if self._bad is not None and self._bad <= self.config.min_batch_size:
            return True  # even the floor breaches: pinned at the floor
        if self._good is None:
            return False
        ceiling = self._bad if self._bad is not None else self.config.max_batch_size + 1
        return self._good * 2 >= ceiling or self._good >= self.config.max_batch_size

    def _clamp_batch(self, batch: int) -> int:
        return max(self.config.min_batch_size, min(self.config.max_batch_size, int(batch)))

    # ------------------------------------------------------------------ #
    # Feedback
    # ------------------------------------------------------------------ #
    def observe(self, latency_seconds: float) -> None:
        """Record one batch's send→ack latency (seconds) for this round."""
        self._window.append(float(latency_seconds))

    def observe_many(self, latencies_seconds: Iterable[float]) -> None:
        for latency in latencies_seconds:
            self.observe(latency)

    def end_round(self) -> ControllerDecision:
        """Fold this round's observations into the next round's knobs."""
        self._round += 1
        if self._window:
            ms = np.asarray(self._window, dtype=np.float64) * 1e3
            p50, p95 = quantiles(ms, (50.0, 95.0))
        else:
            p50 = p95 = 0.0
        batch = self._batch
        target = self.config.target_p95_ms

        if not self._window:
            action = "hold"  # nothing observed: keep every knob
        elif p95 > target:
            self._bad = batch if self._bad is None else min(self._bad, batch)
            shrunk = self._clamp_batch(batch // 2)
            action = "hold" if shrunk == batch else "decrease"
            self._batch = shrunk
        else:
            self._good = batch if self._good is None else max(self._good, batch)
            ceiling = (
                self._bad if self._bad is not None else self.config.max_batch_size + 1
            )
            grown = self._clamp_batch(batch * 2)
            if self.converged:
                # Inside the closed bracket: settle on the best known-good
                # batch and stay there.
                self._batch = self._clamp_batch(self._good)
                action = "converged"
            elif grown > batch and grown < ceiling:
                self._batch = grown
                action = "probe" if self._bad is None else "increase"
            else:
                action = "hold"

        if self._window and p50 > 0:
            pipeline_depth = int(max(p95, p50) // p50)
            self._credits = max(
                self.config.min_credits, min(self.config.max_credits, pipeline_depth)
            )
        decision = ControllerDecision(
            round_index=self._round,
            batch_size=self._batch,
            credits=self._credits,
            max_workers=self.max_workers,
            p50_ms=p50,
            p95_ms=p95,
            action=action,
            at=float(self.clock()),
        )
        self.decisions.append(decision)
        self._window = []
        return decision

    def trace(self) -> list[dict]:
        """The JSON-safe decision trace (what loadgen reports embed)."""
        return [decision.to_dict() for decision in self.decisions]


def resolve_adaptive(adaptive, *, source: str = "<adaptive>") -> ControllerConfig | None:
    """Normalise an ``adaptive`` knob: bool/mapping/config → config or None.

    The one translation used by :func:`repro.net.loadgen.run_loadgen` and
    the loadgen spec: ``False``/``None`` disable, ``True`` means default
    config, a mapping carries :class:`ControllerConfig` fields.
    """
    if adaptive is None or adaptive is False:
        return None
    if adaptive is True:
        return ControllerConfig()
    if isinstance(adaptive, ControllerConfig):
        return adaptive
    if isinstance(adaptive, Mapping):
        return ControllerConfig.from_dict(adaptive, source=source)
    raise ValueError(
        f"{source}: 'adaptive' must be a bool or a controller-config mapping, "
        f"got {type(adaptive).__name__}"
    )
