"""The one trend engine: current entries vs the last committed artifact.

Every throughput benchmark used to carry its own copy of a warn-only
``_trend_vs_previous`` helper; the copies drifted (different keys,
different messages, no verdicts).  This module is the single shared
implementation: :func:`trend_vs_previous` compares the entries a
benchmark just measured against the entries of the last *committed*
artifact, entry by entry, and emits a structured :class:`TrendReport`
the benchmark embeds in its JSON payload.

Comparisons are **calibrated** whenever both sides recorded a
:class:`~repro.perf.calibrate.MachineCalibration`: the compared quantity
is the machine-normalized value (``value / ops_per_sec`` for
higher-is-better throughputs), so a slower runner does not read as a
regression and a faster one does not mask a real slowdown.  A baseline
written before the perf gate existed (no calibration block) yields
``skip`` verdicts with the reason recorded — never a silent pass and
never a false alarm.

Verdicts per comparison — ``ratio`` is always oriented so ≥ 1.0 means
"at least as good as the baseline":

* ``pass`` — ``ratio >= warn_ratio``;
* ``warn`` — ``fail_ratio < ratio < warn_ratio``;
* ``fail`` — ``ratio <= fail_ratio``;
* ``new``  — the baseline has no entry under this key;
* ``skip`` — incomparable, with the reason (uncalibrated baseline,
  missing value, skipped measurement).

Benchmarks *record* the report and print its warnings but never assert —
shared runners are noisy and tier-1 must not flake.  Enforcement belongs
to ``repro bench gate`` (:mod:`repro.perf.gate`), which re-checks the
embedded reports against the committed artifacts and exits non-zero on a
``fail``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.perf.calibrate import MachineCalibration

#: Every verdict a comparison (or a whole report) may carry.
VERDICTS: tuple[str, ...] = ("pass", "warn", "fail", "new", "skip")

#: Severity order for folding per-comparison verdicts into one.
_SEVERITY = {"pass": 0, "new": 0, "skip": 0, "warn": 1, "fail": 2}


@dataclass(frozen=True)
class TrendPolicy:
    """How one artifact's entries are compared: which value, how strictly.

    ``direction`` declares whether ``value`` is higher-is-better
    (throughput) or lower-is-better (a cost ratio); the engine orients
    every ratio so ≥ 1.0 always means "no regression".  ``normalize``
    selects calibrated comparison — set it ``False`` only for values that
    are *already* machine-normalized (e.g. a work-normalized cost ratio),
    where dividing by ``ops_per_sec`` again would re-introduce the
    machine.
    """

    value: str = "reports_per_sec"
    direction: str = "higher"
    warn_ratio: float = 0.75
    fail_ratio: float = 0.5
    normalize: bool = True

    def __post_init__(self):
        if self.direction not in ("higher", "lower"):
            raise ValueError(
                f"direction must be 'higher' or 'lower', got {self.direction!r}"
            )
        if not (0.0 < self.fail_ratio <= self.warn_ratio <= 1.0):
            raise ValueError(
                "tolerances must satisfy 0 < fail_ratio <= warn_ratio <= 1, "
                f"got fail_ratio={self.fail_ratio}, warn_ratio={self.warn_ratio}"
            )

    def verdict_for(self, ratio: float) -> str:
        """The verdict a performance ratio (≥ 1 = good) earns under this policy."""
        if ratio <= self.fail_ratio:
            return "fail"
        if ratio < self.warn_ratio:
            return "warn"
        return "pass"

    def to_dict(self) -> dict:
        return {
            "value": self.value,
            "direction": self.direction,
            "warn_ratio": self.warn_ratio,
            "fail_ratio": self.fail_ratio,
            "normalize": self.normalize,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrendPolicy":
        return cls(
            value=str(data["value"]),
            direction=str(data["direction"]),
            warn_ratio=float(data["warn_ratio"]),
            fail_ratio=float(data["fail_ratio"]),
            normalize=bool(data.get("normalize", True)),
        )


@dataclass(frozen=True)
class TrendComparison:
    """One entry's fate: its key, the two values, the ratio, the verdict."""

    key: dict
    verdict: str
    current: float | None = None
    previous: float | None = None
    ratio: float | None = None
    reason: str | None = None

    def to_dict(self) -> dict:
        out: dict = {"key": dict(self.key), "verdict": self.verdict}
        if self.current is not None:
            out["current"] = self.current
        if self.previous is not None:
            out["previous"] = self.previous
        if self.ratio is not None:
            out["ratio"] = round(float(self.ratio), 4)
        if self.reason is not None:
            out["reason"] = self.reason
        return out

    def describe(self, value_name: str) -> str:
        key = " ".join(f"{k}={v}" for k, v in self.key.items())
        if self.ratio is None:
            return f"{key}: {self.verdict} ({self.reason})"
        return (
            f"{key}: {value_name} is {self.ratio:.2f}x the last committed "
            f"run (calibrated) — {self.verdict}"
        )


@dataclass(frozen=True)
class TrendReport:
    """The structured outcome benchmarks embed under their ``trend`` key."""

    baseline: str | None
    policy: TrendPolicy
    comparisons: tuple[TrendComparison, ...] = field(default_factory=tuple)

    @property
    def verdict(self) -> str:
        """The worst per-comparison verdict (``pass`` when nothing compared)."""
        worst = "pass"
        for comparison in self.comparisons:
            if _SEVERITY[comparison.verdict] > _SEVERITY[worst]:
                worst = comparison.verdict
        return worst

    @property
    def warnings(self) -> list[str]:
        """Printable messages for every warn/fail comparison."""
        return [
            comparison.describe(self.policy.value)
            for comparison in self.comparisons
            if comparison.verdict in ("warn", "fail")
        ]

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline,
            "policy": self.policy.to_dict(),
            "comparisons": [c.to_dict() for c in self.comparisons],
            "verdict": self.verdict,
            "warnings": self.warnings,
        }


def _load_previous(previous) -> Mapping | None:
    """The last committed payload: a mapping, a path, or nothing."""
    if previous is None:
        return None
    if isinstance(previous, Mapping):
        return previous
    try:
        data = json.loads(Path(previous).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, Mapping) else None


def _entry_key(entry: Mapping, key_fields: Sequence[str]) -> tuple:
    return tuple(entry.get(f) for f in key_fields)


def _calibration_ops(payload: Mapping | None) -> float | None:
    """``ops_per_sec`` of a payload's calibration block, if it has one."""
    if payload is None:
        return None
    block = payload.get("calibration")
    if not isinstance(block, Mapping):
        return None
    try:
        return MachineCalibration.from_dict(block).ops_per_sec
    except (ValueError, TypeError):
        return None


def trend_vs_previous(
    entries: Sequence[Mapping],
    previous,
    *,
    key_fields: Sequence[str],
    policy: TrendPolicy,
    calibration: MachineCalibration | None = None,
) -> TrendReport:
    """Compare measured ``entries`` against the last committed artifact.

    Parameters
    ----------
    entries:
        The entry dicts this run just measured (each carries the
        ``key_fields`` and, unless skipped, ``policy.value``).
    previous:
        The committed artifact: a path to the JSON file (read before this
        run overwrites it), an already-loaded payload mapping, or ``None``
        (first run — every entry reports ``new``/no baseline).
    key_fields:
        Entry fields forming the identity a baseline entry is matched on
        (e.g. ``("oracle", "batch_size")``).
    policy:
        Tolerances, direction, and whether to normalize by calibration.
    calibration:
        This run's :class:`MachineCalibration`.  Required for
        ``policy.normalize`` comparisons; without it (or without one in
        the baseline) those comparisons ``skip`` with the reason recorded.
    """
    previous_payload = _load_previous(previous)
    baseline = "committed" if previous_payload is not None else None
    previous_entries: dict[tuple, Mapping] = {}
    if previous_payload is not None:
        for entry in previous_payload.get("entries", ()):
            if isinstance(entry, Mapping):
                previous_entries[_entry_key(entry, key_fields)] = entry
    previous_ops = _calibration_ops(previous_payload)
    current_ops = calibration.ops_per_sec if calibration is not None else None

    comparisons: list[TrendComparison] = []
    for entry in entries:
        key = {f: entry.get(f) for f in key_fields}
        value = entry.get(policy.value)
        if value is None:
            comparisons.append(
                TrendComparison(
                    key=key,
                    verdict="skip",
                    reason=entry.get("skipped_reason") or f"no {policy.value} measured",
                )
            )
            continue
        value = float(value)
        old_entry = previous_entries.get(_entry_key(entry, key_fields))
        old_value = old_entry.get(policy.value) if old_entry is not None else None
        if old_entry is None or old_value is None:
            comparisons.append(
                TrendComparison(
                    key=key, verdict="new", current=value,
                    reason="no baseline entry",
                )
            )
            continue
        old_value = float(old_value)
        if policy.normalize:
            if current_ops is None:
                comparisons.append(
                    TrendComparison(
                        key=key, verdict="skip", current=value, previous=old_value,
                        reason="run is uncalibrated",
                    )
                )
                continue
            if previous_ops is None:
                comparisons.append(
                    TrendComparison(
                        key=key, verdict="skip", current=value, previous=old_value,
                        reason="baseline is uncalibrated (pre-perf-gate artifact)",
                    )
                )
                continue
            current_norm = value / current_ops
            previous_norm = old_value / previous_ops
        else:
            current_norm = value
            previous_norm = old_value
        if previous_norm <= 0 or current_norm <= 0:
            comparisons.append(
                TrendComparison(
                    key=key, verdict="skip", current=value, previous=old_value,
                    reason="non-positive value",
                )
            )
            continue
        if policy.direction == "higher":
            ratio = current_norm / previous_norm
        else:
            ratio = previous_norm / current_norm
        comparisons.append(
            TrendComparison(
                key=key,
                verdict=policy.verdict_for(ratio),
                current=value,
                previous=old_value,
                ratio=ratio,
            )
        )
    return TrendReport(
        baseline=baseline, policy=policy, comparisons=tuple(comparisons)
    )
