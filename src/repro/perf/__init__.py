"""The perf layer: calibration, trends, the gate, and adaptive control.

Four pieces make the repo's speed claims load-bearing instead of
anecdotal (see ``docs/architecture.md``, "The perf layer"):

* :mod:`repro.perf.calibrate` — a fixed reference kernel prices the
  machine (:class:`MachineCalibration`), so measurements become
  **work-normalized cost ratios** comparable across machines;
* :mod:`repro.perf.trend` — the one shared trend engine comparing a
  run's entries to the last committed artifact by calibrated ratio,
  emitting a structured :class:`TrendReport` (pass/warn/fail/new/skip
  per entry, skips always with a reason);
* :mod:`repro.perf.gate` — golden schemas for every committed perf
  artifact plus ``repro bench gate``: schema validation, trend
  re-checking, non-zero exit on a ``fail``, and a ``--selftest`` that
  injects a synthetic 2× slowdown and proves the gate catches it;
* :mod:`repro.perf.controller` — :class:`AdaptiveController`, a
  deterministic latency-feedback loop picking ``batch_size`` /
  ``credits`` / ``max_workers``, opt-in from ``run_loadgen(adaptive=…)``.
"""

from repro.perf.calibrate import MachineCalibration, calibrate, effective_cores
from repro.perf.controller import (
    AdaptiveController,
    ControllerConfig,
    ControllerDecision,
    resolve_adaptive,
)
from repro.perf.gate import (
    ARTIFACT_SCHEMAS,
    ArtifactSchema,
    GateReport,
    inject_slowdown,
    run_gate,
    run_selftest,
)
from repro.perf.trend import (
    VERDICTS,
    TrendComparison,
    TrendPolicy,
    TrendReport,
    trend_vs_previous,
)

__all__ = [
    "ARTIFACT_SCHEMAS",
    "AdaptiveController",
    "ArtifactSchema",
    "ControllerConfig",
    "ControllerDecision",
    "GateReport",
    "MachineCalibration",
    "TrendComparison",
    "TrendPolicy",
    "TrendReport",
    "VERDICTS",
    "calibrate",
    "effective_cores",
    "inject_slowdown",
    "resolve_adaptive",
    "run_gate",
    "run_selftest",
    "trend_vs_previous",
]
