"""Declarative scenario specifications — the ``scenario:`` document schema.

A scenario spec is the operator-facing description of one scenario-lab
run: the base workload, the composed effects, the stream shape, and the
tracker cadence (window/stride) the robustness harness should use.  It
validates exactly like the sweep specs — unknown keys raise with the
offending key and source named — and round-trips through
``to_dict``/``from_dict`` so a spec document is bit-identical to the
programmatic :class:`~repro.scenarios.scenario.Scenario` it builds.

Document layout (YAML shown; JSON is isomorphic)::

    name: drift-attack
    base: {kind: zipf, n_items: 256, n_bits: 10, exponent: 1.3, seed: 7}
    n_steps: 12
    batch_size: 1200
    k: 5
    window_batches: 3
    stride: 2
    effects:
      - {kind: drift, mode: gradual, start: 6, duration: 4}
      - {kind: poison, fraction: 0.05}

The same document embeds under a sweep spec's ``scenario:`` key
(:class:`repro.experiments.spec.SweepSpec`), and
:func:`repro.experiments.spec.load_scenario_spec` loads either form from
disk for ``repro serve --scenario``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.scenarios.effects import ScenarioError, effect_from_dict
from repro.scenarios.scenario import BaseWorkload, Scenario
from repro.utils.validation import check_known_keys, check_positive

#: Top-level keys a scenario document may contain.
SCENARIO_KEYS: tuple[str, ...] = (
    "name",
    "base",
    "effects",
    "n_steps",
    "batch_size",
    "k",
    "window_batches",
    "stride",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated scenario description (workload + tracker cadence)."""

    base: BaseWorkload = field(default_factory=BaseWorkload)
    effects: tuple = ()
    n_steps: int = 16
    batch_size: int = 1000
    k: int = 5
    window_batches: int = 4
    stride: int = 1
    name: str = "scenario"

    def __post_init__(self) -> None:
        check_positive("n_steps", self.n_steps)
        check_positive("batch_size", self.batch_size)
        check_positive("k", self.k)
        check_positive("window_batches", self.window_batches)
        check_positive("stride", self.stride)
        if self.window_batches > self.n_steps:
            raise ScenarioError(
                f"window_batches ({self.window_batches}) exceeds n_steps "
                f"({self.n_steps}); the window would never fill"
            )

    # ------------------------------------------------------------------ #
    # Construction / validation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, source: str = "<scenario>") -> "ScenarioSpec":
        """Validate a parsed scenario document into a :class:`ScenarioSpec`."""
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"{source}: a scenario must be a mapping, got {type(data).__name__}"
            )
        check_known_keys(data, SCENARIO_KEYS, where="scenario", source=source, error=ScenarioError)
        base = BaseWorkload.from_dict(data.get("base") or {}, source=source)
        effects_data = data.get("effects") or []
        if not isinstance(effects_data, (list, tuple)):
            raise ScenarioError(
                f"{source}: 'effects' must be a list of effect mappings, "
                f"got {type(effects_data).__name__}"
            )
        effects = tuple(effect_from_dict(entry, source=source) for entry in effects_data)
        name = data.get("name") or "scenario"
        if not isinstance(name, str):
            raise ScenarioError(f"{source}: 'name' must be a string")
        kwargs = {
            key: data[key]
            for key in ("n_steps", "batch_size", "k", "window_batches", "stride")
            if key in data
        }
        try:
            return cls(base=base, effects=effects, name=name, **kwargs)
        except ScenarioError:
            raise
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"{source}: invalid scenario: {exc}") from exc

    def to_dict(self) -> dict:
        """The JSON-safe document form; ``from_dict`` round-trips it."""
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "effects": [effect.to_dict() for effect in self.effects],
            "n_steps": self.n_steps,
            "batch_size": self.batch_size,
            "k": self.k,
            "window_batches": self.window_batches,
            "stride": self.stride,
        }

    def fingerprint(self) -> str:
        """Stable digest of the scenario identity (stamped into stores).

        Everything in the document is identity — the base seed fixes the
        item domain, the effects fix the moving truth — so unlike sweep
        fingerprints nothing is excluded except the free-form ``name``.
        """
        doc = self.to_dict()
        doc.pop("name", None)
        canonical = json.dumps(doc, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def build(self) -> Scenario:
        """Materialise the workload (resolves the base; may load a dataset)."""
        return Scenario(
            base=self.base,
            effects=self.effects,
            n_steps=self.n_steps,
            batch_size=self.batch_size,
            k=self.k,
        )
