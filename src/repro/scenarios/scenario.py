"""The :class:`Scenario` abstraction: a base workload + time-varying effects.

A scenario is a *generating process with a known moving ground truth*: at
every 1-based step it has an exact item-frequency vector (a pure function
of the step index and the scenario parameters — no sampling involved), so
the true top-k is known at every point in time even while it drifts.
:meth:`Scenario.iter_batches` samples arrival batches from that process,
stamping each with the step's exact truth; the robustness harness
(:mod:`repro.scenarios.harness`) scores discovery snapshots against it.

Determinism contract (the repo-wide seed-spawning contract): the batch
stream is a function of the run seed alone.  ``iter_batches`` fans one
child seed per step out of the run generator *before* sampling anything,
so step ``t``'s batch never depends on how earlier batches were consumed;
the base workload's item scatter uses the spec-level ``base.seed``, never
the run seed, so the item domain and the moving truth are part of the
scenario's *identity* (and of its spec fingerprint), not of any one run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.datasets.distributions import scatter_item_ids, zipf_frequencies
from repro.scenarios.effects import (
    BurstArrivals,
    DriftSchedule,
    PopulationChurn,
    ScenarioError,
    SkewShift,
)
from repro.utils.rng import RandomState, as_generator, spawn_seeds
from repro.utils.validation import check_known_keys, check_positive

#: Base workload kinds understood by :class:`BaseWorkload`.
BASE_KINDS: tuple[str, ...] = ("zipf", "dataset")


@dataclass(frozen=True)
class BaseWorkload:
    """The frozen-population starting point a scenario perturbs.

    ``kind="zipf"`` scatters ``n_items`` item ids across the ``2**n_bits``
    code space (seeded by ``seed``, so the domain is part of the scenario
    identity) under a Zipf(``exponent``) popularity law.  ``kind="dataset"``
    pools a registry dataset (``load_dataset(dataset, scale=scale,
    seed=seed)``) and uses its empirical global frequencies — the paper's
    evaluation populations become scenario bases directly.
    """

    kind: str = "zipf"
    n_items: int = 512
    n_bits: int = 12
    exponent: float = 1.1
    #: Zipf head-flattening shift (see ``zipf_frequencies``): real large
    #: vocabularies have several comparably-hot head items, not one
    #: dominant one, which is what makes a *set* of k heavy hitters an
    #: interesting moving target.
    shift: float = 0.0
    seed: int = 0
    dataset: str | None = None
    scale: str = "tiny"

    def __post_init__(self) -> None:
        if self.kind not in BASE_KINDS:
            raise ScenarioError(
                f"unknown base kind {self.kind!r}; available: {sorted(BASE_KINDS)}"
            )
        if self.kind == "zipf":
            check_positive("n_items", self.n_items)
            check_positive("n_bits", self.n_bits)
            check_positive("exponent", self.exponent)
            check_positive("shift", self.shift, strict=False)
            if self.n_items > (1 << self.n_bits):
                raise ScenarioError(
                    f"cannot place {self.n_items} items into a "
                    f"{self.n_bits}-bit domain"
                )
        elif not self.dataset:
            raise ScenarioError("base kind 'dataset' requires a 'dataset' name")

    def resolve(self) -> tuple[np.ndarray, np.ndarray, int]:
        """``(item_ids, rank_frequencies, n_bits)`` — ids ordered hot→cold."""
        if self.kind == "zipf":
            gen = np.random.default_rng(self.seed)
            item_ids = scatter_item_ids(self.n_items, self.n_bits, gen)
            freqs = zipf_frequencies(self.n_items, self.exponent, shift=self.shift)
            return item_ids, freqs, self.n_bits
        from repro.datasets.registry import load_dataset

        try:
            dataset = load_dataset(self.dataset, scale=self.scale, seed=self.seed)
        except KeyError as exc:
            raise ScenarioError(str(exc.args[0]) if exc.args else str(exc)) from exc
        counts = dataset.global_counts()
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        item_ids = np.array([item for item, _ in ranked], dtype=np.int64)
        totals = np.array([count for _, count in ranked], dtype=np.float64)
        return item_ids, totals / totals.sum(), dataset.n_bits

    def to_dict(self) -> dict:
        """JSON-safe document form; :meth:`from_dict` round-trips it."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, source: str = "<scenario>") -> "BaseWorkload":
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"{source}: 'base' must be a mapping, got {type(data).__name__}"
            )
        allowed = tuple(f.name for f in dataclasses.fields(cls))
        check_known_keys(data, allowed, where="base", source=source, error=ScenarioError)
        try:
            return cls(**dict(data))
        except ScenarioError:
            raise
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"{source}: invalid base: {exc}") from exc


@dataclass(frozen=True)
class ArrivalBatch:
    """One step of a scenario's arrival stream.

    ``step`` is 1-based and equals the :class:`~repro.service.streaming.
    WindowSnapshot` step a tracker fed this stream reports, so scenario
    truth and discovery snapshots align by construction.
    """

    #: 1-based arrival step.
    step: int
    #: Private items of the users arriving this step (poison included).
    items: np.ndarray = field(compare=False)
    #: Exact top-k of the step's honest generating distribution.
    true_top_k: tuple[int, ...]
    #: How many trailing entries of ``items`` are adversarial.
    n_poisoned: int = 0
    #: Whether the true top-k *set* changed relative to the previous step.
    truth_changed: bool = False


class Scenario:
    """A base workload composed with time-varying effects.

    Parameters
    ----------
    base:
        The :class:`BaseWorkload` supplying item ids and the popularity law.
    effects:
        At most one effect per kind (drift/burst/churn/skew/poison).
    n_steps:
        Length of the arrival stream.
    batch_size:
        Arrivals per step before any :class:`~repro.scenarios.effects.
        BurstArrivals` scaling.
    k:
        Size of the moving ground-truth top-k (also the default drift
        rotation).
    """

    def __init__(
        self,
        *,
        base: BaseWorkload,
        effects: Sequence = (),
        n_steps: int = 16,
        batch_size: int = 1000,
        k: int = 5,
    ):
        check_positive("n_steps", n_steps)
        check_positive("batch_size", batch_size)
        check_positive("k", k)
        self.base = base
        self.effects = tuple(effects)
        by_kind: dict[str, Any] = {}
        for effect in self.effects:
            kind = getattr(effect, "kind", None)
            if kind is None:
                raise ScenarioError(
                    f"effects must be scenario effect instances, got {effect!r}"
                )
            if kind in by_kind:
                raise ScenarioError(f"duplicate {kind!r} effect; compose one per kind")
            by_kind[kind] = effect
        self._by_kind = by_kind
        self.n_steps = int(n_steps)
        self.batch_size = int(batch_size)
        self.k = int(k)

        self.item_ids, self._rank_freqs, self.n_bits = base.resolve()
        self.n_items = int(self.item_ids.size)
        if self.k > self.n_items:
            raise ScenarioError(
                f"k ({self.k}) cannot exceed the base item count ({self.n_items})"
            )
        drift: DriftSchedule | None = by_kind.get("drift")
        rotation = self.k if drift is None or drift.rotation is None else drift.rotation
        self._rotation = int(rotation) % self.n_items
        adversaries = [
            effect for effect in self.effects if getattr(effect, "is_adversary", False)
        ]
        if len(adversaries) > 1:
            kinds = sorted(effect.kind for effect in adversaries)
            raise ScenarioError(
                f"at most one adversary effect per scenario, got {kinds}"
            )
        #: The adversary controlling each batch's trailing reports, if any
        #: (PoisonedReports or a repro.scenarios.adversaries model).
        self._adversary = adversaries[0] if adversaries else None
        self._adversary_targets: np.ndarray | None = (
            self._adversary.resolve_targets(self) if self._adversary else None
        )

    # ------------------------------------------------------------------ #
    # The exact generating process (no sampling)
    # ------------------------------------------------------------------ #
    def _blend(self, law: np.ndarray, step: int) -> np.ndarray:
        drift: DriftSchedule | None = self._by_kind.get("drift")
        if drift is None or self._rotation == 0:
            return law
        weight = drift.weight(step)
        if weight <= 0.0:
            return law
        rotated = np.roll(law, self._rotation)
        return (1.0 - weight) * law + weight * rotated

    def frequencies(self, step: int) -> np.ndarray:
        """Exact honest item frequencies at 1-based ``step``.

        ``frequencies(step)[p]`` is the probability of ``item_ids[p]``;
        positions are the base popularity order (0 = hottest at step 1).
        """
        if not 1 <= step <= self.n_steps:
            raise ValueError(f"step must lie in [1, {self.n_steps}], got {step}")
        skew: SkewShift | None = self._by_kind.get("skew")
        if skew is None:
            return self._blend(self._rank_freqs, step)
        pooled = np.zeros(self.n_items, dtype=np.float64)
        for party, share in enumerate(skew.normalized_shares()):
            law = zipf_frequencies(self.n_items, skew.exponent(party, step))
            pooled += share * self._blend(law, step)
        return pooled

    def true_top_k(self, step: int) -> tuple[int, ...]:
        """The exact moving ground truth at ``step`` (ties broken by id)."""
        freqs = self.frequencies(step)
        order = np.lexsort((self.item_ids, -freqs))
        return tuple(int(self.item_ids[p]) for p in order[: self.k])

    def drift_steps(self) -> list[int]:
        """Steps whose true top-k *set* differs from the previous step's."""
        events: list[int] = []
        previous = set(self.true_top_k(1))
        for step in range(2, self.n_steps + 1):
            current = set(self.true_top_k(step))
            if current != previous:
                events.append(step)
            previous = current
        return events

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def iter_batches(self, rng: RandomState = None) -> Iterator[ArrivalBatch]:
        """Sample the arrival stream: one :class:`ArrivalBatch` per step.

        One child seed per step is fanned out of ``rng`` up front
        (:func:`~repro.utils.rng.spawn_seeds`), so a replay with the same
        seed is bit-identical batch for batch.
        """
        gen = as_generator(rng)
        seeds = spawn_seeds(gen, self.n_steps)
        burst: BurstArrivals | None = self._by_kind.get("burst")
        churn: PopulationChurn | None = self._by_kind.get("churn")
        adversary = self._adversary
        population: np.ndarray | None = None
        previous_truth: tuple[int, ...] | None = None
        for step in range(1, self.n_steps + 1):
            step_gen = np.random.default_rng(seeds[step - 1])
            freqs = self.frequencies(step)
            probs = freqs / freqs.sum()
            size = self.batch_size if burst is None else burst.batch_size(step, self.batch_size)
            if churn is None:
                positions = step_gen.choice(self.n_items, size=size, p=probs)
            else:
                pop_size = churn.population_size or 2 * self.batch_size
                if population is None:
                    population = step_gen.choice(self.n_items, size=pop_size, p=probs)
                else:
                    n_replace = int(round(churn.rate * pop_size))
                    if n_replace:
                        slots = step_gen.choice(pop_size, size=n_replace, replace=False)
                        population[slots] = step_gen.choice(
                            self.n_items, size=n_replace, p=probs
                        )
                positions = population[step_gen.integers(0, pop_size, size=size)]
            items = self.item_ids[positions].astype(np.int64)
            n_poisoned = 0
            if adversary is not None:
                n_poisoned = adversary.n_adversarial(step, size)
                if n_poisoned:
                    # step_gen is passed *after* honest sampling: a random
                    # adversary (Byzantine) stays replayable without ever
                    # perturbing the honest prefix of the stream.
                    items[size - n_poisoned :] = adversary.adversarial_items(
                        scenario=self,
                        step=step,
                        n=n_poisoned,
                        targets=self._adversary_targets,
                        step_gen=step_gen,
                    )
            truth = self.true_top_k(step)
            changed = previous_truth is not None and set(truth) != set(previous_truth)
            previous_truth = truth
            yield ArrivalBatch(
                step=step,
                items=items,
                true_top_k=truth,
                n_poisoned=int(n_poisoned),
                truth_changed=changed,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = sorted(self._by_kind) or ["none"]
        return (
            f"Scenario(base={self.base.kind!r}, n_items={self.n_items}, "
            f"n_steps={self.n_steps}, batch_size={self.batch_size}, "
            f"k={self.k}, effects={'+'.join(kinds)})"
        )
