"""Adversarial client models beyond :class:`PoisonedReports`.

Each adversary is a scenario effect (frozen, validated, registered in
:data:`~repro.scenarios.effects.EFFECT_KINDS`) that controls the trailing
``n_adversarial(step, batch)`` arrivals of each step's batch.  Ground
truth always stays the *honest* generating process — an adversary can
distort what the mechanism discovers, never what is true — so the PR-4
robustness metrics (time-resolved precision/recall/F1, detection latency)
score attacks and defenses without any new machinery.

The adversary seam (see :meth:`Scenario.iter_batches`) passes the step's
child generator ``step_gen`` *after* all honest sampling has been drawn
from it.  Deterministic adversaries (collusion, targeted promotion)
ignore it, leaving the honest stream bit-identical to the attack-free
run; :class:`ByzantineParties` draws from it, which keeps the whole
stream a pure function of the run seed — Byzantine runs replay exactly.

Catalog:

* :class:`ColludingParties` — the coalition coordinates on **one** target
  item per step (rotating through the target list), the strongest
  promotion pressure a fixed-size coalition can exert on a single
  candidate and the model the trimmed shard merge is designed to break.
* :class:`TargetedPromotion` — promotes the items ranked just *below*
  the true top-k, the subtle boundary attack: small per-item pressure,
  large F1 damage, hard to see in aggregate counts.
* :class:`ByzantineParties` — arbitrarily misbehaving clients: reports
  drawn uniformly from the whole bit domain (``mode="uniform"``) or from
  the reversed popularity law (``mode="reverse"``), modelling broken or
  maximally unhelpful clients rather than a coordinated attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Mapping

import numpy as np

from repro.scenarios.effects import (
    EFFECT_KINDS,
    ScenarioError,
    _from_mapping,
    _to_dict,
    resolve_attack_targets,
)
from repro.utils.validation import check_in_range, check_positive

#: Report laws a Byzantine party can follow.
BYZANTINE_MODES: tuple[str, ...] = ("uniform", "reverse")


def _check_coalition(fraction: float, start: int) -> None:
    check_in_range("fraction", fraction, 0.0, 1.0)
    if fraction == 0.0:
        raise ValueError("fraction must be > 0 (an empty coalition attacks nothing)")
    check_positive("start", start)


def _coalition_size(fraction: float, start: int, step: int, batch: int) -> int:
    if step < start:
        return 0
    return min(int(batch), int(round(fraction * batch)))


@dataclass(frozen=True)
class ColludingParties:
    """A coalition that coordinates all its reports on one item per step.

    From ``start`` on, the last ``round(fraction × batch)`` arrivals all
    report the *same* target: entry ``(step - start) mod len(targets)``
    of the target list.  Compared to :class:`PoisonedReports` (which
    cycles its targets within every batch) this concentrates the entire
    coalition's mass on a single candidate at a time — the worst case
    for a linear shard merge, and the model a trimmed merge defeats:
    the coalition's wire batches are nearly pure, so they land in the
    trimmed tail of the per-candidate rate distribution.
    """

    kind: ClassVar[str] = "collude"
    is_adversary: ClassVar[bool] = True
    fraction: float = 0.1
    start: int = 1
    items: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        _check_coalition(self.fraction, self.start)
        if self.items is not None:
            if not self.items:
                raise ValueError("items must be a non-empty list of target item ids")
            for item in self.items:
                if int(item) < 0:
                    raise ValueError(f"target item ids must be >= 0, got {item}")

    def resolve_targets(self, scenario) -> np.ndarray:
        return resolve_attack_targets(scenario, self.items)

    def n_adversarial(self, step: int, batch: int) -> int:
        return _coalition_size(self.fraction, self.start, step, batch)

    def adversarial_items(self, *, scenario, step, n, targets, step_gen) -> np.ndarray:
        target = int(targets[(step - self.start) % len(targets)])
        return np.full(n, target, dtype=np.int64)

    def to_dict(self) -> dict:
        return _to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping, *, source: str = "<scenario>") -> "ColludingParties":
        return _from_mapping(cls, data, source=source)


@dataclass(frozen=True)
class TargetedPromotion:
    """Promote the items ranked just below the true top-k boundary.

    The coalition splits its reports evenly (cycled) over the ``width``
    items ranked ``k+1 … k+width`` in the step's *honest* frequency
    order.  These runners-up need only a small push to displace the
    genuine tail of the top-k, so the attack trades per-item pressure
    for stealth: total injected mass is the same as a cold-item poison
    of equal fraction, but the damage concentrates exactly where
    precision-at-k is decided.  Targets re-resolve every step, so the
    attack tracks drift.
    """

    kind: ClassVar[str] = "promote"
    is_adversary: ClassVar[bool] = True
    fraction: float = 0.1
    start: int = 1
    #: How many boundary items to promote (``None``: the scenario's k).
    width: int | None = None

    def __post_init__(self) -> None:
        _check_coalition(self.fraction, self.start)
        if self.width is not None:
            check_positive("width", self.width)

    def resolve_targets(self, scenario) -> None:
        width = self.width if self.width is not None else scenario.k
        if scenario.k + width > scenario.n_items:
            raise ScenarioError(
                f"promotion width {width} leaves no runners-up below the "
                f"top-{scenario.k} of {scenario.n_items} items"
            )
        return None  # dynamic: targets depend on the step

    def n_adversarial(self, step: int, batch: int) -> int:
        return _coalition_size(self.fraction, self.start, step, batch)

    def adversarial_items(self, *, scenario, step, n, targets, step_gen) -> np.ndarray:
        width = self.width if self.width is not None else scenario.k
        freqs = scenario.frequencies(step)
        order = np.lexsort((scenario.item_ids, -freqs))
        runners = scenario.item_ids[order[scenario.k : scenario.k + width]]
        return np.resize(runners.astype(np.int64), n)

    def to_dict(self) -> dict:
        return _to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping, *, source: str = "<scenario>") -> "TargetedPromotion":
        return _from_mapping(cls, data, source=source)


@dataclass(frozen=True)
class ByzantineParties:
    """Arbitrarily misbehaving clients with no coordinated goal.

    ``mode="uniform"`` reports items drawn uniformly from the whole
    ``2**n_bits`` code space — including codes that are no item at all —
    modelling broken clients or garbage inputs.  ``mode="reverse"``
    draws from the honest step law with its rank order reversed — the
    maximally unhelpful *valid* population.  Both draw from the step's
    child generator after honest sampling, so runs replay bit-for-bit.
    """

    kind: ClassVar[str] = "byzantine"
    is_adversary: ClassVar[bool] = True
    fraction: float = 0.1
    start: int = 1
    mode: str = "uniform"

    def __post_init__(self) -> None:
        _check_coalition(self.fraction, self.start)
        if self.mode not in BYZANTINE_MODES:
            raise ScenarioError(
                f"unknown byzantine mode {self.mode!r}; "
                f"available: {sorted(BYZANTINE_MODES)}"
            )

    def resolve_targets(self, scenario) -> None:
        return None  # no fixed targets: reports are sampled per step

    def n_adversarial(self, step: int, batch: int) -> int:
        return _coalition_size(self.fraction, self.start, step, batch)

    def adversarial_items(self, *, scenario, step, n, targets, step_gen) -> np.ndarray:
        if self.mode == "uniform":
            return step_gen.integers(0, 1 << scenario.n_bits, size=n, dtype=np.int64)
        freqs = scenario.frequencies(step)
        reversed_law = freqs[::-1].copy()
        positions = step_gen.choice(
            scenario.n_items, size=n, p=reversed_law / reversed_law.sum()
        )
        return scenario.item_ids[positions].astype(np.int64)

    def to_dict(self) -> dict:
        return _to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping, *, source: str = "<scenario>") -> "ByzantineParties":
        return _from_mapping(cls, data, source=source)


#: Registered alongside the honest effects so ``effects:`` spec blocks and
#: the chaos matrix pick adversaries up through the same dispatch table.
ADVERSARY_KINDS: dict[str, type] = {
    cls.kind: cls for cls in (ColludingParties, TargetedPromotion, ByzantineParties)
}
EFFECT_KINDS.update(ADVERSARY_KINDS)
