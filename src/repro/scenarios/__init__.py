"""Scenario lab: declarative time-varying workloads + a robustness harness.

The paper evaluates frequency-oracle mechanisms over frozen populations.
This subsystem turns the streaming service into a testbed for the
deployment conditions that abstraction hides:

* :mod:`repro.scenarios.effects` — composable time-varying effects
  (:class:`DriftSchedule`, :class:`BurstArrivals`, :class:`PopulationChurn`,
  :class:`SkewShift`, :class:`PoisonedReports`);
* :mod:`repro.scenarios.adversaries` — adversarial client models beyond
  report poisoning (:class:`ColludingParties`, :class:`TargetedPromotion`,
  :class:`ByzantineParties`), scored with and without the robust shard
  merge (:class:`repro.faults.defense.RobustMergePolicy`);
* :mod:`repro.scenarios.scenario` — :class:`Scenario`, a base workload
  (:class:`BaseWorkload`) composed with effects into an arrival stream
  whose exact moving ground truth is known at every step;
* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, the validated
  ``scenario:`` document schema (embeddable in sweep specs, consumed by
  ``repro serve --scenario``);
* :mod:`repro.scenarios.harness` — :func:`run_scenario`, which drives a
  scenario through :class:`~repro.service.streaming.SlidingWindowDiscovery`
  and scores every snapshot against the moving truth (time-resolved
  precision/recall/F1, drift-detection latency, exact wire bits).

Determinism contract: a scenario's arrival stream is a function of the run
seed alone (one child seed per step, fanned out before sampling), the item
domain is a function of the spec's ``base.seed``, and harness records hold
no wall-clock values — so same-seed runs are bit-identical end to end,
persisted stores included.  The catalog with one runnable example per
effect lives in ``docs/scenarios.md``.
"""

from repro.scenarios.effects import (
    EFFECT_KINDS,
    BurstArrivals,
    DriftSchedule,
    PoisonedReports,
    PopulationChurn,
    ScenarioError,
    SkewShift,
    effect_from_dict,
)

# Imported after effects: registers the adversary kinds in EFFECT_KINDS.
from repro.scenarios.adversaries import (
    ADVERSARY_KINDS,
    ByzantineParties,
    ColludingParties,
    TargetedPromotion,
)
from repro.scenarios.harness import ScenarioReport, run_scenario, run_scenario_spec
from repro.scenarios.scenario import ArrivalBatch, BaseWorkload, Scenario
from repro.scenarios.spec import SCENARIO_KEYS, ScenarioSpec

__all__ = [
    "ADVERSARY_KINDS",
    "ArrivalBatch",
    "BaseWorkload",
    "BurstArrivals",
    "ByzantineParties",
    "ColludingParties",
    "DriftSchedule",
    "EFFECT_KINDS",
    "PoisonedReports",
    "PopulationChurn",
    "SCENARIO_KEYS",
    "Scenario",
    "ScenarioError",
    "ScenarioReport",
    "ScenarioSpec",
    "SkewShift",
    "TargetedPromotion",
    "effect_from_dict",
    "run_scenario",
    "run_scenario_spec",
]
