"""The robustness harness: drive a scenario through sliding-window discovery.

:func:`run_scenario` is the scenario lab's end-to-end loop: it streams a
scenario's arrival batches into a
:class:`~repro.service.streaming.SlidingWindowDiscovery` tracker (every
pass runs through the aggregation service, so wire bits are exact) and
scores each snapshot against the scenario's exact moving ground truth.
The output is one tidy record per snapshot — time-resolved
precision/recall/F1, window wire bits, poison counts, steps since the
last drift event — plus one record per drift event with its detection
latency.  Records are JSON-safe and contain no wall-clock values, so two
same-seed runs are bit-identical (persisted stores included).

Seeds follow the repo contract: the run seed fans out into one tracker
seed and one stream seed up front, so tracker passes and arrival sampling
are independent streams of the same root.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MechanismConfig
from repro.metrics.robustness import detection_latency, score_series
from repro.scenarios.scenario import Scenario
from repro.scenarios.spec import ScenarioSpec
from repro.service.streaming import SlidingWindowDiscovery
from repro.utils.rng import RandomState, as_generator, spawn_seeds
from repro.utils.tables import TextTable


@dataclass
class ScenarioReport:
    """Everything one :func:`run_scenario` call measured."""

    scenario: str
    config: dict = field(default_factory=dict)
    #: One JSON-safe record per discovery snapshot (see docs/reproducing.md).
    records: list = field(default_factory=list)
    #: One record per drift event: ``event_step``/``detected_step``/``latency_steps``.
    events: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "config": dict(self.config),
            "records": [dict(r) for r in self.records],
            "events": [dict(e) for e in self.events],
        }

    def render(self) -> str:
        """The per-snapshot robustness table plus drift-event summary."""
        table = TextTable(
            [
                "step",
                "users",
                "precision",
                "recall",
                "F1",
                "since drift",
                "poisoned",
                "upload (kB)",
            ]
        )
        for r in self.records:
            since = r["since_drift"]
            table.add_row(
                [
                    r["step"],
                    r["window_users"],
                    r["precision"],
                    r["recall"],
                    r["f1"],
                    "-" if since is None else since,
                    r["n_poisoned"],
                    r["upload_bits"] / 8e3,
                ]
            )
        title = "scenario: {name} oracle={oracle} eps={epsilon:g} window={window_batches} stride={stride}".format(
            name=self.scenario, **{
                k: self.config[k]
                for k in ("oracle", "epsilon", "window_batches", "stride")
            }
        )
        lines = [table.render(title=title)]
        for event in self.events:
            if event["latency_steps"] is None:
                lines.append(
                    f"drift @ step {event['event_step']}: never re-detected "
                    f"(recall stayed below {self.config.get('detection_recall')})"
                )
            else:
                lines.append(
                    f"drift @ step {event['event_step']}: detected @ step "
                    f"{event['detected_step']} (latency {event['latency_steps']} steps)"
                )
        return "\n".join(lines)


def run_scenario(
    scenario: Scenario,
    *,
    config: MechanismConfig | None = None,
    epsilon: float = 4.0,
    oracle: str = "krr",
    granularity: int | None = None,
    window_batches: int = 4,
    stride: int = 1,
    seed: RandomState = 0,
    store=None,
    detection_recall: float = 0.5,
    backend: str | None = None,
    max_workers: int | None = None,
    defense: str | None = None,
    defense_fraction: float = 0.25,
    report_batch_size: int | None = None,
    name: str | None = None,
) -> ScenarioReport:
    """Run one scenario through the tracker and score every snapshot.

    Parameters
    ----------
    scenario:
        The workload (typically ``ScenarioSpec.build()``).
    config:
        Full protocol configuration; when given it must carry the
        scenario's ``n_bits``.  The remaining protocol knobs
        (``epsilon``/``oracle``/``granularity``/``backend``/``defense``/
        ``report_batch_size``) build one when it is ``None``.
    window_batches / stride:
        Tracker cadence (see :class:`SlidingWindowDiscovery`).
    seed:
        Run seed; two equal-seed runs produce bit-identical records.
    store:
        Optional sink with an ``append(record)`` method — e.g.
        :class:`repro.experiments.store.ScenarioSnapshotStore` — receiving
        each snapshot record the moment its pass completes.
    detection_recall:
        Recall bar a snapshot must reach to count as having re-detected
        the truth after a drift event.
    defense / defense_fraction:
        Robust shard-merge policy for the tracker's aggregation passes
        (see :mod:`repro.faults.defense`); the knob the adversary goldens
        flip to compare attacked runs with and without the defense.
    report_batch_size:
        Wire-batch bound for the tracker's service passes — the defense's
        aggregation sources; small batches give the robust merge more
        sources to trim.
    """
    if config is None:
        levels = granularity if granularity is not None else min(4, scenario.n_bits)
        config = MechanismConfig(
            k=scenario.k,
            epsilon=epsilon,
            n_bits=scenario.n_bits,
            granularity=min(levels, scenario.n_bits),
            oracle=oracle,
            simulation_mode="per_user",
            backend=backend or "serial",
            max_workers=max_workers,
            defense=defense,
            defense_fraction=defense_fraction,
            report_batch_size=report_batch_size,
        )
    elif config.n_bits != scenario.n_bits:
        raise ValueError(
            f"config.n_bits ({config.n_bits}) must match the scenario's "
            f"item domain ({scenario.n_bits} bits)"
        )
    # Mirrors ScenarioSpec's document-level check: explicit overrides
    # (e.g. `repro serve --window`) must not silently yield a run with
    # zero snapshots.
    if window_batches > scenario.n_steps:
        raise ValueError(
            f"window_batches ({window_batches}) exceeds the scenario's "
            f"n_steps ({scenario.n_steps}); the window would never fill"
        )
    gen = as_generator(seed)
    tracker_seed, stream_seed = spawn_seeds(gen, 2)
    tracker = SlidingWindowDiscovery(
        config,
        window_batches=window_batches,
        stride=stride,
        rng=tracker_seed,
        top_k=scenario.k,
    )
    drift_events = scenario.drift_steps()
    records: list[dict] = []
    with tracker:
        for batch in scenario.iter_batches(stream_seed):
            snapshot = tracker.push(batch.items)
            if snapshot is None:
                continue
            scores = score_series(
                [(snapshot.step, snapshot.heavy_hitters)],
                {snapshot.step: batch.true_top_k},
            )[0]
            past_events = [s for s in drift_events if s <= snapshot.step]
            record = {
                **scores,
                "window_users": int(snapshot.n_users),
                "since_drift": snapshot.step - past_events[-1] if past_events else None,
                "n_poisoned": int(batch.n_poisoned),
                "upload_bits": int(snapshot.upload_bits),
                "broadcast_bits": int(snapshot.broadcast_bits),
                "heavy_hitters": [int(item) for item in snapshot.heavy_hitters],
                "true_top_k": [int(item) for item in batch.true_top_k],
            }
            records.append(record)
            if store is not None:
                store.append(record)
    events = []
    scored = [(r["step"], r["recall"]) for r in records]
    for event_step in drift_events:
        latency = detection_latency(event_step, scored, threshold=detection_recall)
        events.append(
            {
                "event_step": int(event_step),
                "detected_step": None if latency is None else int(event_step + latency),
                "latency_steps": latency,
            }
        )
    report_config = {
        "epsilon": float(config.epsilon),
        "oracle": config.oracle,
        "granularity": int(config.granularity),
        "n_bits": int(config.n_bits),
        "k": int(scenario.k),
        "window_batches": int(window_batches),
        "stride": int(stride),
        "detection_recall": float(detection_recall),
        "n_steps": int(scenario.n_steps),
        "batch_size": int(scenario.batch_size),
    }
    if config.defense is not None:
        # Conditional so undefended reports stay byte-identical to those
        # written before the defense existed.
        report_config["defense"] = config.defense
        report_config["defense_fraction"] = float(config.defense_fraction)
    return ScenarioReport(
        scenario=name or "scenario",
        config=report_config,
        records=records,
        events=events,
    )


def run_scenario_spec(
    spec: ScenarioSpec,
    *,
    epsilon: float = 4.0,
    oracle: str = "krr",
    granularity: int | None = None,
    window_batches: int | None = None,
    stride: int | None = None,
    seed: RandomState = 0,
    store=None,
    detection_recall: float = 0.5,
    backend: str | None = None,
    max_workers: int | None = None,
    defense: str | None = None,
    defense_fraction: float = 0.25,
    report_batch_size: int | None = None,
) -> ScenarioReport:
    """Build and run a declarative spec (what ``repro serve --scenario`` calls).

    The spec's tracker cadence is the default; explicit
    ``window_batches``/``stride`` override it.
    """
    return run_scenario(
        spec.build(),
        epsilon=epsilon,
        oracle=oracle,
        granularity=granularity,
        window_batches=window_batches if window_batches is not None else spec.window_batches,
        stride=stride if stride is not None else spec.stride,
        seed=seed,
        store=store,
        detection_recall=detection_recall,
        backend=backend,
        max_workers=max_workers,
        defense=defense,
        defense_fraction=defense_fraction,
        report_batch_size=report_batch_size,
        name=spec.name,
    )
