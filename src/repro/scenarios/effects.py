"""Time-varying workload effects composable into a :class:`~repro.scenarios.scenario.Scenario`.

The batch mechanisms evaluate frequency oracles over frozen populations;
deployments face populations that *move*.  Each effect below is one
deployment condition the paper abstracts away, expressed as a pure,
deterministic transformation of the scenario's generating process:

* :class:`DriftSchedule` — the heavy-hitter set swaps (abruptly, along a
  gradual ramp, or cyclically);
* :class:`BurstArrivals` — arrival batches are non-uniform in size;
* :class:`PopulationChurn` — users enter and leave a persistent population
  between windows, so the observable stream lags the generating law;
* :class:`SkewShift` — per-party Zipf exponents drift over time;
* :class:`PoisonedReports` — a coalition of clients submits adversarial
  supports to promote attacker-chosen items.

Effects never touch an RNG themselves: they reshape either the exact
per-step frequency vector (drift, skew) or the sampling recipe (burst,
churn, poison), and all sampling randomness is drawn from the scenario's
per-step child seeds (see :meth:`Scenario.iter_batches`).  The one
refinement: *adversary* effects (``is_adversary=True``; this module's
:class:`PoisonedReports` plus the catalog in
:mod:`repro.scenarios.adversaries`) may draw from the step generator
**after** all honest sampling, so the honest stream never depends on the
attack.  Steps are 1-based throughout, matching ``WindowSnapshot.step``.

Every effect round-trips through ``to_dict``/``from_dict`` with the same
unknown-key validation as the sweep specs, so a ``scenario:`` block in a
spec document fails loudly with the offending key named.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping

import numpy as np

from repro.utils.validation import (
    check_in_range,
    check_known_keys,
    check_positive,
    check_probability,
)


class ScenarioError(ValueError):
    """A scenario description is malformed; the message names the problem."""


def _from_mapping(cls, data: Mapping[str, Any], *, source: str):
    """Shared ``from_dict``: unknown-key check, list→tuple, clear errors."""
    if not isinstance(data, Mapping):
        raise ScenarioError(
            f"{source}: a {cls.kind!r} effect must be a mapping, "
            f"got {type(data).__name__}"
        )
    payload = {k: v for k, v in data.items() if k != "kind"}
    allowed = tuple(f.name for f in dataclasses.fields(cls))
    check_known_keys(
        payload, allowed, where=f"{cls.kind} effect", source=source, error=ScenarioError
    )
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in payload.items()
    }
    try:
        return cls(**kwargs)
    except ScenarioError:
        raise
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"{source}: invalid {cls.kind!r} effect: {exc}") from exc


def _to_dict(effect) -> dict:
    """JSON-safe document form of an effect (tuples become lists)."""
    out: dict[str, Any] = {"kind": effect.kind}
    for f in dataclasses.fields(effect):
        value = getattr(effect, f.name)
        if isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def resolve_attack_targets(scenario, items) -> np.ndarray:
    """Fixed target items of a promotion-style adversary.

    Explicit ``items`` are validated against the scenario's bit domain;
    with ``items=None`` the targets default to the coldest items that
    never enter the moving truth at any step, so precision cleanly
    measures the attack (explicit items are the operator's choice and
    may overlap the truth deliberately).  Shared by every adversary with
    a static target list (:class:`PoisonedReports`,
    :class:`~repro.scenarios.adversaries.ColludingParties`).
    """
    if items is not None:
        limit = 1 << scenario.n_bits
        bad = [int(i) for i in items if int(i) >= limit]
        if bad:
            raise ScenarioError(
                f"poison target items {bad} exceed the {scenario.n_bits}-bit domain"
            )
        return np.asarray(items, dtype=np.int64)
    ever_true = set()
    for step in range(1, scenario.n_steps + 1):
        ever_true.update(scenario.true_top_k(step))
    cold = [
        int(item) for item in scenario.item_ids[::-1] if int(item) not in ever_true
    ][: scenario.k]
    if not cold:
        raise ScenarioError(
            "every item enters the moving top-k at some step; "
            "pass explicit poison target items"
        )
    return np.asarray(cold, dtype=np.int64)


@dataclass(frozen=True)
class DriftSchedule:
    """Swap the heavy-hitter set over time.

    The scenario holds one popularity law over ranks and two rank→item
    assignments: the base assignment and a copy rotated by ``rotation``
    positions (so under full drift the hottest ranks land on previously
    cold items).  At step ``t`` the frequency vector is the convex blend
    ``(1-w(t))·base + w(t)·rotated``:

    * ``abrupt`` — ``w`` jumps 0→1 at ``start``;
    * ``gradual`` — ``w`` ramps linearly over ``duration`` steps from
      ``start``;
    * ``cyclic`` — ``w`` follows a triangle wave of period ``period``
      from ``start`` (old and new regimes alternate forever).

    ``rotation=None`` rotates by the scenario's ``k``, displacing the
    entire true top-k.
    """

    kind: ClassVar[str] = "drift"
    mode: str = "abrupt"
    start: int = 1
    duration: int = 4
    period: int = 8
    rotation: int | None = None

    MODES: ClassVar[tuple[str, ...]] = ("abrupt", "gradual", "cyclic")

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise ScenarioError(
                f"unknown drift mode {self.mode!r}; available: {sorted(self.MODES)}"
            )
        check_positive("start", self.start)
        check_positive("duration", self.duration)
        if self.period < 2:
            raise ValueError(f"period must be >= 2, got {self.period}")
        if self.rotation is not None:
            check_positive("rotation", self.rotation)

    def weight(self, step: int) -> float:
        """Blend weight of the rotated assignment at 1-based ``step``."""
        if step < self.start:
            return 0.0
        if self.mode == "abrupt":
            return 1.0
        if self.mode == "gradual":
            return min(1.0, (step - self.start + 1) / self.duration)
        phase = (step - self.start) % self.period
        half = self.period / 2.0
        return phase / half if phase <= half else (self.period - phase) / half

    def to_dict(self) -> dict:
        return _to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping, *, source: str = "<scenario>") -> "DriftSchedule":
        return _from_mapping(cls, data, source=source)


@dataclass(frozen=True)
class BurstArrivals:
    """Non-uniform batch sizes: every ``period``-th step is a burst.

    From ``start`` on, steps where ``(step - start) % period == 0`` carry
    ``round(magnitude × batch_size)`` arrivals instead of ``batch_size``.
    A ``magnitude`` below 1 models droughts.
    """

    kind: ClassVar[str] = "burst"
    period: int = 4
    magnitude: float = 4.0
    start: int = 1

    def __post_init__(self) -> None:
        check_positive("period", self.period)
        check_positive("magnitude", self.magnitude)
        check_positive("start", self.start)

    def batch_size(self, step: int, base: int) -> int:
        """Arrivals at 1-based ``step`` given the scenario's base size."""
        if step >= self.start and (step - self.start) % self.period == 0:
            return max(1, int(round(base * self.magnitude)))
        return int(base)

    def to_dict(self) -> dict:
        return _to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping, *, source: str = "<scenario>") -> "BurstArrivals":
        return _from_mapping(cls, data, source=source)


@dataclass(frozen=True)
class PopulationChurn:
    """Users enter and leave a persistent population between steps.

    The scenario keeps a population of ``population_size`` users (default:
    twice the base batch size).  It is drawn from the step-1 distribution;
    every later step replaces a ``rate`` fraction — chosen uniformly —
    with fresh users drawn from the *current* distribution, and each
    arrival batch samples the population uniformly.  The observable stream
    therefore lags the generating law: after a drift event the window
    keeps seeing departed users' items until churn washes them out.
    """

    kind: ClassVar[str] = "churn"
    rate: float = 0.25
    population_size: int | None = None

    def __post_init__(self) -> None:
        check_probability("rate", self.rate)
        if self.rate == 0.0:
            raise ValueError("rate must be > 0 (a zero-churn population never moves)")
        if self.population_size is not None:
            check_positive("population_size", self.population_size)

    def to_dict(self) -> dict:
        return _to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping, *, source: str = "<scenario>") -> "PopulationChurn":
        return _from_mapping(cls, data, source=source)


@dataclass(frozen=True)
class SkewShift:
    """Per-party Zipf-exponent heterogeneity that drifts over time.

    The population becomes a mixture of ``len(exponents)`` parties; party
    ``j`` holds a ``shares[j]`` fraction of each batch (equal shares by
    default) and draws from a Zipf law over the scenario's base item
    ordering with exponent ``exponents[j] + drift_per_step · (step - 1)``
    (floored at 0.05 so the law stays well-defined).  Positive drift
    steepens every party — mass concentrates on the head; negative drift
    flattens them toward uniform.  Replaces the base popularity law; the
    moving ground truth is the pooled mixture.
    """

    kind: ClassVar[str] = "skew"
    exponents: tuple[float, ...] = (1.1, 1.7)
    drift_per_step: float = 0.0
    shares: tuple[float, ...] | None = None

    MIN_EXPONENT: ClassVar[float] = 0.05

    def __post_init__(self) -> None:
        if not self.exponents:
            raise ValueError("exponents must name at least one party")
        for value in self.exponents:
            check_positive("exponent", value)
        if self.shares is not None:
            if len(self.shares) != len(self.exponents):
                raise ValueError(
                    f"shares ({len(self.shares)}) must align with "
                    f"exponents ({len(self.exponents)})"
                )
            for value in self.shares:
                check_positive("share", value)

    @property
    def n_parties(self) -> int:
        return len(self.exponents)

    def normalized_shares(self) -> tuple[float, ...]:
        """Party mixture weights, summing to one."""
        shares = self.shares or tuple(1.0 for _ in self.exponents)
        total = float(sum(shares))
        return tuple(s / total for s in shares)

    def exponent(self, party: int, step: int) -> float:
        """Party ``party``'s Zipf exponent at 1-based ``step``."""
        return max(
            self.MIN_EXPONENT,
            self.exponents[party] + self.drift_per_step * (step - 1),
        )

    def to_dict(self) -> dict:
        return _to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping, *, source: str = "<scenario>") -> "SkewShift":
        return _from_mapping(cls, data, source=source)


@dataclass(frozen=True)
class PoisonedReports:
    """A coalition of clients submits adversarial supports.

    From ``start`` on, the last ``round(fraction × batch)`` arrivals of
    every batch are attacker-controlled: their items are replaced by the
    ``items`` targets, cycled.  The default targets are the scenario's
    coldest items *that never enter the moving top-k at any step* — the
    classic promotion attack — so ground truth stays honest and the
    per-snapshot precision directly measures how far the attack pushes
    fabricated items into the discovered set.  Explicit ``items`` are the
    operator's choice and may deliberately overlap the truth.
    """

    kind: ClassVar[str] = "poison"
    is_adversary: ClassVar[bool] = True
    fraction: float = 0.05
    start: int = 1
    items: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        check_in_range("fraction", self.fraction, 0.0, 1.0)
        if self.fraction == 0.0:
            raise ValueError("fraction must be > 0 (an empty coalition poisons nothing)")
        check_positive("start", self.start)
        if self.items is not None:
            if not self.items:
                raise ValueError("items must be a non-empty list of target item ids")
            for item in self.items:
                if int(item) < 0:
                    raise ValueError(f"target item ids must be >= 0, got {item}")

    def n_poisoned(self, step: int, batch: int) -> int:
        """Adversarial reports inside a size-``batch`` step-``step`` batch."""
        if step < self.start:
            return 0
        return min(int(batch), int(round(self.fraction * batch)))

    # Adversary protocol (see repro.scenarios.adversaries).
    def resolve_targets(self, scenario) -> np.ndarray:
        return resolve_attack_targets(scenario, self.items)

    def n_adversarial(self, step: int, batch: int) -> int:
        return self.n_poisoned(step, batch)

    def adversarial_items(self, *, scenario, step, n, targets, step_gen) -> np.ndarray:
        return np.resize(targets, n)

    def to_dict(self) -> dict:
        return _to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping, *, source: str = "<scenario>") -> "PoisonedReports":
        return _from_mapping(cls, data, source=source)


#: Effect kind → class, the dispatch table for ``effects:`` spec entries.
EFFECT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (DriftSchedule, BurstArrivals, PopulationChurn, SkewShift, PoisonedReports)
}


def effect_from_dict(data: Mapping, *, source: str = "<scenario>"):
    """Build one effect from its document form, dispatching on ``kind``."""
    if not isinstance(data, Mapping):
        raise ScenarioError(
            f"{source}: each effect must be a mapping with a 'kind' key, "
            f"got {type(data).__name__}"
        )
    kind = data.get("kind")
    if kind not in EFFECT_KINDS:
        raise ScenarioError(
            f"{source}: unknown effect kind {kind!r}; "
            f"available: {sorted(EFFECT_KINDS)}"
        )
    return EFFECT_KINDS[kind].from_dict(data, source=source)
