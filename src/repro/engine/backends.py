"""Execution backends: one abstraction over serial, threaded and process execution.

The engine's contract has three parts, all of them required for the
"identical results on every backend" guarantee the test suite enforces:

**Result ordering.**  :meth:`ExecutionBackend.map_tasks` always returns one
result per task *in task order*, no matter which worker finished first.

**Error propagation.**  The first (by task order) finished failure is
re-raised in the caller with its original type, after all still-pending
futures have been cancelled.  Serial and parallel execution therefore fail
with the same exception type on the same input.

**Seed fan-out.**  :meth:`ExecutionBackend.map_seeded` draws one integer
seed per task from a parent generator — in a single ordered batch, *before*
anything is dispatched (see :func:`repro.utils.rng.spawn_seeds`) — and
passes it to the task function.  Randomness is thereby a function of the
task index alone, never of scheduling.

Nested parallelism is governed centrally: a :class:`ProcessBackend` marks
its workers (``REPRO_ENGINE_WORKER``), and :func:`get_backend` resolves a
``"process"`` request made *inside* such a worker to a
:class:`SerialBackend`.  A sweep running cells in processes can therefore
leave ``MechanismConfig.backend = "process"`` set without forking storms.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import (
    FIRST_EXCEPTION,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Any, Callable, Iterable, Sequence

from repro.utils.rng import RandomState, as_generator, spawn_seeds

#: Environment flag set in ProcessBackend workers to suppress nested forking.
_WORKER_ENV = "REPRO_ENGINE_WORKER"


def in_worker_process() -> bool:
    """True when the current process is an engine-managed worker."""
    return os.environ.get(_WORKER_ENV) == "1"


def _mark_worker() -> None:
    """Process-pool initializer: tag the worker so nested forks degrade."""
    os.environ[_WORKER_ENV] = "1"


class ExecutionBackend(abc.ABC):
    """Runs independent tasks and returns their results in task order."""

    #: Stable identifier used in configuration and benchmark output.
    name: str = "backend"

    @abc.abstractmethod
    def submit(self, fn: Callable[..., Any], *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)`` and return a future for its result."""

    def map_tasks(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list:
        """Run ``fn`` over every task; ordered results, first error re-raised."""
        futures = [self.submit(fn, task) for task in tasks]
        return self.gather(futures)

    def map_seeded(
        self,
        fn: Callable[[Any, int], Any],
        tasks: Sequence[Any],
        rng: RandomState = None,
    ) -> list:
        """Run ``fn(task, seed)`` with per-task seeds fanned out up front."""
        tasks = list(tasks)
        seeds = spawn_seeds(as_generator(rng), len(tasks))
        futures = [self.submit(fn, task, seed) for task, seed in zip(tasks, seeds)]
        return self.gather(futures)

    @staticmethod
    def gather(futures: Sequence[Future]) -> list:
        """Collect results in submission order, re-raising the first failure.

        "First" is by submission order among the tasks that have *finished*
        when the failure surfaces — only done futures are inspected, so an
        early long-running task never delays the error of a later one, and
        pending tasks are cancelled before the exception is raised.
        """
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        failed = [f for f in done if f.exception() is not None]
        if failed:
            for future in not_done:
                future.cancel()
            indices = {id(f): i for i, f in enumerate(futures)}
            earliest = min(failed, key=lambda f: indices[id(f)])
            raise earliest.exception()
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        """Release worker resources (no-op for the serial backend)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Runs every task inline, in order — the default and reference backend."""

    name = "serial"

    def submit(self, fn: Callable[..., Any], *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - propagated via the future
            future.set_exception(exc)
        return future

    def map_tasks(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list:
        # Inline loop: identical to the pre-engine code path, and fails fast
        # on the first error without touching the remaining tasks.
        return [fn(task) for task in tasks]


class _PoolBackend(ExecutionBackend):
    """Shared machinery for executor-pool backends (threads / processes)."""

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self._executor = None

    @abc.abstractmethod
    def _make_executor(self):
        """Create the underlying concurrent.futures executor."""

    @property
    def executor(self):
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def submit(self, fn: Callable[..., Any], *args, **kwargs) -> Future:
        return self.executor.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadBackend(_PoolBackend):
    """Thread-pool backend: cheap dispatch, shares memory with the caller.

    Tasks must confine their mutations to task-local objects (the engine's
    party/cell tasks do); NumPy releases the GIL in its hot loops, so the
    oracle rounds overlap even under CPython.
    """

    name = "thread"

    def _make_executor(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-engine"
        )


class ProcessBackend(_PoolBackend):
    """Process-pool backend: true parallelism, tasks and results are pickled.

    Task functions must be importable (module-level functions or methods of
    picklable instances).  Workers are tagged via ``REPRO_ENGINE_WORKER`` so
    that nested ``"process"`` requests degrade to serial execution instead
    of forking from a fork.
    """

    name = "process"

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.max_workers, initializer=_mark_worker
        )


def split_ranges(total: int, n_chunks: int) -> list[tuple[int, int]]:
    """Partition ``range(total)`` into up to ``n_chunks`` contiguous ranges.

    The decomposition unit of sharded work (e.g. OLH candidate-domain
    decoding in :mod:`repro.service.shards`): ranges are near-equal, ordered
    and cover the domain exactly, so per-range results concatenate to the
    full-domain result regardless of which backend ran them.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    if total == 0:
        return [(0, 0)]
    n_chunks = min(n_chunks, total)
    base, extra = divmod(total, n_chunks)
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(n_chunks):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


#: Backend registry: name → constructor accepting ``max_workers``.
BACKENDS: dict[str, Callable[..., ExecutionBackend]] = {
    "serial": lambda max_workers=None: SerialBackend(),
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def available_backends() -> tuple[str, ...]:
    """Names of the registered execution backends."""
    return tuple(BACKENDS)


def get_backend(
    spec: str | ExecutionBackend | None,
    max_workers: int | None = None,
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through) to a backend.

    ``None`` resolves to the serial backend.  A ``"process"`` request made
    inside an engine worker process resolves to serial — this is the single
    place where nested (cells × parties) parallelism is reined in.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    key = (spec or "serial").lower()
    if key not in BACKENDS:
        raise KeyError(f"unknown backend {spec!r}; available: {sorted(BACKENDS)}")
    if key == "process" and in_worker_process():
        key = "serial"
    return BACKENDS[key](max_workers=max_workers)
