"""Pluggable execution engine: parallel parties and parallel sweep cells.

The paper's protocols are embarrassingly parallel along two axes — across
*parties* in phase II of TAP (and in every round of FedPEM/GTF/PEM), and
across *sweep cells* in every figure/table reproduction.  This subsystem
puts both behind one abstraction so callers pick an execution strategy
without touching protocol code.

Backends
--------
``serial``
    The default.  Runs tasks inline, in order; bit-for-bit identical to the
    historical single-threaded code path.
``thread``
    A :class:`concurrent.futures.ThreadPoolExecutor`.  Cheap dispatch and
    shared memory; parallel speedup comes from NumPy releasing the GIL in
    the frequency-oracle hot loops.
``process``
    A :class:`concurrent.futures.ProcessPoolExecutor`.  True multi-core
    parallelism; tasks and results cross the boundary via pickle.

Determinism contract
--------------------
Every stochastic task receives its RNG seed *before* dispatch, derived in
task order from the caller's generator (:func:`repro.utils.rng.spawn_seeds`).
Results are returned in task order, and shared state (privacy accounting,
protocol transcripts) is only ever merged by the caller in task order.
Consequently all backends produce identical results for a fixed seed,
regardless of worker count or scheduling — the property
``tests/test_engine_determinism.py`` pins down.

Where the knobs live
--------------------
* :class:`repro.core.config.MechanismConfig` — ``backend`` / ``max_workers``
  select how a mechanism runs its *parties*.
* :class:`repro.experiments.runner.ExperimentSettings` — ``backend`` /
  ``max_workers`` select how a sweep runs its *cells*, and
  ``party_backend`` is forwarded into each cell's ``MechanismConfig``.

Nested parallelism (cells × parties) is governed in
:func:`get_backend`: a ``"process"`` request made inside an engine worker
process resolves to serial, so ``backend="process"`` at both layers never
forks from a fork.
"""

from repro.engine.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
    in_worker_process,
    split_ranges,
)
from repro.utils.rng import spawn_seeds as fan_out_seeds

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "available_backends",
    "fan_out_seeds",
    "get_backend",
    "in_worker_process",
    "split_ranges",
]
