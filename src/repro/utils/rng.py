"""Deterministic random-number handling.

Every stochastic component in the library accepts either ``None`` (fresh
entropy), an integer seed, or a :class:`numpy.random.Generator`.  Funnelling
the conversion through :func:`as_generator` keeps experiments reproducible:
a single seed at the top level deterministically drives the whole pipeline
because children are spawned through :func:`spawn_children` rather than by
re-seeding with magic constants.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

#: Accepted seed-like inputs throughout the library.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, an existing ``Generator``
        (returned unchanged), or a ``SeedSequence``.

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def spawn_seeds(rng: np.random.Generator, n: int) -> list[int]:
    """Derive ``n`` independent integer child seeds from ``rng``.

    This is the explicit, ordered seed contract of the execution engine:
    seeds are drawn in a single batch *before* any task is dispatched, so
    task ``i`` receives the same seed regardless of which backend runs it,
    in which order, or on how many workers.  Plain integers (rather than
    generators) cross process boundaries cheaply and unambiguously.
    """
    if n < 0:
        raise ValueError(f"number of children must be non-negative, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [int(s) for s in seeds]


def spawn_children(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    The children are produced by drawing fresh 64-bit seeds from the parent
    (see :func:`spawn_seeds`), which keeps the parent usable afterwards and
    makes the fan-out deterministic given the parent's state.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, n)]


def stable_choice(
    rng: np.random.Generator, options: Iterable, size: Optional[int] = None
):
    """Uniformly choose from ``options`` after materialising them as a list.

    ``numpy.random.Generator.choice`` silently converts string sequences to
    arrays which can truncate dtype widths; this helper avoids that by
    choosing indices and mapping back.
    """
    opts = list(options)
    if not opts:
        raise ValueError("cannot choose from an empty sequence")
    if size is None:
        return opts[int(rng.integers(0, len(opts)))]
    idx = rng.integers(0, len(opts), size=size)
    return [opts[int(i)] for i in idx]
