"""Shared utilities: RNG handling, validation helpers and text rendering.

These helpers are deliberately dependency-free (beyond numpy) so that every
other subpackage can import them without creating import cycles.
"""

from repro.utils.rng import RandomState, as_generator, spawn_children
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_in_range,
    check_non_empty,
    check_type,
)
from repro.utils.tables import TextTable

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_children",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_non_empty",
    "check_type",
    "TextTable",
]
