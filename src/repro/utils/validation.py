"""Input-validation helpers with consistent error messages.

The library is used both programmatically and from benchmark sweeps; clear
validation errors at the public API boundary are cheaper than debugging a
silently wrong simulation.
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Sized


def check_positive(name: str, value: Real, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (``>= 0`` if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: Real) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= float(value) <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")


def check_in_range(
    name: str,
    value: Real,
    low: Real,
    high: Real,
    *,
    inclusive: bool = True,
) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high`` (or strict bounds)."""
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bounds = "[{}, {}]" if inclusive else "({}, {})"
        raise ValueError(
            f"{name} must lie in {bounds.format(low, high)}, got {value!r}"
        )


def check_non_empty(name: str, value: Sized) -> None:
    """Raise ``ValueError`` if ``value`` has zero length."""
    if len(value) == 0:
        raise ValueError(f"{name} must not be empty")


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = ", ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(f"{name} must be of type {names}, got {type(value).__name__}")


def check_known_keys(
    mapping: "Any",
    allowed: "Any",
    *,
    where: str,
    source: str,
    error: type = ValueError,
) -> None:
    """Raise ``error`` naming any key of ``mapping`` not in ``allowed``.

    The shared validator behind every spec/config ``from_dict``: operator
    input gets one uniform "unknown X key(s) [...]; allowed: [...]" message
    that always names the offending keys and the source document.
    """
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise error(
            f"{source}: unknown {where} key(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )
