"""Minimal plain-text table renderer used by the experiment harness.

The paper reports results as tables and line plots; the benchmark harness
regenerates them as aligned text tables so the output can be eyeballed in a
terminal and diffed against ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class TextTable:
    """Accumulate rows and render them as an aligned monospace table.

    Examples
    --------
    >>> t = TextTable(["mechanism", "F1"])
    >>> t.add_row(["TAPS", 0.83])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], *, float_format: str = "{:.4f}"):
        if not headers:
            raise ValueError("headers must not be empty")
        self.headers = [str(h) for h in headers]
        self.float_format = float_format
        self._rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        """Append a row; floats are formatted with ``float_format``."""
        cells = [self._format_cell(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.headers)} columns"
            )
        self._rows.append(cells)

    def _format_cell(self, cell: Any) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return self.float_format.format(cell)
        return str(cell)

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def render(self, *, title: str | None = None) -> str:
        """Render the table as a string with padded columns."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if title:
            lines.append(title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_records(self) -> list[dict[str, str]]:
        """Return the rows as a list of header → cell dictionaries."""
        return [dict(zip(self.headers, row)) for row in self._rows]
