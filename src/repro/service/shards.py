"""Mergeable per-level support-count accumulators.

A :class:`LevelShard` is the server-side state of one frequency-oracle round
in the online aggregation service: an ``O(domain_size)`` integer vector that
report batches are folded into as they arrive.  Because support counting is
a sum, shards form a commutative monoid under :meth:`LevelShard.merge` —
ingesting a report stream whole, in any batching, or in separately-built
shards that are merged afterwards all produce identical counts (the algebra
``tests/test_service_shards.py`` pins down).

OLH is the computation-heavy oracle (decoding a batch costs a full candidate
scan), so :class:`OLHDecodeShard` additionally splits the candidate domain
into contiguous ranges and decodes them as independent tasks on an execution
backend (:mod:`repro.engine`).  Counts are exact integers, so the sharded
decode is bit-identical on every backend.
"""

from __future__ import annotations

import numpy as np

from repro.engine import ExecutionBackend, get_backend, split_ranges
from repro.ldp.base import FrequencyOracle
from repro.ldp.olh import OptimizedLocalHashing
from repro.ldp.packed import PackedUnaryReports


class ShardError(ValueError):
    """A shard operation violates the accumulator contract."""


class LevelShard:
    """Accumulates the support counts of one (party, level) round.

    Parameters
    ----------
    oracle:
        The frequency oracle whose reports the shard ingests.
    domain_size:
        Candidate-domain size (dummy included) of the round.
    defense:
        Optional robust-merge policy (duck-typed:
        ``apply(batch_counts, batch_users, domain_size) -> int64 counts``,
        e.g. :class:`repro.faults.defense.RobustMergePolicy`).  When set,
        the shard additionally records each ingested batch as a separate
        aggregation source so :meth:`effective_counts` can merge them
        robustly instead of linearly.  ``None`` (the default) keeps the
        exact-sum algebra and its bit-identity contract untouched.
    """

    def __init__(
        self, oracle: FrequencyOracle, domain_size: int, *, defense=None
    ):
        if domain_size < 1:
            raise ShardError(f"domain_size must be positive, got {domain_size}")
        self.oracle = oracle
        self.domain_size = int(domain_size)
        self.counts = np.zeros(self.domain_size, dtype=np.int64)
        self.n_users = 0
        self.n_batches = 0
        self.defense = defense
        #: Per-source (delta counts, n_users) pairs, kept only when defended.
        self._sources: list[tuple[np.ndarray, int]] | None = (
            [] if defense is not None else None
        )

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, reports: object) -> int:
        """Fold one report batch into the accumulator; returns its size."""
        n = self.oracle.n_reports(reports)
        decoded = self._decode(reports)
        if self._sources is not None:
            self._sources.append((decoded - self.counts, n))
        self.counts = decoded
        self.n_users += n
        self.n_batches += 1
        return n

    def _decode(self, reports: object) -> np.ndarray:
        if isinstance(reports, PackedUnaryReports):
            # Columnar hot path: fold the packed wire form directly.  The
            # base-class implementation of ``accumulate_packed`` unpacks
            # first, so every oracle keeps working — unary oracles just
            # skip the (n, d) matrix entirely.
            return self.oracle.accumulate_packed(
                self.counts, reports, self.domain_size
            )
        return self.oracle.accumulate(self.counts, reports, self.domain_size)

    def ingest_counts(
        self, counts: np.ndarray, n_users: int, *, n_batches: int = 1
    ) -> int:
        """Fold pre-computed exact support counts into the accumulator.

        The server-side half of the columnar decode fan-out: an engine
        worker summarises a wire batch into its ``O(domain_size)`` count
        vector (:mod:`repro.service.columnar`) and only that vector
        reaches the shard.  Counts are exact integers, so this is
        bit-identical to :meth:`ingest` of the batch it summarises.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.domain_size,):
            raise ShardError(
                f"summary counts have shape {counts.shape}, "
                f"expected ({self.domain_size},)"
            )
        n = int(n_users)
        if n < 0:
            raise ShardError(f"n_users must be non-negative, got {n}")
        if self._sources is not None:
            self._sources.append((counts.copy(), n))
        self.counts = self.oracle.merge_counts(self.counts, counts)
        self.n_users += n
        self.n_batches += int(n_batches)
        return n

    # ------------------------------------------------------------------ #
    # Merge algebra
    # ------------------------------------------------------------------ #
    def merge(self, other: "LevelShard") -> "LevelShard":
        """Absorb another shard built over the same round; returns ``self``.

        Associative and commutative: any merge tree over a partition of a
        report stream yields the counts of ingesting the stream whole.
        """
        self._check_compatible(other)
        if self._sources is not None:
            if other._sources is not None:
                self._sources.extend(other._sources)
            elif other.n_batches:
                # An undefended shard merges in as one opaque source.
                self._sources.append((other.counts.copy(), other.n_users))
        self.counts = self.oracle.merge_counts(self.counts, other.counts)
        self.n_users += other.n_users
        self.n_batches += other.n_batches
        return self

    def effective_counts(self) -> np.ndarray:
        """The counts the round's estimate is built from.

        The exact sum (:attr:`counts`) unless a defense policy is set, in
        which case the recorded per-source deltas are merged robustly.
        Deterministic either way, so defended runs replay exactly too.
        """
        if self.defense is None or not self._sources:
            return self.counts
        batch_counts = [counts for counts, _ in self._sources]
        batch_users = [users for _, users in self._sources]
        return self.defense.apply(batch_counts, batch_users, self.domain_size)

    def _check_compatible(self, other: "LevelShard") -> None:
        if not isinstance(other, LevelShard):
            raise ShardError(f"cannot merge a {type(other).__name__} into a shard")
        if other.oracle.name != self.oracle.name:
            raise ShardError(
                f"oracle mismatch: {self.oracle.name!r} vs {other.oracle.name!r}"
            )
        if other.oracle.epsilon != self.oracle.epsilon:
            raise ShardError(
                f"epsilon mismatch: {self.oracle.epsilon} vs {other.oracle.epsilon}"
            )
        if other.domain_size != self.domain_size:
            raise ShardError(
                f"domain mismatch: {self.domain_size} vs {other.domain_size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(oracle={self.oracle.name!r}, "
            f"domain_size={self.domain_size}, n_users={self.n_users})"
        )


def _decode_olh_range(task: tuple) -> np.ndarray:
    """Decode one candidate range of an OLH batch (module-level: picklable)."""
    epsilon, seeds, ys, start, stop = task
    oracle = OptimizedLocalHashing(epsilon)
    return oracle.support_counts_range((seeds, ys), start, stop)


class OLHDecodeShard(LevelShard):
    """An OLH shard that decodes batches in candidate shards on a backend.

    Parameters
    ----------
    backend:
        Backend name or instance for the per-range decode tasks (``None``:
        serial).  The live backend never travels through pickling — workers
        re-resolve the spec, degrading nested ``"process"`` requests to
        serial as usual.
    n_decode_shards:
        Number of candidate ranges per batch (default 8, capped at the
        domain size by :func:`repro.engine.split_ranges`).
    """

    def __init__(
        self,
        oracle: OptimizedLocalHashing,
        domain_size: int,
        *,
        backend: str | ExecutionBackend | None = None,
        n_decode_shards: int = 8,
        defense=None,
    ):
        super().__init__(oracle, domain_size, defense=defense)
        if n_decode_shards < 1:
            raise ShardError(f"n_decode_shards must be positive, got {n_decode_shards}")
        self.n_decode_shards = int(n_decode_shards)
        if isinstance(backend, ExecutionBackend):
            self._backend_spec = backend.name
            self._backend_workers = getattr(backend, "max_workers", None)
            self._backend: ExecutionBackend | None = backend
        else:
            self._backend_spec = backend
            self._backend_workers = None
            self._backend = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_backend"] = None  # live executors don't pickle; respawn lazily
        return state

    def _engine(self) -> ExecutionBackend:
        if self._backend is None:
            self._backend = get_backend(self._backend_spec, self._backend_workers)
        return self._backend

    def _decode(self, reports: object) -> np.ndarray:
        seeds, ys = reports
        # Wire-decoded views go into the tasks as-is (the range decoder
        # consumes any integer dtype); copying to int64 here would undo
        # the zero-copy decode for every batch.
        seeds = np.asarray(seeds)
        ys = np.asarray(ys)
        tasks = [
            (self.oracle.epsilon, seeds, ys, start, stop)
            for start, stop in split_ranges(self.domain_size, self.n_decode_shards)
        ]
        parts = self._engine().map_tasks(_decode_olh_range, tasks)
        return self.counts + np.concatenate(parts)


def make_shard(
    oracle: FrequencyOracle,
    domain_size: int,
    *,
    decode_backend: str | ExecutionBackend | None = None,
    n_decode_shards: int = 8,
    defense=None,
) -> LevelShard:
    """Build the right shard for ``oracle`` over a ``domain_size`` domain.

    A ``decode_backend`` only matters for OLH, the one oracle whose decode
    is heavy enough to shard; every other oracle accumulates inline.
    ``defense`` opts the shard into a robust (non-linear) merge of its
    ingested batches — see :meth:`LevelShard.effective_counts`.
    """
    if oracle.name == OptimizedLocalHashing.name and decode_backend is not None:
        return OLHDecodeShard(
            oracle,
            domain_size,
            backend=decode_backend,
            n_decode_shards=n_decode_shards,
            defense=defense,
        )
    return LevelShard(oracle, domain_size, defense=defense)
