"""Online aggregation service: streamed reports, sharded accumulators.

The batch simulations materialise every user's report for a level at once,
capping the population at whatever an ``(n_users, domain_size)`` matrix fits
in RAM.  This subsystem replaces that with a message-driven pipeline whose
server memory is ``O(domain_size)``:

* :mod:`repro.service.clients` — :class:`ClientPool` draws users from a
  party/dataset and emits privatized report batches of bounded size;
* :mod:`repro.service.protocol` — canonical byte codecs for report batches
  and round broadcasts; exact wire sizes feed the federation transcript;
* :mod:`repro.service.shards` — mergeable per-level support-count
  accumulators (associative :meth:`~shards.LevelShard.merge`), with OLH
  decoding sharded over candidate ranges on the execution engine;
* :mod:`repro.service.server` — :class:`AggregationServer` round lifecycle
  plus :class:`ServiceRoundRunner`, the estimation-seam adapter that turns
  ``MechanismConfig(execution_mode="service")`` into end-to-end streamed
  TAP/TAPS runs;
* :mod:`repro.service.streaming` — sliding-window re-discovery for
  continual heavy-hitter tracking;
* :mod:`repro.service.harness` — :func:`serve_dataset`, the programmatic
  serve harness behind ``repro serve`` (server + per-party client pools +
  per-round wire-bit reports in one call).

Determinism contract: for a fixed seed on the serial backend, a service run
is bit-identical to the in-memory run with the same report batching
(``tests/test_service_equivalence.py``).
"""

from repro.service.clients import ClientPool, iter_perturbed_batches
from repro.service.harness import RoundReport, ServeReport, serve_dataset
from repro.service.protocol import (
    REPORT_CODECS,
    ReportBatch,
    RoundBroadcast,
    WireFormatError,
    decode_broadcast,
    decode_report_batch,
    encode_broadcast,
    encode_report_batch,
    register_report_codec,
    wire_bits,
)
from repro.service.server import (
    SERVICE_ERROR_CODES,
    AggregationServer,
    ServiceError,
    ServiceRound,
    ServiceRoundRunner,
    run_in_service_mode,
)
from repro.service.shards import LevelShard, OLHDecodeShard, ShardError, make_shard
from repro.service.streaming import SlidingWindowDiscovery, WindowSnapshot

__all__ = [
    "SERVICE_ERROR_CODES",
    "AggregationServer",
    "ClientPool",
    "LevelShard",
    "OLHDecodeShard",
    "REPORT_CODECS",
    "ReportBatch",
    "RoundBroadcast",
    "RoundReport",
    "ServeReport",
    "ServiceError",
    "ServiceRound",
    "ServiceRoundRunner",
    "ShardError",
    "SlidingWindowDiscovery",
    "WindowSnapshot",
    "WireFormatError",
    "decode_broadcast",
    "decode_report_batch",
    "encode_broadcast",
    "encode_report_batch",
    "iter_perturbed_batches",
    "make_shard",
    "register_report_codec",
    "run_in_service_mode",
    "serve_dataset",
    "wire_bits",
]
