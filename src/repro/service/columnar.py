"""Columnar batch summarisation: wire payload → O(domain) count vector.

The decode fan-out of the network gateway used to ship *decoded report
objects* from its engine workers back to the accumulator thread.  The
columnar seam moves the whole decode-and-count step into the worker: a
worker receives the raw payload buffer, decodes it zero-copy
(:func:`repro.service.protocol.decode_report_batch`), folds it through
the oracle's accumulation kernel (packed popcount for unary oracles, the
blocked hash scan for OLH, ``bincount`` for k-RR), and returns a
:class:`BatchSummary` — the batch header plus an ``O(domain_size)``
``int64`` count vector.  What crosses the worker boundary shrinks from
the report buffer to one count vector per batch, and the single-threaded
accumulator only merges integers.

Counts are exact, so summarise-then-merge is bit-identical to
decode-then-ingest on every backend — the contract
``tests/test_columnar_equivalence.py`` pins for all registered oracles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ldp.registry import make_oracle
from repro.service.protocol import (
    ReportBatch,
    WireFormatError,
    decode_report_batch,
    split_report_batch,
)


@dataclass(frozen=True)
class BatchSummary:
    """One report batch reduced to its header and exact support counts.

    Field-compatible with :class:`~repro.service.protocol.ReportBatch`
    for round validation (party / level / oracle_name / epsilon /
    domain_size), which is what lets the server validate summaries and
    decoded batches with the same code.
    """

    party: str
    level: int
    oracle_name: str
    epsilon: float
    domain_size: int
    value_domain: int
    n_users: int
    counts: np.ndarray


def summarize_batch(batch: ReportBatch) -> BatchSummary:
    """Reduce a decoded batch to its exact per-candidate support counts."""
    try:
        oracle = make_oracle(batch.oracle_name, batch.epsilon)
    except (KeyError, ValueError) as exc:
        # A decodable header can still declare parameters the library
        # refuses (epsilon <= 0); as everywhere on the wire boundary,
        # that is a wire error, never an internal crash.
        message = str(exc.args[0]) if exc.args else str(exc)
        raise WireFormatError(
            f"batch declares an unusable oracle: {message}"
        ) from exc
    counts = oracle.support_counts(batch.reports, batch.domain_size)
    return BatchSummary(
        party=batch.party,
        level=batch.level,
        oracle_name=batch.oracle_name,
        epsilon=batch.epsilon,
        domain_size=batch.domain_size,
        value_domain=batch.value_domain,
        n_users=batch.n_users,
        counts=np.asarray(counts, dtype=np.int64),
    )


def summarize_report_payload(payload: bytes) -> BatchSummary:
    """Decode one wire payload and summarise it, all inside the worker.

    Module-level (hence picklable) — the unit of the gateway's columnar
    decode fan-out on any execution backend.  The decode is zero-copy:
    report views alias ``payload`` and die with the summary's scope;
    only the ``O(domain_size)`` counts travel back.
    """
    return summarize_batch(decode_report_batch(payload))


__all__ = [
    "BatchSummary",
    "split_report_batch",
    "summarize_batch",
    "summarize_report_payload",
]
