"""Wire codecs for the online aggregation service.

The batch simulations account communication analytically (``report_bits``,
``pair_bits``); the service instead puts every report batch and every round
broadcast through a real byte codec and feeds the **exact** byte counts into
the :class:`~repro.federation.transcript.FederationTranscript`.  Encoding is
canonical — the same batch always produces the same bytes — and decoding is
lossless, so a round ingested from the wire finalises bit-identically to the
in-memory computation.

Layout (little-endian throughout)::

    report batch:  b"RPB1" | oracle | party | level u32 | domain u32 |
                   value_domain u32 | n_users u32 | epsilon f64 | payload
    broadcast:     b"RBC1" | canonical JSON body

where strings are u16-length-prefixed UTF-8 and the payload format is
per-oracle (registered in :data:`REPORT_CODECS`):

* unary oracles (OUE, SUE) — the bit matrix packed to ``ceil(d/8)`` bytes
  per user (:func:`numpy.packbits`), i.e. the paper's ``d`` bits per report;
* k-RR — one reported index per user in the smallest unsigned dtype that
  indexes the candidate domain;
* OLH — one 64-bit hash seed plus one bucket index per user, the bucket in
  the smallest unsigned dtype that indexes the hashed domain ``d'``.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ldp.packed import PackedUnaryReports

_REPORT_MAGIC = b"RPB1"
_BROADCAST_MAGIC = b"RBC1"


class WireFormatError(ValueError):
    """A payload does not decode under the service wire protocol."""


@dataclass(frozen=True)
class ReportBatch:
    """One bounded batch of privatized reports from a client pool.

    Attributes
    ----------
    party:
        Name of the party (client pool) that produced the batch.
    level:
        Prefix length of the trie round the batch belongs to.
    oracle_name / epsilon:
        The frequency oracle that perturbed the reports and its budget.
    domain_size:
        Size of the candidate domain (dummy included) the round runs over.
    value_domain:
        Size of the per-report value domain on the wire
        (:meth:`repro.ldp.base.FrequencyOracle.report_value_domain`).
    n_users:
        Number of reports in the batch.
    reports:
        Oracle-specific report representation (see :mod:`repro.ldp`).
    """

    party: str
    level: int
    oracle_name: str
    epsilon: float
    domain_size: int
    value_domain: int
    n_users: int
    reports: object


@dataclass(frozen=True)
class RoundBroadcast:
    """The server → clients announcement opening one aggregation round."""

    party: str
    level: int
    oracle_name: str
    epsilon: float
    domain_size: int
    prefixes: tuple[str, ...]


# ---------------------------------------------------------------------- #
# Primitives
# ---------------------------------------------------------------------- #
def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise WireFormatError(f"string of {len(data)} bytes exceeds the u16 prefix")
    return struct.pack("<H", len(data)) + data


def _unpack_str(buffer: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<H", buffer, offset)
    offset += 2
    if offset + length > len(buffer):
        # Without this check a truncated buffer would yield a silently
        # shortened string instead of failing — bytes off a socket must
        # never mis-decode.
        raise WireFormatError(
            f"string of {length} bytes overruns the {len(buffer)}-byte buffer"
        )
    return buffer[offset : offset + length].decode("utf-8"), offset + length


def _uint_dtype(max_value: int) -> np.dtype:
    """Smallest little-endian unsigned dtype representing ``max_value``."""
    for code in ("<u1", "<u2", "<u4", "<u8"):
        if max_value < 1 << (8 * np.dtype(code).itemsize):
            return np.dtype(code)
    raise WireFormatError(f"value {max_value} exceeds 64 bits")  # pragma: no cover


def _readonly_view(buffer, dtype: np.dtype) -> np.ndarray:
    """A zero-copy, read-only array over ``buffer`` (bytes or memoryview).

    The columnar contract of every decoder below: wire bytes are *viewed*,
    never copied, and the view is frozen so downstream kernels cannot
    scribble on a buffer other consumers (accounting, re-encoding) alias.
    """
    array = np.frombuffer(buffer, dtype=dtype)
    array.flags.writeable = False
    return array


# ---------------------------------------------------------------------- #
# Per-oracle report payload codecs
# ---------------------------------------------------------------------- #
def _encode_index_reports(batch: ReportBatch) -> bytes:
    reports = np.asarray(batch.reports, dtype=np.int64)
    return reports.astype(_uint_dtype(batch.value_domain - 1)).tobytes()


def _decode_index_reports(data, batch_meta: "ReportBatch") -> np.ndarray:
    dtype = _uint_dtype(batch_meta.value_domain - 1)
    expected = batch_meta.n_users * dtype.itemsize
    if len(data) != expected:
        raise WireFormatError(
            f"index payload is {len(data)} bytes, expected {expected}"
        )
    # Read-only view in the wire dtype; consumers (bincount) take the
    # smallest-uint form as-is, so no widening copy is ever made.
    return _readonly_view(data, dtype)


def _encode_unary_reports(batch: ReportBatch) -> bytes:
    reports = batch.reports
    if isinstance(reports, PackedUnaryReports):
        # Already in wire form: the payload is the packed buffer itself.
        if (reports.n_users, reports.domain_size) != (
            batch.n_users,
            batch.domain_size,
        ):
            raise WireFormatError(
                f"packed unary batch covers ({reports.n_users}, "
                f"{reports.domain_size}), expected "
                f"({batch.n_users}, {batch.domain_size})"
            )
        return reports.tobytes()
    matrix = np.asarray(reports, dtype=bool)
    if matrix.ndim != 2 or matrix.shape != (batch.n_users, batch.domain_size):
        raise WireFormatError(
            f"unary batch has shape {matrix.shape}, expected "
            f"({batch.n_users}, {batch.domain_size})"
        )
    return np.packbits(matrix, axis=1).tobytes()


def _decode_unary_reports(data, batch_meta: "ReportBatch") -> PackedUnaryReports:
    row_bytes = (batch_meta.domain_size + 7) // 8
    expected = batch_meta.n_users * row_bytes
    if len(data) != expected:
        raise WireFormatError(
            f"unary payload is {len(data)} bytes, expected {expected}"
        )
    # Zero-copy: the reports alias the payload bytes; the (n, d) matrix is
    # only ever materialised by an explicit ``.unpack()`` fallback.
    return PackedUnaryReports.from_buffer(
        data, n_users=batch_meta.n_users, domain_size=batch_meta.domain_size
    )


def _encode_olh_reports(batch: ReportBatch) -> bytes:
    seeds, buckets = batch.reports
    seeds = np.asarray(seeds, dtype="<i8")
    buckets = np.asarray(buckets)
    bucket_dtype = _uint_dtype(batch.value_domain - 1)
    if buckets.dtype != bucket_dtype:
        buckets = buckets.astype(bucket_dtype)
    return seeds.tobytes() + buckets.tobytes()


def _decode_olh_reports(
    data, batch_meta: "ReportBatch"
) -> tuple[np.ndarray, np.ndarray]:
    n = batch_meta.n_users
    bucket_dtype = _uint_dtype(batch_meta.value_domain - 1)
    expected = n * (8 + bucket_dtype.itemsize)
    if len(data) != expected:
        raise WireFormatError(f"OLH payload is {len(data)} bytes, expected {expected}")
    view = memoryview(data)
    # Read-only views straight over the payload: the seed view is already
    # native int64 on little-endian hosts and the bucket view stays in its
    # wire dtype — the decode kernel consumes both without copies.
    seeds = _readonly_view(view[: 8 * n], np.dtype("<i8"))
    if seeds.dtype != np.dtype(np.int64):  # pragma: no cover - big-endian only
        seeds = seeds.astype(np.int64)
    buckets = _readonly_view(view[8 * n :], bucket_dtype)
    return seeds, buckets


#: oracle name → (payload encoder, payload decoder).  New oracles register
#: here (see :func:`register_report_codec`); unary encodings share a codec.
REPORT_CODECS: dict[str, tuple[Callable, Callable]] = {
    "krr": (_encode_index_reports, _decode_index_reports),
    "oue": (_encode_unary_reports, _decode_unary_reports),
    "sue": (_encode_unary_reports, _decode_unary_reports),
    "olh": (_encode_olh_reports, _decode_olh_reports),
}


def register_report_codec(
    oracle_name: str, encoder: Callable, decoder: Callable
) -> None:
    """Register the wire codec of a new frequency oracle's reports."""
    REPORT_CODECS[oracle_name.lower()] = (encoder, decoder)


def _codec(oracle_name: str) -> tuple[Callable, Callable]:
    try:
        return REPORT_CODECS[oracle_name.lower()]
    except KeyError:
        raise WireFormatError(
            f"no wire codec registered for oracle {oracle_name!r}; "
            f"available: {sorted(REPORT_CODECS)}"
        ) from None


# ---------------------------------------------------------------------- #
# Report batches
# ---------------------------------------------------------------------- #
def encode_report_batch(batch: ReportBatch) -> bytes:
    """Serialise a report batch to its canonical wire bytes."""
    encoder, _ = _codec(batch.oracle_name)
    header = b"".join(
        (
            _REPORT_MAGIC,
            _pack_str(batch.oracle_name),
            _pack_str(batch.party),
            struct.pack(
                "<IIIId",
                batch.level,
                batch.domain_size,
                batch.value_domain,
                batch.n_users,
                batch.epsilon,
            ),
        )
    )
    return header + encoder(batch)


def split_report_batch(data: bytes) -> tuple[ReportBatch, memoryview]:
    """Parse a batch header; return its meta and a zero-copy payload view.

    The columnar decode seam: the returned :class:`ReportBatch` carries
    every header field with ``reports=None``, and the memoryview aliases
    the payload bytes without copying them.  :func:`decode_report_batch`
    and the columnar summarisers build on this.
    """
    if data[:4] != _REPORT_MAGIC:
        raise WireFormatError(
            f"bad report-batch magic {data[:4]!r}, expected {_REPORT_MAGIC!r}"
        )
    try:
        offset = 4
        oracle_name, offset = _unpack_str(data, offset)
        party, offset = _unpack_str(data, offset)
        level, domain_size, value_domain, n_users, epsilon = struct.unpack_from(
            "<IIIId", data, offset
        )
        offset += struct.calcsize("<IIIId")
    except (struct.error, UnicodeDecodeError) as exc:
        raise WireFormatError(f"report-batch header does not parse: {exc}") from exc
    meta = ReportBatch(
        party=party,
        level=int(level),
        oracle_name=oracle_name,
        epsilon=float(epsilon),
        domain_size=int(domain_size),
        value_domain=int(value_domain),
        n_users=int(n_users),
        reports=None,
    )
    # A codec must exist even when the caller only wants the meta — an
    # unknown oracle is a wire error, wherever it is detected.
    _codec(oracle_name)
    return meta, memoryview(data)[offset:]


def decode_report_batch(data: bytes) -> ReportBatch:
    """Reconstruct a :class:`ReportBatch` from wire bytes, losslessly.

    Report payloads decode into zero-copy, read-only views over ``data``
    (packed unary buffers stay packed); no byte is duplicated between the
    wire and the accumulation kernels.
    """
    meta, payload = split_report_batch(data)
    _, decoder = _codec(meta.oracle_name)
    reports = decoder(payload, meta)
    return ReportBatch(
        party=meta.party,
        level=meta.level,
        oracle_name=meta.oracle_name,
        epsilon=meta.epsilon,
        domain_size=meta.domain_size,
        value_domain=meta.value_domain,
        n_users=meta.n_users,
        reports=reports,
    )


# ---------------------------------------------------------------------- #
# Round broadcasts
# ---------------------------------------------------------------------- #
def encode_broadcast(broadcast: RoundBroadcast) -> bytes:
    """Serialise a round-opening broadcast (canonical JSON body)."""
    body = json.dumps(
        {
            "party": broadcast.party,
            "level": broadcast.level,
            "oracle": broadcast.oracle_name,
            "epsilon": broadcast.epsilon,
            "domain_size": broadcast.domain_size,
            "prefixes": list(broadcast.prefixes),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return _BROADCAST_MAGIC + body


def decode_broadcast(data: bytes) -> RoundBroadcast:
    """Reconstruct a :class:`RoundBroadcast` from wire bytes."""
    if data[:4] != _BROADCAST_MAGIC:
        raise WireFormatError(
            f"bad broadcast magic {data[:4]!r}, expected {_BROADCAST_MAGIC!r}"
        )
    try:
        body = json.loads(data[4:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"broadcast body does not parse: {exc}") from exc
    # The body came off a wire: any malformed shape (non-mapping, missing
    # keys, wrong value types) must surface as WireFormatError, never as a
    # raw KeyError/TypeError a server loop would treat as an internal bug.
    try:
        if not isinstance(body["prefixes"], list):
            # tuple() would happily split a JSON *string* into characters —
            # a silent mis-decode, the one failure mode worse than an error.
            raise WireFormatError(
                f"broadcast prefixes must be a list, "
                f"got {type(body['prefixes']).__name__}"
            )
        broadcast = RoundBroadcast(
            party=body["party"],
            level=int(body["level"]),
            oracle_name=body["oracle"],
            epsilon=float(body["epsilon"]),
            domain_size=int(body["domain_size"]),
            prefixes=tuple(body["prefixes"]),
        )
    except WireFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"broadcast body is malformed: {exc!r}") from exc
    if not isinstance(broadcast.party, str) or not isinstance(
        broadcast.oracle_name, str
    ):
        raise WireFormatError("broadcast party/oracle must be strings")
    if not all(isinstance(p, str) for p in broadcast.prefixes):
        raise WireFormatError("broadcast prefixes must be strings")
    return broadcast


def wire_bits(payload: bytes) -> int:
    """Exact size of an encoded payload in bits."""
    return len(payload) * 8
