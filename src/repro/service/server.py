"""The aggregation server: streamed rounds, sharded state, exact accounting.

An :class:`AggregationServer` owns the server side of the online protocol:
it opens one round per (party, level) frequency-oracle round, ingests
privatized report batches from the wire into a mergeable
:class:`~repro.service.shards.LevelShard`, and finalises the round into the
same :class:`~repro.ldp.base.EstimationResult` the in-memory path produces.
Server memory per round is ``O(domain_size)`` — independent of the number
of reporting users — and every message is logged with its **exact** wire
byte count.

:class:`ServiceRoundRunner` plugs the server into the estimation seam
(:class:`repro.core.estimation.RoundRunner`), which is how
``execution_mode="service"`` turns TAP/TAPS (and the baselines) into
end-to-end streamed protocols without touching their trie logic.  The
non-negotiable invariant, enforced by ``tests/test_service_equivalence.py``:
for a fixed seed on the serial backend, a service run is bit-identical to
the in-memory run with the same report batching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DEFAULT_REPORT_BATCH_SIZE
from repro.core.estimation import RoundRunner
from repro.engine import ExecutionBackend, get_backend
from repro.federation.messages import Message, MessageDirection
from repro.ldp.base import EstimationResult, FrequencyOracle
from repro.service.clients import iter_perturbed_batches
from repro.service.protocol import (
    ReportBatch,
    RoundBroadcast,
    decode_report_batch,
    encode_broadcast,
    encode_report_batch,
    wire_bits,
)
from repro.service.shards import LevelShard, make_shard


#: Structured error codes a :class:`ServiceError` can carry.  The network
#: runtime (:mod:`repro.net`) ships them inside error frames, so a remote
#: client re-raises the *same* exception the in-memory path would have
#: raised; :data:`~repro.net.framing.ERROR_WIRE_FORMAT` covers codec
#: failures (:class:`~repro.service.protocol.WireFormatError`).
SERVICE_ERROR_CODES: tuple[str, ...] = (
    "protocol",          # generic protocol violation (the default)
    "unknown_round",     # round id was never opened on this server
    "round_closed",      # round has already been finalised
    "party_mismatch",    # batch came from a different party than the round's
    "level_mismatch",    # batch was produced for a different trie level
    "oracle_mismatch",   # batch was perturbed with a different oracle
    "epsilon_mismatch",  # batch reports a different privacy budget
    "domain_mismatch",   # batch was encoded over a different domain size
    "bad_mode",          # the execution mode has no per-user reports
    "admission_rejected",  # the gateway's admission control refused the request
    "internal",          # unexpected server-side failure (bug, not protocol)
    # Cross-shard failures (the cluster coordinator, repro.cluster):
    "shard_mismatch",        # a shard's exported state disagrees with the round
    "ring_version_mismatch",  # the hash ring changed while the round was open
    "shard_unavailable",     # a shard gateway died or stopped answering
)


class ServiceError(RuntimeError):
    """A request violates the aggregation-service protocol.

    ``code`` is a stable, machine-readable identifier from
    :data:`SERVICE_ERROR_CODES`: local callers can branch on it, and the
    network gateway puts it on the wire in an error frame so remote and
    in-memory failures are indistinguishable to the caller.
    """

    def __init__(self, message: str, *, code: str = "protocol"):
        super().__init__(message)
        if code not in SERVICE_ERROR_CODES:
            raise ValueError(
                f"unknown service error code {code!r}; "
                f"available: {sorted(SERVICE_ERROR_CODES)}"
            )
        self.code = code


@dataclass(frozen=True)
class ExportedShardState:
    """One round's raw accumulator state, lifted off a shard gateway.

    What the cluster coordinator collects at its round-close barrier:
    the **exact** ``O(domain_size)`` int64 support counts plus the round
    identity needed to validate the merge (estimation is nonlinear, so
    shards must never estimate — the coordinator merges counts with the
    :class:`~repro.service.shards.LevelShard` algebra and estimates
    once).  Travels as a ``FRAME_SHARD_STATE``
    (:func:`repro.net.framing.encode_shard_state`).
    """

    party: str
    level: int
    oracle_name: str
    epsilon: float
    domain_size: int
    n_users: int
    n_batches: int
    upload_bits: int
    counts: np.ndarray


def finalize_estimate(
    oracle: FrequencyOracle,
    counts: np.ndarray,
    n_users: int,
    domain_size: int,
    *,
    n_batches: int,
    upload_bits: int,
    broadcast_bits: int,
) -> EstimationResult:
    """Estimate a finished round from its exact support counts.

    The one shared finalisation path: :meth:`AggregationServer.
    finalize_round` and the cluster coordinator's cross-shard merge both
    call it, which is what makes an N-shard round *bit-identical* to the
    single-server round over the same counts — identical numpy calls on
    identical int64 inputs, identical metadata.
    """
    n = int(n_users)
    est_counts = oracle.estimate_counts(counts, n, domain_size)
    est_freqs = est_counts / n if n else np.zeros_like(est_counts)
    return EstimationResult(
        support_counts=np.asarray(counts, dtype=np.int64),
        estimated_counts=est_counts,
        estimated_frequencies=est_freqs,
        n_users=n,
        domain_size=int(domain_size),
        oracle_name=oracle.name,
        epsilon=oracle.epsilon,
        metadata={
            "execution": "service",
            "n_batches": int(n_batches),
            "upload_bits": int(upload_bits),
            "broadcast_bits": int(broadcast_bits),
        },
    )


@dataclass
class ServiceRound:
    """Server-side state of one streamed frequency-oracle round.

    ``shard`` is released on finalisation so a long-lived server holds
    ``O(domain_size)`` state only for its *open* rounds.
    """

    round_id: int
    party: str
    level: int
    oracle: FrequencyOracle
    domain_size: int
    shard: LevelShard | None
    is_open: bool = True
    n_batches: int = 0
    upload_bits: int = 0
    broadcast_bits: int = 0


class AggregationServer:
    """Ingests streamed report batches into per-round shards.

    Parameters
    ----------
    decode_backend:
        Execution backend (name or instance) for sharded OLH decoding;
        ``None`` decodes inline.  A name is resolved lazily, once, and the
        resulting engine is shared by every round's shard; instances are
        used as-is (their lifecycle stays with the caller).
    decode_workers:
        Worker count when resolving a named decode backend.
    n_decode_shards:
        Candidate ranges per OLH decode (see
        :class:`~repro.service.shards.OLHDecodeShard`).
    defense:
        Optional robust-merge policy applied to every round's shard
        (see :meth:`repro.service.shards.LevelShard.effective_counts`).
        Opt-in: a defended server finalises from the robust merge of its
        wire batches, deliberately departing from the plain-sum
        bit-identity contract.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; the server
        then mirrors its exact accounting into observe-only ``service_*``
        counters (rounds, batches, reports, exact wire bits).

    Examples
    --------
    Stream one round by hand — open, ingest bounded wire batches, finalise
    (``iter_perturbed_batches`` is what :class:`~repro.service.clients.ClientPool`
    uses under the hood):

    >>> import numpy as np
    >>> from repro.ldp.registry import make_oracle
    >>> from repro.service.clients import iter_perturbed_batches
    >>> from repro.trie.candidate_domain import CandidateDomain
    >>> server = AggregationServer()
    >>> domain = CandidateDomain.full_domain(2)
    >>> oracle = make_oracle("krr", 4.0)
    >>> rid = server.open_round(party="demo", level=2, oracle=oracle, domain=domain)
    >>> values = np.array([0, 1, 1, 3])
    >>> for batch in iter_perturbed_batches(oracle, values, domain.size, 0,
    ...                                     batch_size=2, party="demo", level=2):
    ...     _ = server.ingest_batch(rid, batch)
    >>> estimate = server.finalize_round(rid)
    >>> int(estimate.n_users), estimate.oracle_name
    (4, 'krr')
    >>> server.upload_bits() > 0 and server.broadcast_bits() > 0
    True
    """

    def __init__(
        self,
        *,
        decode_backend: str | ExecutionBackend | None = None,
        decode_workers: int | None = None,
        n_decode_shards: int = 8,
        defense=None,
        metrics=None,
    ):
        self.decode_backend = decode_backend
        self.decode_workers = decode_workers
        self.n_decode_shards = n_decode_shards
        self.defense = defense
        self.rounds: dict[int, ServiceRound] = {}
        self._messages: list[Message] = []
        self._next_round_id = 0
        self._upload_bits = 0
        self._broadcast_bits = 0
        self._decode_engine: ExecutionBackend | None = None
        self._owns_decode_engine = False
        self._bind_metrics(metrics)

    def _bind_metrics(self, metrics) -> None:
        """Pre-bind the observe-only service counters (None: all no-ops).

        ``metrics`` is a :class:`~repro.obs.registry.MetricsRegistry`;
        the counters mirror the exact accounting the server already keeps
        (same bits, same batches), so telemetry cannot change a single
        accounted value — it only makes the running totals scrapeable.
        """
        self.metrics = metrics
        if metrics is None:
            self._m_rounds_opened = self._m_rounds_finalized = None
            self._m_batches = self._m_reports = None
            self._m_upload_bits = self._m_broadcast_bits = None
            return
        self._m_rounds_opened = metrics.counter("service_rounds_opened_total")
        self._m_rounds_finalized = metrics.counter("service_rounds_finalized_total")
        self._m_batches = metrics.counter("service_batches_total")
        self._m_reports = metrics.counter("service_reports_total")
        self._m_upload_bits = metrics.counter("service_upload_bits_total")
        self._m_broadcast_bits = metrics.counter("service_broadcast_bits_total")

    def __getstate__(self):
        # Live executors don't pickle; workers re-resolve the spec lazily
        # (nested "process" requests degrade to serial there as usual).
        # Metric instruments carry locks, which don't pickle either: a
        # copy observes into its own fresh (unbound) state.
        state = self.__dict__.copy()
        state["_decode_engine"] = None
        state["_owns_decode_engine"] = False
        if isinstance(state["decode_backend"], ExecutionBackend):
            state["decode_backend"] = state["decode_backend"].name
        for key in list(state):
            if key == "metrics" or key.startswith("_m_"):
                state[key] = None
        return state

    def _resolve_decode_engine(self) -> ExecutionBackend | None:
        if self.decode_backend is None:
            return None
        if self._decode_engine is None:
            if isinstance(self.decode_backend, ExecutionBackend):
                self._decode_engine = self.decode_backend
            else:
                self._decode_engine = get_backend(
                    self.decode_backend, self.decode_workers
                )
                self._owns_decode_engine = True
        return self._decode_engine

    def shutdown(self) -> None:
        """Release a decode engine this server resolved from a name."""
        if self._owns_decode_engine and self._decode_engine is not None:
            self._decode_engine.shutdown()
        self._decode_engine = None
        self._owns_decode_engine = False

    # ------------------------------------------------------------------ #
    # Round lifecycle
    # ------------------------------------------------------------------ #
    def open_round(
        self, *, party: str, level: int, oracle: FrequencyOracle, domain
    ) -> int:
        """Open a streamed round over ``domain`` and broadcast it to clients.

        ``domain`` is a :class:`~repro.trie.candidate_domain.CandidateDomain`
        (anything with ``size`` and ``prefixes`` works); the broadcast that
        announces the candidate prefixes is logged with its exact encoded
        size, replacing the batch simulations' analytic pair accounting.
        """
        round_id = self._next_round_id
        self._next_round_id += 1
        # Only OLH decoding shards; resolving the engine lazily here keeps
        # every other oracle from ever materialising a worker pool.
        decode_engine = (
            self._resolve_decode_engine() if oracle.name == "olh" else None
        )
        shard = make_shard(
            oracle,
            domain.size,
            decode_backend=decode_engine,
            n_decode_shards=self.n_decode_shards,
            defense=self.defense,
        )
        broadcast = RoundBroadcast(
            party=party,
            level=int(level),
            oracle_name=oracle.name,
            epsilon=oracle.epsilon,
            domain_size=int(domain.size),
            prefixes=tuple(domain.prefixes),
        )
        bits = wire_bits(encode_broadcast(broadcast))
        round_ = ServiceRound(
            round_id=round_id,
            party=party,
            level=int(level),
            oracle=oracle,
            domain_size=int(domain.size),
            shard=shard,
            broadcast_bits=bits,
        )
        self.rounds[round_id] = round_
        self._broadcast_bits += bits
        if self._m_rounds_opened is not None:
            self._m_rounds_opened.inc()
            self._m_broadcast_bits.inc(bits)
        self._messages.append(
            Message(
                direction=MessageDirection.SERVER_TO_PARTY,
                party=party,
                kind="service_round_open",
                payload_bits=bits,
                level=round_.level,
            )
        )
        return round_id

    def _round(self, round_id: int, *, require_open: bool = True) -> ServiceRound:
        try:
            round_ = self.rounds[round_id]
        except KeyError:
            raise ServiceError(
                f"unknown round {round_id}", code="unknown_round"
            ) from None
        if require_open and not round_.is_open:
            raise ServiceError(
                f"round {round_id} is already finalised", code="round_closed"
            )
        return round_

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def check_open(self, round_id: int) -> None:
        """Raise the structured error unless ``round_id`` is an open round.

        The cheap admission probe the network gateway runs before spending
        a decode on a batch; round-state errors thereby keep their
        precedence over codec errors in every execution mode.
        """
        self._round(round_id)

    def ingest(self, round_id: int, payload: bytes) -> int:
        """Decode one wire batch into the round's shard; returns its size."""
        # Round-state errors take precedence over codec errors (and save
        # the decode work): a corrupt payload for a closed round reports
        # the closed round, as it always has.
        self.check_open(round_id)
        return self.ingest_decoded(
            round_id, decode_report_batch(payload), payload_bits=wire_bits(payload)
        )

    def ingest_decoded(
        self, round_id: int, batch: ReportBatch, *, payload_bits: int
    ) -> int:
        """Fold an already-decoded batch into a round, accounted at ``payload_bits``.

        The decode/accumulate seam the network gateway uses: frame decoding
        fans out to engine workers, while the accumulate-and-account step
        stays on one thread.  ``payload_bits`` must be the exact wire size
        of the batch's canonical encoding, which keeps the accounting
        identical to :meth:`ingest`.
        """
        round_ = self._round(round_id)
        self._validate_batch(round_, batch)
        n = round_.shard.ingest(batch.reports)
        self._account_batch(round_, batch.party, payload_bits)
        if self._m_reports is not None:
            self._m_reports.inc(n)
        return n

    def ingest_summary(self, round_id: int, summary, *, payload_bits: int) -> int:
        """Fold a columnar batch summary into a round, accounted at ``payload_bits``.

        The columnar twin of :meth:`ingest_decoded`: the engine worker has
        already decoded *and* counted the wire batch
        (:func:`repro.service.columnar.summarize_report_payload`), so only
        its ``O(domain_size)`` count vector reaches the accumulator.
        ``payload_bits`` is still the exact wire size of the batch the
        summary stands for — transcripts cannot tell the two paths apart.
        """
        round_ = self._round(round_id)
        self._validate_batch(round_, summary)
        n = round_.shard.ingest_counts(summary.counts, summary.n_users)
        self._account_batch(round_, summary.party, payload_bits)
        if self._m_reports is not None:
            self._m_reports.inc(n)
        return n

    def _account_batch(
        self, round_: ServiceRound, party: str, payload_bits: int
    ) -> None:
        round_.n_batches += 1
        round_.upload_bits += payload_bits
        self._upload_bits += payload_bits
        if self._m_batches is not None:
            self._m_batches.inc()
            self._m_upload_bits.inc(payload_bits)
        self._messages.append(
            Message(
                direction=MessageDirection.PARTY_TO_SERVER,
                party=party,
                kind="report_batch",
                payload_bits=payload_bits,
                level=round_.level,
            )
        )

    def ingest_batch(self, round_id: int, batch: ReportBatch) -> int:
        """Encode a batch to wire bytes and ingest it (bytes always counted)."""
        return self.ingest(round_id, encode_report_batch(batch))

    def merge_shard(self, round_id: int, shard: LevelShard, *, party: str) -> None:
        """Merge a pre-aggregated edge shard into a round.

        The hierarchical path: an edge aggregator ships its ``O(domain)``
        count vector instead of raw batches.  Accounted at the vector's
        exact size (64-bit counts).
        """
        round_ = self._round(round_id)
        round_.shard.merge(shard)
        bits = int(shard.counts.nbytes) * 8
        round_.n_batches += shard.n_batches
        round_.upload_bits += bits
        self._upload_bits += bits
        self._messages.append(
            Message(
                direction=MessageDirection.PARTY_TO_SERVER,
                party=party,
                kind="shard_merge",
                payload_bits=bits,
                level=round_.level,
            )
        )

    @staticmethod
    def _validate_batch(round_: ServiceRound, batch: ReportBatch) -> None:
        if batch.party != round_.party:
            raise ServiceError(
                f"round {round_.round_id} belongs to party {round_.party!r}, "
                f"batch came from {batch.party!r}",
                code="party_mismatch",
            )
        if batch.level != round_.level:
            raise ServiceError(
                f"round {round_.round_id} runs level {round_.level}, "
                f"batch was produced for level {batch.level}",
                code="level_mismatch",
            )
        if batch.oracle_name != round_.oracle.name:
            raise ServiceError(
                f"round {round_.round_id} runs oracle {round_.oracle.name!r}, "
                f"batch was perturbed with {batch.oracle_name!r}",
                code="oracle_mismatch",
            )
        if batch.epsilon != round_.oracle.epsilon:
            raise ServiceError(
                f"round {round_.round_id} uses epsilon {round_.oracle.epsilon}, "
                f"batch reports epsilon {batch.epsilon}",
                code="epsilon_mismatch",
            )
        if batch.domain_size != round_.domain_size:
            raise ServiceError(
                f"round {round_.round_id} has domain size {round_.domain_size}, "
                f"batch was encoded over {batch.domain_size}",
                code="domain_mismatch",
            )

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #
    def finalize_round(self, round_id: int) -> EstimationResult:
        """Close a round and estimate counts/frequencies from its shard.

        The estimation mirrors :meth:`repro.ldp.base.FrequencyOracle.run`
        operation-for-operation, so a streamed round finalises bit-identical
        to the in-memory computation over the same supports.  The round's
        shard is released: a long-lived server only pays ``O(domain_size)``
        for rounds still open.
        """
        round_ = self._round(round_id)
        round_.is_open = False
        shard = round_.shard
        round_.shard = None
        if self._m_rounds_finalized is not None:
            self._m_rounds_finalized.inc()
        return finalize_estimate(
            round_.oracle,
            shard.effective_counts(),
            shard.n_users,
            round_.domain_size,
            n_batches=round_.n_batches,
            upload_bits=round_.upload_bits,
            broadcast_bits=round_.broadcast_bits,
        )

    def export_shard(self, round_id: int) -> ExportedShardState:
        """Close a round and hand over its raw shard state, **unestimated**.

        The shard-gateway half of the cluster's round-close barrier
        (``{"op": "export_shard"}`` on the wire): the round ends exactly
        like :meth:`finalize_round` — closed, shard released — but the
        exact int64 counts leave the server instead of an estimate, so a
        coordinator can merge them with other shards' states and
        estimate once over the cluster-wide counts.
        """
        round_ = self._round(round_id)
        round_.is_open = False
        shard = round_.shard
        round_.shard = None
        if self._m_rounds_finalized is not None:
            self._m_rounds_finalized.inc()
        return ExportedShardState(
            party=round_.party,
            level=round_.level,
            oracle_name=round_.oracle.name,
            epsilon=round_.oracle.epsilon,
            domain_size=round_.domain_size,
            n_users=shard.n_users,
            n_batches=round_.n_batches,
            upload_bits=round_.upload_bits,
            counts=np.asarray(shard.effective_counts(), dtype=np.int64),
        )

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def messages(self) -> list[Message]:
        """The wire messages logged so far (exact byte counts)."""
        return list(self._messages)

    def drain_messages(self) -> list[Message]:
        """Hand the logged messages to a transcript and reset the buffer.

        The log-rotation mechanism for long-lived servers: the running
        bit totals below survive a drain.
        """
        messages, self._messages = self._messages, []
        return messages

    def upload_bits(self) -> int:
        """Running total of client → server wire bits (drain-proof)."""
        return self._upload_bits

    def broadcast_bits(self) -> int:
        """Running total of server → client wire bits (drain-proof)."""
        return self._broadcast_bits


@dataclass
class ServiceRoundRunner(RoundRunner):
    """Routes an estimator's FO rounds through the aggregation service.

    Each round: the server broadcasts the candidate domain, a client pool
    perturbs the party's reports in bounded batches, every batch crosses
    the wire as real bytes, and the server's shard finalises into the
    round's estimates.  Plugged into
    :class:`~repro.core.estimation.PartyEstimator` by
    ``MechanismConfig(execution_mode="service")``.
    """

    server: AggregationServer = field(default_factory=AggregationServer)
    party: str = "party"
    batch_size: int = DEFAULT_REPORT_BATCH_SIZE

    def run_round(
        self,
        oracle: FrequencyOracle,
        values: np.ndarray,
        domain,
        rng,
        *,
        mode: str,
    ) -> EstimationResult:
        if mode != "per_user":
            raise ServiceError(
                "service execution streams individual privatized reports; "
                f"simulation mode {mode!r} has none (use per_user)",
                code="bad_mode",
            )
        round_id = self.server.open_round(
            party=self.party, level=domain.prefix_length, oracle=oracle, domain=domain
        )
        for batch in iter_perturbed_batches(
            oracle,
            values,
            domain.size,
            rng,
            batch_size=self.batch_size,
            party=self.party,
            level=domain.prefix_length,
        ):
            self.server.ingest_batch(round_id, batch)
        return self.server.finalize_round(round_id)


def run_in_service_mode(mechanism, dataset, rng=None):
    """Re-run any federated mechanism with service-mode execution.

    Convenience for examples/benchmarks: copies the mechanism's
    configuration with ``execution_mode="service"`` (forcing per-user
    reports) and runs it on ``dataset``.
    """
    config = mechanism.config.with_updates(
        # gateway=None: a network-mode config must convert too (the
        # bit-identity docs pitch comparing both paths on one mechanism),
        # and a gateway address is invalid outside network mode.
        execution_mode="service", simulation_mode="per_user", gateway=None
    )
    return type(mechanism)(config).run(dataset, rng)
