"""Continual heavy-hitter tracking over a sliding window of report batches.

The batch mechanisms answer one top-k query over a frozen population.  Real
deployments see an unbounded stream whose heavy hitters drift; this driver
keeps the last ``window_batches`` arrival batches and, every ``stride``
arrivals, re-runs a full trie discovery over the window **through the
aggregation service** — each level round streams bounded privatized batches
into server shards, so memory stays ``O(window + domain)`` no matter how
long the stream runs.

Privacy note: every discovery pass assigns the window's users to disjoint
level groups, so one pass costs each reporting user ε (parallel
composition).  A user reporting in ``w`` overlapping windows spends ``w·ε``
in total — the continual-observation overhead the snapshots make auditable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MechanismConfig
from repro.core.estimation import PartyEstimator
from repro.federation.party import Party
from repro.service.clients import DEFAULT_BATCH_SIZE
from repro.service.server import AggregationServer, ServiceRoundRunner
from repro.utils.rng import RandomState, as_generator, spawn_seeds
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class WindowSnapshot:
    """The state of the stream after one discovery pass."""

    #: Number of batches pushed into the tracker when the pass ran.
    step: int
    #: Users inside the window during the pass.
    n_users: int
    #: Discovered heavy-hitter item ids, ranked by estimated count.
    heavy_hitters: tuple[int, ...]
    #: Item id → estimated count at window scale.
    estimated_counts: dict[int, float] = field(compare=False)
    #: Exact client → server wire bits spent by the pass.
    upload_bits: int = 0
    #: Exact server → client wire bits spent by the pass.
    broadcast_bits: int = 0


class SlidingWindowDiscovery:
    """Re-runs service-mode trie discovery over a sliding batch window.

    Parameters
    ----------
    config:
        Protocol parameters; ``simulation_mode`` is forced to ``per_user``
        (the service streams real reports).
    window_batches:
        Number of most-recent arrival batches a discovery pass covers.
    stride:
        Run a pass every ``stride`` arrivals once the window is full.
    rng:
        Seed or generator; each pass gets its own child seed in arrival
        order, so a stream replayed with the same seed reproduces every
        snapshot exactly.
    top_k:
        Heavy hitters per snapshot (default: ``config.k``).
    """

    def __init__(
        self,
        config: MechanismConfig,
        *,
        window_batches: int,
        stride: int = 1,
        rng: RandomState = None,
        top_k: int | None = None,
    ):
        check_positive("window_batches", window_batches)
        check_positive("stride", stride)
        if top_k is not None:
            check_positive("top_k", top_k)
        self.config = config.with_updates(simulation_mode="per_user")
        self.oracle = self.config.make_oracle()
        self.window_batches = int(window_batches)
        self.stride = int(stride)
        self.top_k = int(top_k) if top_k is not None else self.config.k
        self._rng = as_generator(rng)
        self._window: deque[np.ndarray] = deque(maxlen=self.window_batches)
        self._step = 0
        self.snapshots: list[WindowSnapshot] = []

    # ------------------------------------------------------------------ #
    # Stream interface
    # ------------------------------------------------------------------ #
    def push(self, items: np.ndarray) -> WindowSnapshot | None:
        """Feed one arrival batch; returns a snapshot when a pass runs."""
        items = np.asarray(items, dtype=np.int64)
        if items.ndim != 1 or items.size == 0:
            raise ValueError("arrival batches must be non-empty 1-D item arrays")
        self._window.append(items)
        self._step += 1
        if len(self._window) < self.window_batches:
            return None
        if (self._step - self.window_batches) % self.stride != 0:
            return None
        snapshot = self._discover()
        self.snapshots.append(snapshot)
        return snapshot

    @property
    def window_users(self) -> int:
        """Users currently inside the window."""
        return int(sum(batch.size for batch in self._window))

    def latest(self) -> WindowSnapshot | None:
        """The most recent snapshot, if any pass has run."""
        return self.snapshots[-1] if self.snapshots else None

    # ------------------------------------------------------------------ #
    # Discovery pass
    # ------------------------------------------------------------------ #
    def _discover(self) -> WindowSnapshot:
        items = np.concatenate(list(self._window))
        party = Party(name="window", items=items)
        server = AggregationServer()
        runner = ServiceRoundRunner(
            server=server,
            party="window",
            batch_size=self.config.effective_report_batch_size
            or DEFAULT_BATCH_SIZE,
        )
        pass_rng = np.random.default_rng(spawn_seeds(self._rng, 1)[0])
        estimator = PartyEstimator(
            party, self.config, self.oracle, pass_rng, round_runner=runner
        )
        previous: list[str] | None = None
        final = None
        for level in range(1, self.config.granularity + 1):
            domain = estimator.build_domain(level, previous)
            estimate = estimator.estimate_level(level, domain)
            previous = estimate.selected_prefixes
            final = estimate
        ranked = sorted(
            final.estimated_frequencies.items(), key=lambda kv: (-kv[1], kv[0])
        )[: self.top_k]
        n_users = int(items.size)
        counts = {int(prefix, 2): freq * n_users for prefix, freq in ranked}
        return WindowSnapshot(
            step=self._step,
            n_users=n_users,
            heavy_hitters=tuple(int(prefix, 2) for prefix, _ in ranked),
            estimated_counts=counts,
            upload_bits=server.upload_bits(),
            broadcast_bits=server.broadcast_bits(),
        )
