"""Continual heavy-hitter tracking over a sliding window of report batches.

The batch mechanisms answer one top-k query over a frozen population.  Real
deployments see an unbounded stream whose heavy hitters drift; this driver
keeps the last ``window_batches`` arrival batches and, every ``stride``
arrivals, re-runs a full trie discovery over the window **through the
aggregation service** — each level round streams bounded privatized batches
into server shards, so memory stays ``O(window + domain)`` no matter how
long the stream runs.

Privacy note: every discovery pass assigns the window's users to disjoint
level groups, so one pass costs each reporting user ε (parallel
composition).  A user reporting in ``w`` overlapping windows spends ``w·ε``
in total — the continual-observation overhead the snapshots make auditable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.core.config import DEFAULT_REPORT_BATCH_SIZE, MechanismConfig
from repro.core.estimation import PartyEstimator
from repro.engine import ExecutionBackend, get_backend
from repro.federation.party import Party
from repro.service.server import AggregationServer, ServiceRoundRunner
from repro.utils.rng import RandomState, as_generator, spawn_seeds
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class WindowSnapshot:
    """The state of the stream after one discovery pass."""

    #: Number of batches pushed into the tracker when the pass ran.
    step: int
    #: Users inside the window during the pass.
    n_users: int
    #: Discovered heavy-hitter item ids, ranked by estimated count.
    heavy_hitters: tuple[int, ...]
    #: Item id → estimated count at window scale.
    estimated_counts: dict[int, float] = field(compare=False)
    #: Exact client → server wire bits spent by the pass.
    upload_bits: int = 0
    #: Exact server → client wire bits spent by the pass.
    broadcast_bits: int = 0


class SlidingWindowDiscovery:
    """Re-runs service-mode trie discovery over a sliding batch window.

    Parameters
    ----------
    config:
        Protocol parameters; ``simulation_mode`` is forced to ``per_user``
        (the service streams real reports).
    window_batches:
        Number of most-recent arrival batches a discovery pass covers.
    stride:
        Run a pass every ``stride`` arrivals once the window is full.
    rng:
        Seed or generator; each pass gets its own child seed in arrival
        order, so a stream replayed with the same seed reproduces every
        snapshot exactly.
    top_k:
        Heavy hitters per snapshot (default: ``config.k``).
    """

    def __init__(
        self,
        config: MechanismConfig,
        *,
        window_batches: int,
        stride: int = 1,
        rng: RandomState = None,
        top_k: int | None = None,
    ):
        check_positive("window_batches", window_batches)
        check_positive("stride", stride)
        if top_k is not None:
            check_positive("top_k", top_k)
        self.config = config.with_updates(simulation_mode="per_user")
        self.oracle = self.config.make_oracle()
        self.window_batches = int(window_batches)
        self.stride = int(stride)
        self.top_k = int(top_k) if top_k is not None else self.config.k
        self._rng = as_generator(rng)
        self._window: deque[np.ndarray] = deque(maxlen=self.window_batches)
        self._step = 0
        self.snapshots: list[WindowSnapshot] = []
        self._decode_engine: ExecutionBackend | None = None

    # ------------------------------------------------------------------ #
    # Stream interface
    # ------------------------------------------------------------------ #
    def push(self, items: np.ndarray) -> WindowSnapshot | None:
        """Feed one arrival batch; returns a snapshot when a pass runs."""
        items = np.asarray(items, dtype=np.int64)
        if items.ndim != 1 or items.size == 0:
            raise ValueError("arrival batches must be non-empty 1-D item arrays")
        self._window.append(items)
        self._step += 1
        if len(self._window) < self.window_batches:
            return None
        if (self._step - self.window_batches) % self.stride != 0:
            return None
        snapshot = self._discover()
        self.snapshots.append(snapshot)
        return snapshot

    def track(self, arrivals: Iterable) -> Iterator[WindowSnapshot]:
        """Consume an arrival iterator, yielding a snapshot per pass.

        The arrival-iterator seam: ``arrivals`` yields either plain 1-D
        item arrays or anything with an ``items`` attribute — in
        particular a scenario's
        :class:`~repro.scenarios.scenario.ArrivalBatch` stream
        (:meth:`repro.scenarios.scenario.Scenario.iter_batches`).  Lazy:
        snapshots come out as the stream is consumed, so an unbounded
        stream works.
        """
        for batch in arrivals:
            snapshot = self.push(np.asarray(getattr(batch, "items", batch)))
            if snapshot is not None:
                yield snapshot

    @property
    def window_users(self) -> int:
        """Users currently inside the window."""
        return int(sum(batch.size for batch in self._window))

    def latest(self) -> WindowSnapshot | None:
        """The most recent snapshot, if any pass has run."""
        return self.snapshots[-1] if self.snapshots else None

    def close(self) -> None:
        """Release the decode engine, if any pass resolved one.

        Only needed for parallel backends with the OLH oracle (the sole
        combination that materialises a worker pool); a no-op otherwise.
        """
        if self._decode_engine is not None:
            self._decode_engine.shutdown()
            self._decode_engine = None

    def __enter__(self) -> "SlidingWindowDiscovery":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Discovery pass
    # ------------------------------------------------------------------ #
    def _decode_backend(self) -> ExecutionBackend | None:
        """The config's execution backend, resolved once for all passes.

        OLH decoding fans out over candidate ranges; sharing one engine
        across the tracker's lifetime avoids a pool spawn per snapshot on
        the streaming hot path.  A pure execution knob: every backend
        yields bit-identical snapshots.  Oracles other than OLH never
        touch the engine, so none is resolved for them.
        """
        if self.config.backend == "serial" or self.oracle.name != "olh":
            return None
        if self._decode_engine is None:
            self._decode_engine = get_backend(
                self.config.backend, self.config.max_workers
            )
        return self._decode_engine

    def _discover(self) -> WindowSnapshot:
        items = np.concatenate(list(self._window))
        party = Party(name="window", items=items)
        # A caller-owned engine instance (or None): the per-pass server
        # never owns a pool, so no per-pass shutdown is needed.
        server = AggregationServer(
            decode_backend=self._decode_backend(),
            defense=self.config.defense_policy(),
        )
        runner = ServiceRoundRunner(
            server=server,
            party="window",
            batch_size=self.config.effective_report_batch_size
            or DEFAULT_REPORT_BATCH_SIZE,
        )
        pass_rng = np.random.default_rng(spawn_seeds(self._rng, 1)[0])
        estimator = PartyEstimator(
            party, self.config, self.oracle, pass_rng, round_runner=runner
        )
        previous: list[str] | None = None
        final = None
        for level in range(1, self.config.granularity + 1):
            domain = estimator.build_domain(level, previous)
            estimate = estimator.estimate_level(level, domain)
            previous = estimate.selected_prefixes
            final = estimate
        ranked = sorted(
            final.estimated_frequencies.items(), key=lambda kv: (-kv[1], kv[0])
        )[: self.top_k]
        n_users = int(items.size)
        counts = {int(prefix, 2): freq * n_users for prefix, freq in ranked}
        return WindowSnapshot(
            step=self._step,
            n_users=n_users,
            heavy_hitters=tuple(int(prefix, 2) for prefix, _ in ranked),
            estimated_counts=counts,
            upload_bits=server.upload_bits(),
            broadcast_bits=server.broadcast_bits(),
        )
