"""Programmatic serve harness: server + client pools, one call.

``repro serve`` (and anything else that wants a running service without
hand-wiring rounds) uses :func:`serve_dataset`: it stands up an
:class:`~repro.service.server.AggregationServer`, wraps every party of a
dataset in a :class:`~repro.service.clients.ClientPool`, streams one or
more frequency-oracle rounds through the wire codecs, and returns a
:class:`ServeReport` with per-round wire-bit accounting and the estimated
top prefixes.

The harness exercises the *raw* service protocol — one candidate domain,
real byte batches, exact accounting — rather than a full TAP/TAPS run; for
the latter use ``MechanismConfig(execution_mode="service")``.  Seeds fan
out per (round, party) before anything streams, so reports are independent
of scheduling and a fixed ``seed`` reproduces the same wire transcript.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DEFAULT_REPORT_BATCH_SIZE
from repro.datasets.base import FederatedDataset
from repro.ldp.registry import make_oracle
from repro.service.clients import ClientPool
from repro.service.server import AggregationServer
from repro.trie.candidate_domain import CandidateDomain
from repro.utils.rng import RandomState, as_generator, spawn_seeds
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RoundReport:
    """Accounting and estimates of one streamed (round, party) pair."""

    round_index: int
    party: str
    level: int
    n_users: int
    n_batches: int
    domain_size: int
    upload_bits: int
    broadcast_bits: int
    #: The estimated top prefixes, most frequent first: (prefix, count).
    top_prefixes: tuple[tuple[str, float], ...]

    def to_dict(self) -> dict:
        out = {f: getattr(self, f) for f in self.__dataclass_fields__}
        out["top_prefixes"] = [[p, c] for p, c in self.top_prefixes]
        return out


@dataclass
class ServeReport:
    """Everything one :func:`serve_dataset` call put on the wire."""

    dataset: str
    oracle: str
    epsilon: float
    level: int
    batch_size: int
    rounds: list[RoundReport] = field(default_factory=list)

    @property
    def upload_bits(self) -> int:
        """Total client → server wire bits across all rounds."""
        return sum(r.upload_bits for r in self.rounds)

    @property
    def broadcast_bits(self) -> int:
        """Total server → client wire bits across all rounds."""
        return sum(r.broadcast_bits for r in self.rounds)

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "oracle": self.oracle,
            "epsilon": self.epsilon,
            "level": self.level,
            "batch_size": self.batch_size,
            "upload_bits": self.upload_bits,
            "broadcast_bits": self.broadcast_bits,
            "rounds": [r.to_dict() for r in self.rounds],
        }

    def render(self) -> str:
        """A per-round accounting table, ready to print."""
        table = TextTable(
            [
                "round",
                "party",
                "users",
                "batches",
                "upload (kB)",
                "broadcast (B)",
                "top prefixes",
            ]
        )
        for r in self.rounds:
            top = " ".join(p for p, _ in r.top_prefixes[:3])
            table.add_row(
                [
                    r.round_index,
                    r.party,
                    r.n_users,
                    r.n_batches,
                    r.upload_bits / 8e3,
                    r.broadcast_bits // 8,
                    top,
                ]
            )
        title = (
            f"serve: dataset={self.dataset} oracle={self.oracle} "
            f"eps={self.epsilon:g} level={self.level} "
            f"batch_size={self.batch_size} "
            f"total_upload={self.upload_bits / 8e3:.1f}kB"
        )
        return table.render(title=title)


def serve_dataset(
    dataset: FederatedDataset,
    *,
    epsilon: float = 4.0,
    oracle: str = "krr",
    level: int = 6,
    rounds: int = 1,
    batch_size: int = DEFAULT_REPORT_BATCH_SIZE,
    users_per_round: int | None = None,
    top: int = 10,
    seed: RandomState = None,
    decode_backend: str | None = None,
    decode_workers: int | None = None,
) -> ServeReport:
    """Stream ``rounds`` full service rounds for every party of a dataset.

    Each round opens over the *full* length-``level`` prefix domain (so the
    harness needs no trie state), lets every party's client pool perturb
    and upload its reports in bounded batches, and finalises into count
    estimates whose ``top`` prefixes are reported.

    >>> from repro.datasets.registry import load_dataset
    >>> report = serve_dataset(
    ...     load_dataset("rdb", scale="tiny", seed=0),
    ...     level=4, batch_size=256, seed=0,
    ... )
    >>> len(report.rounds) == 2 and report.upload_bits > 0  # two parties
    True
    """
    check_positive("rounds", rounds)
    check_positive("level", level)
    if level > dataset.n_bits:
        raise ValueError(
            f"level ({level}) cannot exceed the dataset's n_bits ({dataset.n_bits})"
        )
    if users_per_round is not None:
        check_positive("users_per_round", users_per_round)
    domain = CandidateDomain.full_domain(level)
    gen = as_generator(seed)
    pools = [
        ClientPool.from_party(party, batch_size=batch_size)
        for party in dataset.parties
    ]
    # One seed per (round, party), fanned out up front: the wire transcript
    # is a function of the seed alone, never of streaming order.
    seeds = iter(spawn_seeds(gen, rounds * len(pools)))

    server = AggregationServer(
        decode_backend=decode_backend, decode_workers=decode_workers
    )
    report = ServeReport(
        dataset=dataset.name,
        oracle=oracle,
        epsilon=float(epsilon),
        level=int(level),
        batch_size=int(batch_size),
    )
    try:
        for round_index in range(rounds):
            for pool in pools:
                round_seed = next(seeds)
                round_gen = np.random.default_rng(round_seed)
                fo = make_oracle(oracle, epsilon)
                round_id = server.open_round(
                    party=pool.name, level=level, oracle=fo, domain=domain
                )
                user_indices = (
                    pool.draw_users(users_per_round, round_gen)
                    if users_per_round is not None
                    else None
                )
                n_users = 0
                for batch in pool.iter_report_batches(
                    fo, domain, dataset.n_bits, round_gen, user_indices=user_indices
                ):
                    n_users += batch.n_users
                    server.ingest_batch(round_id, batch)
                estimate = server.finalize_round(round_id)
                round_state = server.rounds[round_id]
                counts = estimate.estimated_counts[: domain.n_candidates]
                order = np.argsort(counts)[::-1][:top]
                prefixes = domain.prefixes
                report.rounds.append(
                    RoundReport(
                        round_index=round_index,
                        party=pool.name,
                        level=level,
                        n_users=n_users,
                        n_batches=round_state.n_batches,
                        domain_size=domain.size,
                        upload_bits=round_state.upload_bits,
                        broadcast_bits=round_state.broadcast_bits,
                        top_prefixes=tuple(
                            (prefixes[i], float(counts[i])) for i in order
                        ),
                    )
                )
    finally:
        server.shutdown()
    return report
