"""Client-side load generation for the online aggregation service.

A :class:`ClientPool` stands in for a party's user population: it holds the
raw (private) items, draws reporting users, and emits **privatized report
batches of bounded size** — the full ``(n_users, domain_size)`` report
matrix of the batch simulations is never materialised, which is what lets a
single laptop stream millions of users through the service
(``examples/streaming_service.py``).

Determinism contract: batches are perturbed in user order from one shared
generator, consuming it exactly like the in-memory batched path
(:meth:`repro.ldp.base.FrequencyOracle.run` with the same ``batch_size``).
For a fixed seed the streamed supports are therefore bit-identical to the
in-memory computation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.core.config import DEFAULT_REPORT_BATCH_SIZE
from repro.federation.party import Party
from repro.ldp.base import FrequencyOracle
from repro.service.protocol import ReportBatch
from repro.trie.candidate_domain import CandidateDomain
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive


def iter_perturbed_batches(
    oracle: FrequencyOracle,
    values: np.ndarray,
    domain_size: int,
    rng: RandomState = None,
    *,
    batch_size: int | None = None,
    party: str = "clients",
    level: int = 0,
) -> Iterator[ReportBatch]:
    """Perturb encoded ``values`` into bounded :class:`ReportBatch` objects.

    The low-level streaming primitive shared by :class:`ClientPool` and the
    service round runner: ``values`` are already candidate indices over the
    round's domain, and batches come out in user order, each perturbed with
    the shared generator.
    """
    batch_size = DEFAULT_REPORT_BATCH_SIZE if batch_size is None else int(batch_size)
    check_positive("batch_size", batch_size)
    gen = as_generator(rng)
    values = np.asarray(values, dtype=np.int64)
    # Same guard as the in-memory oracle.run path: fail loudly up front
    # instead of deep inside a batch perturbation (or, worse, silently).
    if values.size and (values.min() < 0 or values.max() >= domain_size):
        raise ValueError("values must be candidate indices within the domain")
    value_domain = oracle.report_value_domain(domain_size)
    # Unary oracles can perturb straight into the packed wire form: the
    # packed batch IS the wire payload, and client memory stays bounded by
    # the wire size (large batches never materialise the dense matrix;
    # small ones may use a bounded transient scratch inside the sampler).
    # perturb_packed consumes the generator exactly like perturb, so the
    # streamed bits stay identical to the in-memory batched path.
    perturb = getattr(oracle, "perturb_packed", None) or oracle.perturb
    for start in range(0, int(values.size), batch_size):
        chunk = values[start : start + batch_size]
        reports = perturb(chunk, domain_size, gen)
        yield ReportBatch(
            party=party,
            level=int(level),
            oracle_name=oracle.name,
            epsilon=oracle.epsilon,
            domain_size=int(domain_size),
            value_domain=int(value_domain),
            n_users=int(chunk.size),
            reports=reports,
        )


class ClientPool:
    """A population of reporting clients backed by raw item data.

    Parameters
    ----------
    items:
        One private item id per user (a :class:`~repro.federation.party.Party`
        items array, or any integer array).
    name:
        Pool identifier stamped onto emitted batches.
    batch_size:
        Bound on the reports per emitted batch.
    """

    def __init__(
        self,
        items: np.ndarray,
        *,
        name: str = "clients",
        batch_size: int = DEFAULT_REPORT_BATCH_SIZE,
    ):
        check_positive("batch_size", batch_size)
        self.items = np.asarray(items, dtype=np.int64)
        if self.items.ndim != 1 or self.items.size == 0:
            raise ValueError("a client pool needs a non-empty 1-D item array")
        self.name = name
        self.batch_size = int(batch_size)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_party(cls, party: Party, *, batch_size: int = DEFAULT_REPORT_BATCH_SIZE) -> "ClientPool":
        """Wrap one party's user population."""
        return cls(party.items, name=party.name, batch_size=batch_size)

    @classmethod
    def from_dataset(
        cls, dataset, *, party: str | None = None, batch_size: int = DEFAULT_REPORT_BATCH_SIZE
    ) -> "ClientPool":
        """Wrap a registry dataset — one party, or the pooled population."""
        if party is not None:
            for candidate in dataset.parties:
                if candidate.name == party:
                    return cls.from_party(candidate, batch_size=batch_size)
            raise KeyError(
                f"dataset {dataset.name!r} has no party {party!r}; "
                f"available: {[p.name for p in dataset.parties]}"
            )
        items = np.concatenate([p.items for p in dataset.parties])
        return cls(items, name=dataset.name, batch_size=batch_size)

    @classmethod
    def from_arrivals(
        cls,
        arrivals: Iterable,
        *,
        name: str = "arrivals",
        batch_size: int = DEFAULT_REPORT_BATCH_SIZE,
    ) -> "ClientPool":
        """Pool the users of an arrival-batch iterator.

        The arrival-iterator seam shared with
        :meth:`repro.service.streaming.SlidingWindowDiscovery.track`: each
        element is either a plain 1-D item array or anything with an
        ``items`` attribute (e.g. a scenario's
        :class:`~repro.scenarios.scenario.ArrivalBatch`).  The iterator is
        drained eagerly — use this to serve a finite arrival history, not
        an endless stream.
        """
        items = [
            np.asarray(getattr(batch, "items", batch), dtype=np.int64)
            for batch in arrivals
        ]
        if not items:
            raise ValueError("a client pool needs at least one arrival batch")
        return cls(np.concatenate(items), name=name, batch_size=batch_size)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_users(self) -> int:
        """Number of clients in the pool."""
        return int(self.items.size)

    def draw_users(self, n: int, rng: RandomState = None) -> np.ndarray:
        """Sample ``n`` reporting users (with replacement: load generation)."""
        check_positive("n", n)
        gen = as_generator(rng)
        return gen.integers(0, self.n_users, size=n, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Report streaming
    # ------------------------------------------------------------------ #
    def iter_report_batches(
        self,
        oracle: FrequencyOracle,
        domain: CandidateDomain,
        n_bits: int,
        rng: RandomState = None,
        *,
        user_indices: np.ndarray | None = None,
        level: int | None = None,
    ) -> Iterator[ReportBatch]:
        """Encode and perturb a round's reports in bounded batches.

        Each selected user's item is truncated to the domain's prefix
        length, mapped onto the candidate domain (out-of-domain → dummy),
        and perturbed through ``oracle``; batches stream out in user order.
        """
        if user_indices is None:
            items = self.items
        else:
            items = self.items[np.asarray(user_indices, dtype=np.int64)]
        values = domain.encode_items(items, n_bits)
        yield from iter_perturbed_batches(
            oracle,
            values,
            domain.size,
            rng,
            batch_size=self.batch_size,
            party=self.name,
            level=domain.prefix_length if level is None else level,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClientPool(name={self.name!r}, n_users={self.n_users}, "
            f"batch_size={self.batch_size})"
        )
