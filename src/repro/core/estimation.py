"""Per-party, per-level estimation machinery shared by every trie mechanism.

The ``Estimate`` procedure of Algorithm 2 is identical across PEM, FedPEM,
GTF, TAP and TAPS: the users of one group report the length-``l_h`` prefix
of their item through the frequency oracle over the current candidate
domain, and the party turns the supports into estimated counts/frequencies.
:class:`PartyEstimator` owns that logic plus the user-group bookkeeping, so
the mechanism classes only differ in *which* prefixes they extend, share or
prune.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.config import ExtensionStrategy, MechanismConfig
from repro.core.extension import adaptive_extension_count
from repro.core.results import LevelEstimate
from repro.encoding.prefix import level_lengths
from repro.federation.grouping import split_into_groups
from repro.federation.party import Party
from repro.ldp.base import EstimationResult, FrequencyOracle
from repro.ldp.budget import PrivacyAccountant
from repro.trie.candidate_domain import CandidateDomain
from repro.utils.rng import as_generator


@dataclass
class LevelOutcome:
    """Raw outcome of one frequency-oracle round at one level."""

    counts: dict[str, float]
    frequencies: dict[str, float]
    sigma: float
    n_users: int
    domain_size: int


class RoundRunner(abc.ABC):
    """Strategy executing one frequency-oracle round for an estimator.

    This is the seam between the trie mechanisms and the execution
    substrate: :class:`PartyEstimator` prepares the round (user group,
    candidate domain, encoded values) and hands it to a runner.  The
    in-memory runner calls the oracle directly; the service runner
    (:class:`repro.service.server.ServiceRoundRunner`) streams privatized
    report batches through an :class:`~repro.service.server.AggregationServer`
    instead.  Runners must consume the provided generator exactly like the
    oracle's own per-batch perturbation would, which is what keeps the two
    paths bit-identical for a fixed seed.
    """

    @abc.abstractmethod
    def run_round(
        self,
        oracle: FrequencyOracle,
        values: np.ndarray,
        domain: CandidateDomain,
        rng,
        *,
        mode: str,
    ) -> EstimationResult:
        """Run one FO round of ``values`` over ``domain`` and estimate counts."""


@dataclass
class DirectRoundRunner(RoundRunner):
    """The in-memory path: a one-shot (or batched) ``oracle.run`` call."""

    batch_size: int | None = None

    def run_round(
        self,
        oracle: FrequencyOracle,
        values: np.ndarray,
        domain: CandidateDomain,
        rng,
        *,
        mode: str,
    ) -> EstimationResult:
        return oracle.run(
            values, domain.size, rng, mode=mode, batch_size=self.batch_size
        )


class PartyEstimator:
    """Runs the levelled LDP estimation for a single party.

    Parameters
    ----------
    party:
        The party whose users report.
    config:
        Protocol parameters.
    oracle:
        The ε-LDP frequency oracle every user reports through.
    rng:
        Generator driving grouping and perturbation for this party.
    accountant:
        Optional privacy accountant; every report is recorded into it.
    round_runner:
        Strategy executing the raw FO rounds (default: the in-memory
        :class:`DirectRoundRunner` honouring ``config.report_batch_size``).
        Service-mode mechanisms inject a
        :class:`repro.service.server.ServiceRoundRunner` here.
    """

    def __init__(
        self,
        party: Party,
        config: MechanismConfig,
        oracle: FrequencyOracle,
        rng,
        accountant: PrivacyAccountant | None = None,
        round_runner: RoundRunner | None = None,
    ):
        self.party = party
        self.config = config
        self.oracle = oracle
        self.rng = as_generator(rng)
        self.accountant = accountant
        if round_runner is None:
            round_runner = DirectRoundRunner(config.effective_report_batch_size)
        self.round_runner = round_runner
        self.level_prefix_lengths = level_lengths(config.n_bits, config.granularity)
        self.groups = self._allocate_groups()

    # ------------------------------------------------------------------ #
    # User allocation
    # ------------------------------------------------------------------ #
    def _allocate_groups(self) -> dict[int, np.ndarray]:
        """Assign users to levels 1..g, honouring ``phase1_user_fraction``.

        Each user belongs to exactly one level group, which is what makes a
        single ε per user sufficient (parallel composition across disjoint
        groups, Theorem 5.1).
        """
        g = self.config.granularity
        gs = self.config.effective_shared_level
        n = self.party.n_users
        fraction = self.config.phase1_user_fraction
        if fraction is None or gs >= g:
            groups = split_into_groups(n, g, self.rng)
            return {h: groups[h - 1] for h in range(1, g + 1)}

        # ``fraction`` is the per-level share of users for each phase-I level
        # (the paper's 10% warm-start heuristic), so phase I receives
        # ``g_s * fraction`` of the population overall, capped at half.
        n_phase1 = int(round(n * min(0.5, fraction * gs)))
        n_phase1 = min(n_phase1, n - (g - gs))  # keep phase II non-empty
        n_phase1 = max(n_phase1, gs)
        permutation = self.rng.permutation(n)
        phase1_users = permutation[:n_phase1]
        phase2_users = permutation[n_phase1:]
        phase1_groups = split_into_groups(phase1_users.size, gs, self.rng)
        phase2_groups = split_into_groups(phase2_users.size, g - gs, self.rng)
        allocation: dict[int, np.ndarray] = {}
        for h in range(1, gs + 1):
            allocation[h] = np.sort(phase1_users[phase1_groups[h - 1]])
        for h in range(gs + 1, g + 1):
            allocation[h] = np.sort(phase2_users[phase2_groups[h - gs - 1]])
        return allocation

    def users_at_level(self, level: int) -> np.ndarray:
        """Indices of the users assigned to report at ``level``."""
        return self.groups[level]

    def prefix_length(self, level: int) -> int:
        """``l_h`` for this configuration."""
        return self.level_prefix_lengths[level - 1]

    # ------------------------------------------------------------------ #
    # Domain construction
    # ------------------------------------------------------------------ #
    def build_domain(
        self, level: int, previous_selected: list[str] | None
    ) -> CandidateDomain:
        """Construct ``Λ_h`` by extending the previous level's selection.

        At level 1 (``previous_selected is None`` or empty) the full domain
        of all length-``l_1`` prefixes is used, as in Algorithm 2.
        """
        length = self.prefix_length(level)
        prev_length = self.prefix_length(level - 1) if level > 1 else 0
        if not previous_selected:
            return CandidateDomain.full_domain(length, include_dummy=True)
        base = CandidateDomain(previous_selected, include_dummy=False)
        return base.extended(previous_selected, length - prev_length, include_dummy=True)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def estimate_on_users(
        self, user_indices: np.ndarray, domain: CandidateDomain
    ) -> LevelOutcome:
        """Run the FO for the given users over ``domain`` and estimate counts."""
        items = self.party.items[np.asarray(user_indices, dtype=np.int64)]
        values = domain.encode_items(items, self.config.n_bits)
        result = self.round_runner.run_round(
            self.oracle,
            values,
            domain,
            self.rng,
            mode=self.config.simulation_mode,
        )
        if self.accountant is not None:
            self.accountant.record(
                user_indices,
                party=self.party.name,
                level=domain.prefix_length,
                epsilon=self.oracle.epsilon,
                oracle=self.oracle.name,
                domain_size=domain.size,
            )
        counts = {
            prefix: float(count)
            for prefix, count in zip(domain.prefixes, result.estimated_counts)
        }
        freqs = {
            prefix: float(freq)
            for prefix, freq in zip(domain.prefixes, result.estimated_frequencies)
        }
        sigma = self.oracle.std(max(int(user_indices.size), 1), domain.size)
        return LevelOutcome(
            counts=counts,
            frequencies=freqs,
            sigma=sigma,
            n_users=int(user_indices.size),
            domain_size=domain.size,
        )

    def select_extension(
        self, outcome: LevelOutcome, *, k: int | None = None
    ) -> tuple[list[str], int, dict]:
        """Choose which prefixes to extend from a level outcome.

        Returns ``(selected_prefixes, t, info)`` where ``info`` carries the
        anchor/drift diagnostics for adaptive extension.
        """
        k = k if k is not None else self.config.k
        ranked = sorted(outcome.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        freqs_sorted = np.array([kv[1] for kv in ranked], dtype=np.float64)
        freqs_sorted = freqs_sorted / max(outcome.n_users, 1)
        if self.config.extension is ExtensionStrategy.ADAPTIVE:
            t, k_star, eta = adaptive_extension_count(freqs_sorted, k, outcome.sigma)
            info = {"k_star": k_star, "eta": eta, "strategy": "adaptive"}
        else:
            t = min(self.config.effective_fixed_extension, len(ranked))
            info = {"strategy": "fixed"}
        t = max(1, min(t, len(ranked)))
        selected = [prefix for prefix, _ in ranked[:t]]
        return selected, t, info

    def estimate_level(
        self,
        level: int,
        domain: CandidateDomain,
        user_indices: np.ndarray | None = None,
        *,
        k: int | None = None,
        pruned: list[str] | None = None,
    ) -> LevelEstimate:
        """Full ``Estimate`` step: FO round + extension selection at ``level``."""
        if user_indices is None:
            user_indices = self.users_at_level(level)
        outcome = self.estimate_on_users(user_indices, domain)
        selected, t, info = self.select_extension(outcome, k=k)
        return LevelEstimate(
            level=level,
            prefix_length=domain.prefix_length,
            candidate_prefixes=domain.prefixes,
            estimated_counts=outcome.counts,
            estimated_frequencies=outcome.frequencies,
            selected_prefixes=selected,
            extension_count=t,
            n_users=outcome.n_users,
            domain_size=outcome.domain_size,
            pruned_prefixes=list(pruned or []),
        )
